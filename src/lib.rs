//! # arrow-wan — ARROW: Restoration-Aware Traffic Engineering
//!
//! A from-scratch Rust reproduction of *ARROW: Restoration-Aware Traffic
//! Engineering* (Zhong et al., SIGCOMM 2021): when a WAN fiber is cut, the
//! wavelengths it carried are reconfigured onto healthy surrogate fibers,
//! and the traffic-engineering controller decides — jointly with the
//! optical layer's constraints — *which* IP links to restore and by how
//! much.
//!
//! The workspace splits along the paper's architecture; this umbrella
//! crate re-exports everything for convenient use in examples and
//! downstream code:
//!
//! * [`lp`] — LP/MILP solver toolkit (simplex, PDHG, branch & bound).
//! * [`optical`] — fibers, spectrum, RWA, restoration analyses.
//! * [`topology`] — B4/IBM/Facebook-like WANs, demands, failure models.
//! * [`te`] — TE schemes: ECMP, MaxFlow, FFC, TeaVaR, ARROW Phase I/II.
//! * [`core`] — LotteryTickets (Algorithm 1), Theorem 3.1, the controller.
//! * [`sim`] — event-driven restoration-latency simulator (the testbed).
//! * [`obs`] — structured tracing + metrics registry every crate emits
//!   into (see `examples/observe_pipeline.rs` for a full run report).
//! * [`daemon`] — the `arrow serve` epoch loop: event-feed driven
//!   re-planning with a flight recorder, deadline-miss fallback, and
//!   chaos mode (see `examples/serve_soak.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use arrow_wan::prelude::*;
//!
//! // Build the B4 WAN, traffic, and probabilistic fiber-cut scenarios.
//! let wan = b4(17);
//! let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
//! let failures = generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
//!
//! // Offline: LotteryTickets; online: restoration-aware TE.
//! let controller = ArrowController::new(
//!     wan,
//!     failures.failure_scenarios().to_vec(),
//!     ControllerConfig {
//!         lottery: LotteryConfig { num_tickets: 6, ..Default::default() },
//!         tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
//!         ..Default::default()
//!     },
//! );
//! let plan = controller.plan(&tms[0]).expect("every scenario has tickets");
//! assert!(plan.outcome.output.alloc.total_admitted() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;

pub use arrow_core as core;
pub use arrow_lp as lp;
pub use arrow_obs as obs;
pub use arrow_optical as optical;
pub use arrow_sim as sim;
pub use arrow_te as te;
pub use arrow_topology as topology;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use crate::daemon::{serve, ChaosConfig, ServeConfig, ServeError, ServeReport};
    pub use arrow_core::{
        derive_seed, fractional_seed, generate_tickets, generate_tickets_serial,
        generate_tickets_shard, generate_tickets_shard_with_threads, generate_tickets_universe,
        generate_tickets_with_stats, generate_tickets_with_threads, kappa, naive_ticket,
        optimality_probability, realize_ticket, tickets_for_target, ArrowController,
        ControllerConfig, LinkRounding, LotteryConfig, OfflineStats, PlanError, ReconfigRule,
        RoundDirection, ScenarioStats, ShardSpec, TePlan,
    };
    pub use arrow_lp::{
        Backend, LinExpr, Model, Objective, Sense, SolveStats, SolverConfig, WarmEvent, WarmStart,
    };
    pub use arrow_optical::{
        all_single_cut_ratios, empirical_cdf, greedy_assign, is_feasible, k_shortest_paths,
        path_inflation_analysis, roadm_reconfig_count, solve_relaxed, FiberId, Lightpath,
        LightpathId, ModulationTable, OpticalNetwork, RoadmId, RwaConfig, SpectrumMask,
    };
    pub use arrow_sim::{
        build_testbed, restoration_trial, AmplifierChain, AmplifierParams, RoadmParams,
    };
    pub use arrow_te::{
        build_instance, eval::availability, eval::availability_guaranteed_throughput,
        eval::normalize_demand_scale, eval::play_scenario, eval::required_router_ports,
        eval::PlaybackConfig, Arrow, ArrowNaive, ArrowOnline, Ecmp, Ffc, FlowId, MaxFlow,
        MergeError, RestorationTicket, SchemeOutput, TeInstance, TeScheme, TeaVar, TicketSet,
        TunnelConfig, TunnelId, WeightedTicket,
    };
    pub use arrow_topology::{
        b4, compile_universe, facebook_like, generate_failures, gravity_matrices, ibm,
        CompiledScenario, FailureConfig, FailureModel, FailureScenario, IpLink, IpLinkId,
        ScenarioId, ScenarioSource, ScenarioUniverse, SiteId, SrlgGroup, TrafficConfig,
        TrafficMatrix, UniverseConfig, UniverseStats, Wan,
    };
}
