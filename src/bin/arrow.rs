//! `arrow` — command-line front end for the ARROW reproduction.
//!
//! Subcommands (run `arrow help` for usage):
//!
//! * `topology <b4|ibm|facebook>` — build a Table-4 WAN and print its
//!   cross-layer statistics.
//! * `restore <topo> --fiber <id>` — simulate a fiber cut and print the
//!   RWA restoration outcome per failed IP link.
//! * `plan <topo>` — run the full ARROW controller (offline LotteryTickets
//!   + online two-phase TE) and print the plan.
//! * `availability <topo> --scheme <name> --scale <x>` — evaluate a TE
//!   scheme's availability at a demand scale.
//! * `latency` — replay the §5 testbed restoration trial with and without
//!   noise loading.
//! * `mps <topo> --out <file>` — export the MaxFlow TE LP as an MPS file
//!   for cross-checking with external solvers.
//! * `serve <topo>` — run the long-lived controller daemon: a seeded
//!   event feed drives re-planning epoch after epoch, `/metrics` and
//!   `/readyz` are served live, and deadline misses dump flight-recorder
//!   incidents. `--chaos true` injects correlated failure bursts.
//!
//! Argument parsing is deliberately plain `std` (no CLI dependency): flags
//! are `--key value` pairs after the positional arguments.

use arrow_wan::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: arrow <command> [args]\n\
     \n\
     commands:\n\
     \u{20}topology     <b4|ibm|facebook> [--seed N]\n\
     \u{20}restore      <b4|ibm|facebook> --fiber N [--seed N] [--modulation-change true]\n\
     \u{20}plan         <b4|ibm|facebook> [--tickets N] [--scenarios N] [--scale X] [--seed N]\n\
     \u{20}availability <b4|ibm|facebook> [--scheme arrow|naive|ffc1|ffc2|teavar|ecmp]\n\
     \u{20}             [--scale X] [--scenarios N] [--seed N]\n\
     \u{20}latency      [--amps N]\n\
     \u{20}mps          <b4|ibm|facebook> --out FILE [--seed N]\n\
     \u{20}serve        <b4|ibm|facebook> [--epochs N] [--budget S] [--chaos true]\n\
     \u{20}             [--bursts N] [--stall S] [--addr HOST:PORT] [--incident-dir DIR]\n\
     \u{20}             [--tickets N] [--scenarios N] [--scale X] [--seed N]\n\
     \u{20}help"
}

/// Parses `--key value` flags after `skip` positional arguments.
fn parse_flags(args: &[String], skip: usize) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().skip(skip);
    while let Some(k) = it.next() {
        let Some(key) = k.strip_prefix("--") else {
            return Err(format!("expected --flag, got {k}"));
        };
        let Some(v) = it.next() else {
            return Err(format!("flag --{key} needs a value"));
        };
        flags.insert(key.to_string(), v.clone());
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v}")),
    }
}

fn build_wan(name: &str, seed: u64) -> Result<Wan, String> {
    match name {
        "b4" => Ok(b4(seed)),
        "ibm" => Ok(ibm(seed)),
        "facebook" => Ok(facebook_like(seed)),
        other => Err(format!("unknown topology {other} (expected b4|ibm|facebook)")),
    }
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("topology name required")?;
    let flags = parse_flags(args, 1)?;
    let wan = build_wan(name, flag(&flags, "seed", 17u64)?)?;
    println!("{}", wan.summary());
    wan.validate()?;
    println!("total IP capacity: {:.1} Tbps", wan.total_capacity_gbps() / 1000.0);
    let utils: Vec<f64> = wan.optical.fibers().iter().map(|f| f.spectrum.utilization()).collect();
    let mean = utils.iter().sum::<f64>() / utils.len() as f64;
    let max = utils.iter().fold(0.0f64, |a, &b| a.max(b));
    println!(
        "fiber spectrum utilization: mean {:.0}%, max {:.0}%, {} slots/fiber",
        mean * 100.0,
        max * 100.0,
        wan.optical.num_slots()
    );
    let lpf = wan.ip_links_per_fiber();
    println!(
        "IP links per fiber: mean {:.1}, max {}",
        lpf.iter().sum::<usize>() as f64 / lpf.len() as f64,
        lpf.iter().max().unwrap_or(&0)
    );
    Ok(())
}

fn cmd_restore(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("topology name required")?;
    let flags = parse_flags(args, 1)?;
    let wan = build_wan(name, flag(&flags, "seed", 17u64)?)?;
    let fiber: usize = flag(&flags, "fiber", 0usize)?;
    if fiber >= wan.optical.num_fibers() {
        return Err(format!("fiber {fiber} out of range (< {})", wan.optical.num_fibers()));
    }
    let rwa = RwaConfig {
        allow_modulation_change: flag(&flags, "modulation-change", true)?,
        ..Default::default()
    };
    let cut = [FiberId(fiber)];
    let failed = wan.links_failed_by(&cut);
    println!("cutting fiber {fiber}: {} IP links fail", failed.len());
    let sol = solve_relaxed(&wan.optical, &cut, &rwa);
    let mut lost = 0.0;
    let mut restored = 0.0;
    for l in &sol.links {
        let lp = wan.optical.lightpath(l.lightpath);
        lost += lp.capacity_gbps();
        restored += l.restored_gbps();
        println!(
            "  lightpath {:>3}: lost {:>2} λ ({:>6.0} Gbps) -> restorable {:>5.2} λ ({:>6.0} Gbps) over {} path(s)",
            l.lightpath.0,
            l.lost_wavelengths,
            lp.capacity_gbps(),
            l.wavelengths,
            l.restored_gbps(),
            l.paths.len()
        );
    }
    println!(
        "restoration ratio U = {:.0}% ({:.0} of {:.0} Gbps)",
        if lost > 0.0 { restored / lost * 100.0 } else { 100.0 },
        restored,
        lost
    );
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("topology name required")?;
    let flags = parse_flags(args, 1)?;
    let seed = flag(&flags, "seed", 17u64)?;
    let wan = build_wan(name, seed)?;
    let failures = generate_failures(
        &wan,
        &FailureConfig { max_scenarios: flag(&flags, "scenarios", 6usize)?, ..Default::default() },
    );
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let controller = ArrowController::new(
        wan,
        failures.failure_scenarios().to_vec(),
        ControllerConfig {
            lottery: LotteryConfig {
                num_tickets: flag(&flags, "tickets", 8usize)?,
                ..Default::default()
            },
            tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
            ..Default::default()
        },
    );
    let scale: f64 = flag(&flags, "scale", 1.0f64)?;
    let plan = controller.plan(&tms[0].scaled(scale)).map_err(|e| e.to_string())?;
    let alloc = &plan.outcome.output.alloc;
    println!("offline: {}", controller.offline().stats.summary());
    println!(
        "admitted {:.0} Gbps ({:.1}% of demand) | phase I {:.2}s + phase II {:.2}s",
        alloc.total_admitted(),
        100.0 * alloc.throughput(&plan.instance),
        plan.outcome.phase1_seconds,
        plan.outcome.phase2_seconds
    );
    println!("winning tickets: {:?}", plan.outcome.winning);
    println!("{} ROADM reconfiguration rules pre-installed", plan.reconfig_rules.len());
    for rule in plan.reconfig_rules.iter().take(10) {
        let waves: usize = rule.routes.iter().map(|(_, s)| s.len()).sum();
        println!(
            "  scenario {:>2}: lightpath {:>3} -> {waves} λ over {} route(s)",
            rule.scenario,
            rule.lightpath.0,
            rule.routes.len()
        );
    }
    Ok(())
}

fn cmd_availability(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("topology name required")?;
    let flags = parse_flags(args, 1)?;
    let seed = flag(&flags, "seed", 17u64)?;
    let wan = build_wan(name, seed)?;
    let failures = generate_failures(
        &wan,
        &FailureConfig { max_scenarios: flag(&flags, "scenarios", 8usize)?, ..Default::default() },
    );
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let inst = build_instance(
        &wan,
        &tms[0],
        failures.failure_scenarios(),
        &TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
    )
    .scaled(flag(&flags, "scale", 1.0f64)?);
    let scheme_name: String = flag(&flags, "scheme", "arrow".to_string())?;
    let out = match scheme_name.as_str() {
        "arrow" => {
            let tickets = generate_tickets(
                &wan,
                &inst.scenarios,
                &LotteryConfig { num_tickets: 8, ..Default::default() },
            );
            Arrow::new(tickets).solve(&inst)
        }
        "naive" => {
            let lottery = LotteryConfig::default();
            let naive: Vec<RestorationTicket> =
                inst.scenarios.iter().map(|s| naive_ticket(&wan, s, &lottery.rwa)).collect();
            ArrowNaive { tickets: naive, solver: Default::default() }.solve(&inst)
        }
        "ffc1" => Ffc::k1().solve(&inst),
        "ffc2" => Ffc::k2().solve(&inst),
        "teavar" => TeaVar::default().solve(&inst),
        "ecmp" => Ecmp.solve(&inst),
        other => return Err(format!("unknown scheme {other}")),
    };
    let cfg = PlaybackConfig::default();
    let avail = availability(&inst, &out, &cfg);
    let thr = play_scenario(&inst, &out.alloc, None, None, &cfg).satisfaction;
    println!(
        "{}: throughput {:.4}, availability {:.6} (over {} failure scenarios)",
        out.alloc.scheme,
        thr,
        avail,
        inst.scenarios.len()
    );
    Ok(())
}

fn cmd_latency(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, 0)?;
    let mut tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
    let amps: usize = flag(&flags, "amps", 0usize)?;
    if amps > 0 {
        let chains = tb.amps.len().max(1);
        for chain in tb.amps.iter_mut() {
            chain.sites = amps / chains;
        }
    }
    for (label, noise) in [("ARROW (noise loading)", true), ("legacy", false)] {
        let r = restoration_trial(&tb, tb.fibers[3], noise, &RoadmParams::default());
        println!(
            "{label}: restored {:.0} of {:.0} Gbps in {:.1} s",
            r.restored_gbps, r.lost_gbps, r.total_latency_s
        );
    }
    Ok(())
}

fn cmd_mps(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("topology name required")?;
    let flags = parse_flags(args, 1)?;
    let out_path = flags.get("out").ok_or("--out FILE required")?.clone();
    let wan = build_wan(name, flag(&flags, "seed", 17u64)?)?;
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
    let inst = build_instance(
        &wan,
        &tms[0],
        failures.failure_scenarios(),
        &TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
    );
    // Export the failure-oblivious TE LP (constraints (1)-(3)).
    use arrow_wan::lp::model::{LinExpr, Model, Objective, Sense};
    let mut model = Model::new();
    let b: Vec<_> = inst
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| model.add_var(0.0, f.demand_gbps, format!("b{i}")))
        .collect();
    let a: Vec<_> = (0..inst.tunnels.len()).map(|t| model.add_nonneg(format!("a{t}"))).collect();
    for (i, f) in inst.flows.iter().enumerate() {
        let mut e = LinExpr::sum_vars(f.tunnels.iter().map(|&t| a[t.0]));
        e.add_term(b[i], -1.0);
        model.add_con(e, Sense::Ge, 0.0, format!("cover{i}"));
    }
    for key in inst.used_dir_links() {
        let users: Vec<_> = inst
            .tunnels
            .iter()
            .enumerate()
            .filter(|(_, t)| t.hops.iter().any(|h| h.link == key.0 && h.forward == key.1))
            .map(|(i, _)| a[i])
            .collect();
        model.add_con(
            LinExpr::sum_vars(users),
            Sense::Le,
            inst.wan.link(key.0).capacity_gbps,
            "cap",
        );
    }
    model.set_objective(LinExpr::sum_vars(b), Objective::Maximize);
    let mps = arrow_wan::lp::mps::to_mps(&model, &format!("arrow_{name}_maxflow"));
    std::fs::write(&out_path, &mps).map_err(|e| format!("write {out_path}: {e}"))?;
    println!(
        "wrote MaxFlow TE LP ({} vars, {} rows) to {out_path}",
        model.num_vars(),
        model.num_cons()
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("topology name required")?;
    let flags = parse_flags(args, 1)?;
    let seed = flag(&flags, "seed", 17u64)?;
    let wan = build_wan(name, seed)?;
    let chaos = if flag(&flags, "chaos", false)? {
        Some(ChaosConfig {
            seed: flag(&flags, "chaos-seed", 1337u64)?,
            bursts: flag(&flags, "bursts", 3u64)?,
            stall_seconds: flag(&flags, "stall", 3.0f64)?,
            ..Default::default()
        })
    } else {
        None
    };
    let config = ServeConfig {
        seed: flag(&flags, "feed-seed", 42u64)?,
        epochs: flag(&flags, "epochs", 48u64)?,
        budget_seconds: flag(&flags, "budget", ServeConfig::default().budget_seconds)?,
        scenarios: flag(&flags, "scenarios", 4usize)?,
        tickets: flag(&flags, "tickets", 8usize)?,
        demand_scale: flag(&flags, "scale", 2.0f64)?,
        addr: flag(&flags, "addr", "127.0.0.1:0".to_string())?,
        incident_dir: std::path::PathBuf::from(flag(
            &flags,
            "incident-dir",
            "incidents".to_string(),
        )?),
        chaos,
        ..Default::default()
    };
    println!(
        "arrow serve: {name} topology, {} epochs, {:.1}s budget, chaos {}",
        config.epochs,
        config.budget_seconds,
        if config.chaos.is_some() { "on" } else { "off" },
    );
    let report = serve(wan, &config).map_err(|e| e.to_string())?;
    println!("exporter listened on http://{}", report.metrics_addr);
    println!(
        "planned {} epochs ({} ticks, {} cut/repair re-plans, {} chaos bursts) in {:.1}s",
        report.epochs_planned,
        report.ticks,
        report.cut_replans,
        report.chaos_bursts,
        report.wall_seconds
    );
    println!(
        "warm-hit ratio {:.3} | p99 epoch {:.3}s | {} fallbacks | {} plan errors | {} live scrapes",
        report.warm_hit_ratio,
        report.p99_epoch_seconds(),
        report.fallbacks,
        report.plan_errors,
        report.scrapes_ok
    );
    println!(
        "/readyz: {} before first plan -> {} after",
        report.readyz_before, report.readyz_after
    );
    if report.incidents.is_empty() {
        println!("no incidents (every epoch met its {:.1}s budget)", config.budget_seconds);
    } else {
        println!("{} incident dump(s):", report.incidents.len());
        for inc in &report.incidents {
            println!(
                "  {} ({} spans, critical path {} hops)",
                inc.dir.display(),
                inc.spans,
                inc.critical_path.len()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "topology" => cmd_topology(rest),
        "restore" => cmd_restore(rest),
        "plan" => cmd_plan(rest),
        "availability" => cmd_availability(rest),
        "latency" => cmd_latency(rest),
        "mps" => cmd_mps(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
