//! `arrow serve` — the long-lived ARROW controller daemon (ROADMAP
//! item 3).
//!
//! ARROW's deployment model (§5) is a controller re-planning every TE
//! epoch against live failure and demand telemetry. This module is that
//! loop: a seeded [`arrow_sim::EventFeed`] drives it — epoch ticks with
//! diurnal-plus-jitter demand perturbation, fiber cut/repair events that
//! trigger immediate re-plans — and every epoch runs through
//! [`ArrowController::plan_epoch`], reusing the warm-start cache across
//! hundreds of epochs while the [`arrow_obs::export`] listener serves
//! `/metrics`, `/snapshot.json`, `/healthz`, and `/readyz` live.
//!
//! Three observability behaviours are the point:
//!
//! * **flight recorder** ([`recorder::FlightRecorder`]): a per-epoch ring
//!   capture; an SLO deadline miss or plan error freezes the offending
//!   epoch's span tree, critical path, metrics snapshot, and triggering
//!   event into a timestamped incident directory;
//! * **deadline-miss fallback**: a plan computed past the budget is *not*
//!   installed — the previous epoch's plan keeps serving (counted by
//!   `slo.epoch.missed` and the `daemon.fallback` counter, with a warn
//!   event attached), because installing a stale-demand plan late is
//!   worse than keeping the one the network is already converged on;
//! * **chaos mode** ([`chaos`]): seeded, deterministic correlated bursts
//!   from `compile_universe` cut sets, each with a planning stall sized
//!   to force the above two paths on demand.
//!
//! Readiness: `/readyz` stays 503 through offline ticket generation and
//! flips to 200 after the first successfully installed plan.

pub mod chaos;
pub mod recorder;

use std::path::PathBuf;

use arrow_core::{ArrowController, ControllerConfig, EpochHook, LotteryConfig, PlanError, TePlan};
use arrow_obs::incident::IncidentDump;
use arrow_obs::slo::SloConfig;
use arrow_obs::{event, export, metrics, slo};
use arrow_sim::{EventFeed, FeedConfig, FeedEvent};
use arrow_te::TunnelConfig;
use arrow_topology::{generate_failures, gravity_matrices, FailureConfig, TrafficConfig, Wan};

pub use chaos::ChaosConfig;
pub use recorder::FlightRecorder;

/// Everything that determines a daemon run. Same config + same topology
/// seed ⇒ the same event sequence and the same computed plans.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed for the event feed (ticks, jitter, random cuts).
    pub seed: u64,
    /// Epoch ticks to run; the daemon exits when the feed drains.
    pub epochs: u64,
    /// Simulated seconds between ticks (ARROW §5: five minutes).
    pub epoch_interval_s: f64,
    /// SLO deadline budget per epoch, in wall-clock seconds.
    pub budget_seconds: f64,
    /// Failure scenarios the controller plans against.
    pub scenarios: usize,
    /// LotteryTickets per scenario (offline stage).
    pub tickets: usize,
    /// Tunnels per flow.
    pub tunnels_per_flow: usize,
    /// LP backend for the online solves. Defaults to PDHG: across
    /// hundreds of warm re-solves its primal–dual point keeps paying off
    /// under demand perturbation in *either* direction, whereas a simplex
    /// basis goes primal-infeasible (warm miss, cold re-solve) whenever
    /// the diurnal curve drops demand below the incumbent allocation.
    pub backend: arrow_lp::Backend,
    /// Base demand multiplier applied to the gravity matrix.
    pub demand_scale: f64,
    /// Telemetry-noise amplitude on each tick's demand.
    pub demand_jitter: f64,
    /// Mean simulated seconds between random single-fiber cuts (0 = off).
    pub mean_cut_interval_s: f64,
    /// Simulated seconds from a cut to its repair.
    pub repair_after_s: f64,
    /// Exporter bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Directory incident dumps are written under.
    pub incident_dir: PathBuf,
    /// Flight-recorder ring capacity, in trace records.
    pub recorder_capacity: usize,
    /// Self-scrape `/metrics` + `/readyz` over the real socket every N
    /// planned epochs (0 disables; the soak uses this to prove live
    /// Prometheus scrapes throughout the run).
    pub scrape_every: u64,
    /// Chaos mode: inject correlated bursts with planning stalls.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            epochs: 48,
            epoch_interval_s: 300.0,
            budget_seconds: SloConfig::default().budget_seconds,
            scenarios: 4,
            tickets: 8,
            tunnels_per_flow: 4,
            demand_scale: 2.0,
            demand_jitter: 0.05,
            backend: arrow_lp::Backend::Pdhg,
            mean_cut_interval_s: 2400.0,
            repair_after_s: 1800.0,
            addr: "127.0.0.1:0".to_string(),
            incident_dir: PathBuf::from("incidents"),
            recorder_capacity: 16384,
            scrape_every: 10,
            chaos: None,
        }
    }
}

/// Why the daemon could not start or finish a run. Per-epoch plan errors
/// do *not* end the run — they produce incident dumps and the loop keeps
/// serving the previous plan; this type covers run-level failures only.
#[derive(Debug)]
pub enum ServeError {
    /// The exporter could not bind, or an incident dump failed to write.
    Io(std::io::Error),
    /// The offline state was unusable before the loop even started.
    Plan(PlanError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "daemon i/o: {e}"),
            ServeError::Plan(e) => write!(f, "daemon offline state: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What one daemon run did, for the CLI summary, the soak's assertions,
/// and `BENCH_serve.json`.
#[derive(Debug)]
pub struct ServeReport {
    /// Total epochs planned (ticks + cut/repair re-plans + chaos bursts).
    pub epochs_planned: u64,
    /// Epoch ticks consumed.
    pub ticks: u64,
    /// Re-plans triggered by fiber cut/repair events.
    pub cut_replans: u64,
    /// Chaos bursts delivered.
    pub chaos_bursts: u64,
    /// Deadline misses that fell back to the previous installed plan.
    pub fallbacks: u64,
    /// Epochs whose solve returned a typed `PlanError`.
    pub plan_errors: u64,
    /// Epochs whose Phase-I LP warm start was an exact cache hit.
    pub warm_hits: u64,
    /// `warm_hits / epochs_planned`.
    pub warm_hit_ratio: f64,
    /// After each planned epoch: which epoch's plan was installed (None
    /// until the first successful epoch). A fallback shows up as the
    /// previous entry repeating.
    pub installed_history: Vec<Option<u64>>,
    /// Incident dumps written (deadline misses + plan errors).
    pub incidents: Vec<IncidentDump>,
    /// True when every incident dump's critical path reached `lp.solve`.
    pub incidents_reach_lp_solve: bool,
    /// The deterministic event log: `t=<sim s> <label>` per feed event.
    pub event_log: Vec<String>,
    /// FNV-1a digest over every *computed* epoch's winning tickets
    /// (computed plans are deterministic under a fixed seed even when
    /// wall-clock verdicts differ, so this is the determinism witness).
    pub winning_digest: u64,
    /// Wall seconds per planned epoch, in planning order.
    pub epoch_seconds: Vec<f64>,
    /// Wall seconds for the whole loop (excluding offline generation).
    pub wall_seconds: f64,
    /// Live self-scrapes that returned 200 with the epoch histogram.
    pub scrapes_ok: u64,
    /// `/readyz` HTTP status observed before the first epoch (503).
    pub readyz_before: u16,
    /// `/readyz` HTTP status observed after the loop (200 on success).
    pub readyz_after: u16,
    /// The exporter address the run served on.
    pub metrics_addr: String,
}

impl ServeReport {
    /// Exact p99 over the per-epoch wall clocks (0.0 when empty).
    pub fn p99_epoch_seconds(&self) -> f64 {
        percentile(&self.epoch_seconds, 0.99)
    }

    /// Planned epochs per wall-clock second of loop time.
    pub fn epochs_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.epochs_planned as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Exact small-sample percentile: the ceil(q·n)-th order statistic.
fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// FNV-1a 64 fold over a byte slice.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    hash
}

struct DaemonMetrics {
    epochs: metrics::Counter,
    fallback: metrics::Counter,
    plan_errors: metrics::Counter,
    cut_replans: metrics::Counter,
    bursts: metrics::Counter,
    scrapes: metrics::Counter,
}

fn daemon_metrics() -> &'static DaemonMetrics {
    static METRICS: std::sync::OnceLock<DaemonMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        metrics::describe("daemon.epochs", "epochs planned by the serve loop");
        metrics::describe(
            "daemon.fallback",
            "deadline-missed epochs that reused the previous installed plan",
        );
        metrics::describe("daemon.plan_errors", "epochs that failed with a typed PlanError");
        metrics::describe("daemon.replan.cut", "re-plans triggered by fiber cut/repair events");
        metrics::describe("daemon.chaos.bursts", "chaos bursts delivered to the epoch loop");
        metrics::describe("daemon.scrapes", "successful live self-scrapes of /metrics");
        DaemonMetrics {
            epochs: metrics::counter("daemon.epochs"),
            fallback: metrics::counter("daemon.fallback"),
            plan_errors: metrics::counter("daemon.plan_errors"),
            cut_replans: metrics::counter("daemon.replan.cut"),
            bursts: metrics::counter("daemon.chaos.bursts"),
            scrapes: metrics::counter("daemon.scrapes"),
        }
    })
}

/// HTTP status code of a raw response string (0 when unparseable).
fn status_of(response: &str) -> u16 {
    response.split_whitespace().nth(1).and_then(|s| s.parse::<u16>().ok()).unwrap_or(0)
}

/// Runs the daemon to feed exhaustion and reports what happened.
///
/// The loop: drain the seeded event feed; every tick re-plans with the
/// tick's perturbed demand, every cut/repair re-plans immediately with
/// the current demand, every chaos burst re-plans under an injected
/// stall. A plan computed within budget is installed (and flips
/// `/readyz` on first success); a late plan is discarded in favour of
/// the previous one (fallback + incident dump); a `PlanError` keeps the
/// previous plan too (incident dump, no fallback count).
pub fn serve(wan: Wan, config: &ServeConfig) -> Result<ServeReport, ServeError> {
    // SLO budget for this run; also resets the rolling window so the
    // verdicts below start clean.
    let budget = if config.budget_seconds.is_finite() && config.budget_seconds > 0.0 {
        config.budget_seconds
    } else {
        SloConfig::default().budget_seconds
    };
    slo::configure(SloConfig { budget_seconds: budget, ..SloConfig::default() });

    export::set_ready(false);
    let mut exporter = export::spawn(config.addr.as_str()).map_err(ServeError::Io)?;
    let addr = exporter.local_addr();
    let readyz_before = export::http_get(addr, "/readyz").map(|r| status_of(&r)).unwrap_or(0);

    // Offline stage: scenarios, demand, LotteryTickets.
    let num_fibers = wan.optical.num_fibers();
    let chaos_wan = config.chaos.as_ref().map(|_| wan.clone());
    let failures = generate_failures(
        &wan,
        &FailureConfig { max_scenarios: config.scenarios.max(1), ..Default::default() },
    );
    let base_tm = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() })
        [0]
    .scaled(config.demand_scale);
    let mut controller = ArrowController::new(
        wan,
        failures.failure_scenarios().to_vec(),
        ControllerConfig {
            lottery: LotteryConfig { num_tickets: config.tickets.max(1), ..Default::default() },
            tunnels: TunnelConfig {
                tunnels_per_flow: config.tunnels_per_flow.max(1),
                ..Default::default()
            },
            solver: arrow_lp::SolverConfig { backend: config.backend, ..Default::default() },
            ..Default::default()
        },
    );

    // The calendar: ticks + cuts from the seed, bursts from chaos mode.
    let mut feed = EventFeed::new(FeedConfig {
        seed: config.seed,
        epoch_interval_s: config.epoch_interval_s,
        epochs: config.epochs,
        num_fibers,
        mean_cut_interval_s: config.mean_cut_interval_s,
        repair_after_s: config.repair_after_s,
        demand_jitter: config.demand_jitter,
    });
    if let (Some(chaos_cfg), Some(chaos_wan)) = (config.chaos.as_ref(), chaos_wan.as_ref()) {
        chaos::schedule_bursts(
            chaos_wan,
            &mut feed,
            chaos_cfg,
            config.epochs,
            config.epoch_interval_s,
        );
    }

    let recorder = FlightRecorder::install(config.recorder_capacity, &config.incident_dir);
    let dm = daemon_metrics();

    let mut report = ServeReport {
        epochs_planned: 0,
        ticks: 0,
        cut_replans: 0,
        chaos_bursts: 0,
        fallbacks: 0,
        plan_errors: 0,
        warm_hits: 0,
        warm_hit_ratio: 0.0,
        installed_history: Vec::new(),
        incidents: Vec::new(),
        incidents_reach_lp_solve: true,
        event_log: Vec::new(),
        winning_digest: 0xcbf2_9ce4_8422_2325,
        epoch_seconds: Vec::new(),
        wall_seconds: 0.0,
        scrapes_ok: 0,
        readyz_before,
        readyz_after: 0,
        metrics_addr: addr.to_string(),
    };
    let mut installed: Option<(u64, TePlan)> = None;
    let mut last_scale = 1.0_f64;
    // arrow-lint: allow(wall-clock-in-core) — loop throughput reporting only; no planning decision reads it
    let loop_start = std::time::Instant::now();

    while let Some((t, ev)) = feed.next_event() {
        report.event_log.push(format!("t={t:.1} {}", ev.label()));
        let (trigger, stall_seconds) = match &ev {
            FeedEvent::EpochTick { demand_scale, .. } => {
                report.ticks += 1;
                last_scale = *demand_scale;
                ("tick", 0.0)
            }
            FeedEvent::FiberCut { .. } => {
                report.cut_replans += 1;
                dm.cut_replans.inc();
                ("fiber-cut", 0.0)
            }
            FeedEvent::FiberRepair { .. } => {
                report.cut_replans += 1;
                dm.cut_replans.inc();
                ("fiber-repair", 0.0)
            }
            FeedEvent::ChaosBurst { stall_seconds, .. } => {
                report.chaos_bursts += 1;
                dm.bursts.inc();
                ("chaos-burst", *stall_seconds)
            }
        };
        let trigger_label =
            format!("{trigger}: {}", report.event_log.last().map(String::as_str).unwrap_or(""));
        let epoch_idx = report.epochs_planned;
        let tm = base_tm.scaled(last_scale);

        recorder.begin_epoch();
        let stall_hook = move || {
            event!(warn: "daemon.chaos.stall", "seconds" => stall_seconds);
            std::thread::sleep(std::time::Duration::from_secs_f64(stall_seconds.max(0.0)));
        };
        let hook: Option<EpochHook<'_>> =
            if stall_seconds > 0.0 { Some(&stall_hook) } else { None };

        match controller.plan_epoch(&tm, hook) {
            Ok((plan, epoch_report)) => {
                report.epochs_planned += 1;
                dm.epochs.inc();
                report.epoch_seconds.push(epoch_report.seconds);
                // Digest the *computed* plan: deterministic under a fixed
                // seed regardless of how the wall clock judged it.
                report.winning_digest = fnv1a(report.winning_digest, &epoch_idx.to_le_bytes());
                for &w in &plan.outcome.winning {
                    report.winning_digest = fnv1a(report.winning_digest, &(w as u64).to_le_bytes());
                }
                if plan.outcome.phase1_stats.warm == arrow_lp::WarmEvent::Hit {
                    report.warm_hits += 1;
                }
                if epoch_report.verdict.met {
                    installed = Some((epoch_idx, plan));
                    if !export::ready() {
                        export::set_ready(true);
                        event!("daemon.ready", "epoch" => epoch_idx);
                    }
                } else if installed.is_some() {
                    // Deadline miss with a previous plan to fall back on:
                    // keep it installed, discard the late plan.
                    report.fallbacks += 1;
                    dm.fallback.inc();
                    let detail = format!(
                        "epoch took {:.3}s against a {:.3}s budget; reusing plan from epoch {}",
                        epoch_report.seconds,
                        epoch_report.verdict.budget_seconds,
                        installed.as_ref().map(|(i, _)| *i).unwrap_or(0),
                    );
                    event!(warn: "daemon.fallback",
                        "epoch" => epoch_idx,
                        "seconds" => epoch_report.seconds,
                        "budget" => epoch_report.verdict.budget_seconds);
                    let dump = recorder
                        .capture("deadline-miss", epoch_idx, &trigger_label, &detail)
                        .map_err(ServeError::Io)?;
                    report.incidents_reach_lp_solve &= dump.critical_path_contains("lp.solve");
                    report.incidents.push(dump);
                } else {
                    // Miss with nothing to fall back on (cold start on a
                    // slow machine): install the late plan — a late plan
                    // beats no plan — but record the incident.
                    let detail = format!(
                        "epoch took {:.3}s against a {:.3}s budget; no previous plan, installing late",
                        epoch_report.seconds, epoch_report.verdict.budget_seconds,
                    );
                    let dump = recorder
                        .capture("deadline-miss", epoch_idx, &trigger_label, &detail)
                        .map_err(ServeError::Io)?;
                    report.incidents_reach_lp_solve &= dump.critical_path_contains("lp.solve");
                    report.incidents.push(dump);
                    installed = Some((epoch_idx, plan));
                    if !export::ready() {
                        export::set_ready(true);
                    }
                }
            }
            Err(e) => {
                report.epochs_planned += 1;
                dm.epochs.inc();
                report.plan_errors += 1;
                dm.plan_errors.inc();
                event!(warn: "daemon.plan.error", "epoch" => epoch_idx, "error" => e.to_string());
                let dump = recorder
                    .capture("plan-error", epoch_idx, &trigger_label, &e.to_string())
                    .map_err(ServeError::Io)?;
                // A plan error dies before the LP; its critical path is
                // whatever the capture holds, so no lp.solve expectation.
                report.incidents.push(dump);
            }
        }
        report.installed_history.push(installed.as_ref().map(|(i, _)| *i));

        // Live self-scrape over the real socket: the daemon is its own
        // first Prometheus client.
        if config.scrape_every > 0 && report.epochs_planned.is_multiple_of(config.scrape_every) {
            let metrics_ok = export::http_get(addr, "/metrics")
                .map(|r| status_of(&r) == 200 && r.contains("epoch_seconds"))
                .unwrap_or(false);
            let readyz_ok =
                export::http_get(addr, "/readyz").map(|r| status_of(&r) == 200).unwrap_or(false);
            if metrics_ok && readyz_ok {
                report.scrapes_ok += 1;
                dm.scrapes.inc();
            }
        }
    }

    report.wall_seconds = loop_start.elapsed().as_secs_f64();
    report.warm_hit_ratio = if report.epochs_planned > 0 {
        report.warm_hits as f64 / report.epochs_planned as f64
    } else {
        0.0
    };
    report.readyz_after = export::http_get(addr, "/readyz").map(|r| status_of(&r)).unwrap_or(0);
    drop(recorder);
    exporter.shutdown();
    Ok(report)
}
