//! Chaos mode: deterministic correlated-failure bursts for the daemon.
//!
//! `arrow serve --chaos` injects [`FeedEvent::ChaosBurst`]s into the
//! event feed: correlated multi-fiber cut sets drawn from the same
//! [`compile_universe`] sources the offline sharding pipeline uses
//! (k-combinations and auto-SRLGs), paired with a planning *stall* that
//! burns wall-clock time inside the epoch's deadline window. The stall
//! models controller overload — the exact failure mode the flight
//! recorder exists to capture — and is sized above the SLO budget so
//! every burst forces a deadline miss, a previous-plan fallback, and an
//! incident dump, on demand and deterministically.
//!
//! Determinism: burst cut sets come from a seeded universe compile and
//! burst times are a pure function of the config (mid-interval slots
//! spread evenly across the horizon), so two runs with the same seed
//! inject byte-identical bursts. No wall clock, no extra RNG state.

use arrow_sim::{EventFeed, FeedEvent};
use arrow_topology::{compile_universe, UniverseConfig, Wan};

/// Chaos-mode settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the scenario-universe compile the cut sets come from.
    pub seed: u64,
    /// Number of bursts to inject across the soak.
    pub bursts: u64,
    /// Wall-clock stall injected into each burst epoch's planning window.
    /// Size this above the SLO budget to force a deadline miss.
    pub stall_seconds: f64,
    /// Cap on the compiled universe feeding the cut sets.
    pub max_scenarios: usize,
    /// Earliest epoch a burst may land in (leave the cold-start epoch and
    /// the first warm epoch alone so the cache is primed).
    pub first_burst_epoch: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1337,
            bursts: 3,
            stall_seconds: 3.0,
            max_scenarios: 32,
            first_burst_epoch: 2,
        }
    }
}

/// Compiles the scenario universe and injects `cfg.bursts` correlated
/// bursts into `feed`, spread evenly across `[first_burst_epoch, epochs)`
/// at mid-interval times (so a burst re-plan lands between two ticks).
/// Returns the number of bursts injected.
pub fn schedule_bursts(
    wan: &Wan,
    feed: &mut EventFeed,
    cfg: &ChaosConfig,
    epochs: u64,
    epoch_interval_s: f64,
) -> u64 {
    if cfg.bursts == 0 || epochs == 0 {
        return 0;
    }
    let universe = compile_universe(
        wan,
        &UniverseConfig {
            seed: cfg.seed,
            max_k: 2,
            auto_srlg_size: 3,
            max_scenarios: cfg.max_scenarios.max(1),
            ..Default::default()
        },
    );
    // Prefer genuinely correlated (multi-fiber) cut sets; fall back to
    // single cuts if the topology is too small to yield any.
    let mut cut_sets: Vec<Vec<usize>> = universe
        .scenarios
        .iter()
        .filter(|s| s.scenario.cut_fibers.len() >= 2)
        .map(|s| s.scenario.cut_fibers.iter().map(|f| f.0).collect())
        .collect();
    if cut_sets.is_empty() {
        cut_sets = universe
            .scenarios
            .iter()
            .filter(|s| !s.scenario.cut_fibers.is_empty())
            .map(|s| s.scenario.cut_fibers.iter().map(|f| f.0).collect())
            .collect();
    }
    if cut_sets.is_empty() {
        return 0;
    }

    let first = cfg.first_burst_epoch.min(epochs.saturating_sub(1));
    let span = (epochs - first).max(1);
    let mut injected = 0;
    for i in 0..cfg.bursts {
        let fibers = cut_sets[(i as usize) % cut_sets.len()].clone();
        // Even spread: burst i sits at fraction (i + 0.5)/bursts of the
        // remaining horizon, at the middle of its epoch interval.
        let frac = (i as f64 + 0.5) / cfg.bursts as f64;
        let epoch = first + ((frac * span as f64) as u64).min(span - 1);
        let at = (epoch as f64 + 0.5) * epoch_interval_s;
        feed.inject(
            at,
            FeedEvent::ChaosBurst { fibers, stall_seconds: cfg.stall_seconds.max(0.0) },
        );
        injected += 1;
    }
    arrow_obs::event!(
        "daemon.chaos.scheduled",
        "bursts" => injected,
        "stall_seconds" => cfg.stall_seconds
    );
    injected
}
