//! The flight recorder: a per-epoch ring capture with incident dumps.
//!
//! The daemon cannot afford a `FileSubscriber` writing every span of a
//! soak to disk — hundreds of epochs of healthy traces are noise. Instead
//! it keeps one bounded [`RingSubscriber`] installed for the whole run and
//! clears it at the top of every epoch, so the ring always holds exactly
//! the *current* epoch's spans and events. When an epoch misses its SLO
//! deadline or errors out, [`FlightRecorder::capture`] freezes the ring
//! into a timestamped incident directory via [`arrow_obs::incident`]:
//! span tree, critical path, per-stage attribution, metrics snapshot, and
//! the triggering feed event. Healthy epochs cost two atomic ring resets
//! and nothing else.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use arrow_obs::incident::{self, IncidentContext, IncidentDump};
use arrow_obs::trace::{self, RingSubscriber};

/// Owns the installed ring subscriber and the incident directory.
pub struct FlightRecorder {
    ring: Arc<RingSubscriber>,
    incident_dir: PathBuf,
    installed: bool,
}

impl FlightRecorder {
    /// Creates the ring (capacity floored at 1024 records so one epoch's
    /// span tree always fits) and installs it as the process tracer.
    pub fn install(capacity: usize, incident_dir: impl Into<PathBuf>) -> FlightRecorder {
        let ring = Arc::new(RingSubscriber::new(capacity.max(1024)));
        trace::install(ring.clone());
        FlightRecorder { ring, incident_dir: incident_dir.into(), installed: true }
    }

    /// Resets the capture window: call at the top of every epoch.
    pub fn begin_epoch(&self) {
        self.ring.clear();
    }

    /// Where incident directories are written.
    pub fn incident_dir(&self) -> &PathBuf {
        &self.incident_dir
    }

    /// Freezes the current capture into an incident directory.
    pub fn capture(
        &self,
        reason: &str,
        epoch: u64,
        trigger: &str,
        detail: &str,
    ) -> io::Result<IncidentDump> {
        let records = self.ring.records();
        incident::dump(
            &self.incident_dir,
            &IncidentContext { reason, epoch, trigger, detail, records: &records },
        )
    }

    /// Uninstalls the tracer. Idempotent; also runs on drop.
    pub fn uninstall(&mut self) {
        if self.installed {
            trace::uninstall();
            self.installed = false;
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.uninstall();
    }
}
