//! Offline stand-in for `serde_json` (API-compatible subset).
//!
//! Renders the compat `serde` [`Value`] tree to JSON text and parses it
//! back: [`to_string`], [`to_string_pretty`], [`from_str`], plus the
//! [`Error`] type used by `arrow-topology::io`. Number handling matches
//! the compat `serde` conventions (integers as integers, non-finite floats
//! as `null`).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/parse error (message + byte offset where relevant).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints integral floats without a dot; force one so
                // the value parses back as a float-compatible number.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(pairs) => {
            write_seq(out, pairs.iter(), indent, depth, ('{', '}'), |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            })
        }
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c =
                                char::from_u32(hex).ok_or_else(|| Error::new("bad \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if let Ok(u) = text.parse::<u64>() {
            // Non-negative integers parse as UInt (upstream serde_json's
            // PosInt), so serialize→parse round-trips the variant exactly.
            Ok(Value::UInt(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("B4 \"wan\"\n".into())),
            ("n".into(), Value::UInt(12)),
            ("x".into(), Value::Float(2.5)),
            ("neg".into(), Value::Int(-3)),
            ("flags".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&Value::Float(4.0)).unwrap();
        assert_eq!(text, "4.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 4.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
