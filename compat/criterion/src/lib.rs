//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! Provides just enough of Criterion's surface for the workspace's
//! micro-benchmarks: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `iter`, and the [`criterion_group!`]/
//! [`criterion_main!`] macros. Instead of Criterion's statistical
//! analysis, each benchmark runs `sample_size` timed iterations after one
//! warm-up and prints min/mean/max wall-clock per iteration — adequate for
//! the relative comparisons the bench harness reports.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export of the standard black box, matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { samples: 10 }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] whose `iter` call is
    /// timed `sample_size` times (after one untimed warm-up).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { seconds: Vec::with_capacity(self.samples + 1) };
        for _ in 0..self.samples + 1 {
            f(&mut b);
        }
        // Drop the warm-up sample.
        let timed = &b.seconds[1..];
        let (mut min, mut max, mut sum) = (f64::INFINITY, 0.0f64, 0.0);
        for &s in timed {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        println!(
            "  {id}: mean {:.4}s min {:.4}s max {:.4}s ({} samples)",
            sum / timed.len() as f64,
            min,
            max,
            timed.len()
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Times one closure execution per call.
pub struct Bencher {
    seconds: Vec<f64>,
}

impl Bencher {
    /// Runs and times `f` once, recording the duration as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.seconds.push(t0.elapsed().as_secs_f64());
    }
}

/// Declares a function bundling several benchmark functions, like
/// upstream's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
