//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand`'s API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges. The generator is xoshiro256++ (Blackman & Vigna), seeded
//! through splitmix64 exactly as the reference implementation recommends —
//! deterministic, fast, and statistically strong enough for the Weibull /
//! log-normal / rounding draws this repository makes.
//!
//! **Not** the real `rand`: stream values differ from upstream `StdRng`
//! (ChaCha12). Every consumer in this workspace treats seeds as opaque
//! reproducibility handles, so only determinism matters, not the exact
//! stream. Distribution-shape unit tests in `arrow-topology` guard the
//! statistical quality.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: the `u64` convenience constructor).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniform draw of the output type (subset: `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable via [`Rng::gen`].
pub trait Standard: Sized {
    /// One standard draw.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// splitmix64 step — used for seeding and stream derivation.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((reject_sample(rng, span)) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Unbiased `[0, span)` draw by rejection (span > 0).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Stream values differ from upstream `rand`'s ChaCha12-based `StdRng`;
    /// seeds are opaque reproducibility handles here, nothing depends on
    /// the exact sequence.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            // splitmix64 expansion per the xoshiro reference implementation.
            let s = [
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
            ];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn uniform_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
