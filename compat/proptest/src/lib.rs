//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! tuple strategies, [`collection::vec`], [`any`], and the
//! `prop_assert!`/`prop_assert_eq!` macros. Cases are sampled from a
//! deterministic per-test RNG (seeded from the test's module path), so
//! failures reproduce exactly across runs and machines.
//!
//! **Deliberately omitted** (unused here): shrinking, persisted failure
//! files, `prop_compose!`, recursive/boxed strategies, filtering. A
//! failing case panics with the sampled inputs' debug representation so it
//! can be turned into a fixed regression test by hand.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset: case count; `max_shrink_iters` is
/// accepted for upstream compatibility but unused — this stub does not
/// shrink).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Upstream-compatible knob; ignored (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// The RNG handed to strategies (deterministic per test + case).
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for one case of one named test, stable across runs.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform draw from a range (delegates to the compat `rand`).
    pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }

    /// One random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// `any::<T>()` — the type's full-range strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths acceptable to [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoLen {
        /// Draws the length for one sample.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoLen for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with the given element strategy/length.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts inside a property; failure aborts only the current case with a
/// formatted message (here: an `Err` that the harness reports with the
/// case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// The property-test harness macro (subset of upstream `proptest!`).
///
/// Each property becomes a `#[test]` that samples its arguments from
/// deterministic strategies `cases` times and runs the body; the body may
/// `return Ok(())` early and uses `prop_assert!`-family macros to fail.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..(cfg.cases as u64) {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __dbg = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                    $(&$arg,)*
                );
                let __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = __run() {
                    panic!(
                        "property `{}` failed on case {}/{}:\n{}\ninputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        cfg.cases,
                        e,
                        __dbg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(
            n in 2usize..6,
            xs in crate::collection::vec(-2.0f64..2.0, 10),
            pair in (0usize..9, any::<bool>()),
        ) {
            prop_assert!((2..6).contains(&n));
            prop_assert_eq!(xs.len(), 10);
            for x in &xs {
                prop_assert!((-2.0..2.0).contains(x), "x = {x}");
            }
            prop_assert!(pair.0 < 9);
            if pair.1 {
                return Ok(());
            }
        }

        #[test]
        fn variable_length_vec(xs in crate::collection::vec(0u64..5, 1..4)) {
            prop_assert!(!xs.is_empty() && xs.len() < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        assert_eq!(
            crate::Strategy::sample(&(0usize..100), &mut a),
            crate::Strategy::sample(&(0usize..100), &mut b)
        );
    }
}
