//! Offline `#[derive(Serialize, Deserialize)]` for the compat `serde`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable
//! offline, so this macro parses the derive input token stream by hand. It
//! supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields (including private fields),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums whose variants are all unit variants (serialized as strings).
//!
//! Generics, `#[serde(...)]` attributes, and data-carrying enum variants
//! are rejected with a compile error naming this file, so a future change
//! that needs them fails loudly instead of mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive target.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(A, B);` — field count.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { V1, V2 }` — variant names.
    UnitEnum(Vec<String>),
}

struct Target {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Splits a token slice on top-level commas, tracking `<...>` depth so a
/// type like `Vec<(A, B)>` does not split inside its generic arguments.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drops leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// from a token slice, returning the remainder.
fn strip_attrs_and_vis(mut tokens: &[TokenTree]) -> &[TokenTree] {
    loop {
        match tokens {
            [TokenTree::Punct(p), TokenTree::Group(_), rest @ ..] if p.as_char() == '#' => {
                tokens = rest;
            }
            [TokenTree::Ident(i), TokenTree::Group(g), rest @ ..]
                if i.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                tokens = rest;
            }
            [TokenTree::Ident(i), rest @ ..] if i.to_string() == "pub" => {
                tokens = rest;
            }
            _ => return tokens,
        }
    }
}

fn parse_target(input: TokenStream) -> Result<Target, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attrs_and_vis(&tokens);
    let (kind, rest) = match tokens {
        [TokenTree::Ident(k), rest @ ..] => (k.to_string(), rest),
        _ => return Err("serde compat derive: expected `struct` or `enum`".into()),
    };
    let (name, rest) = match rest {
        [TokenTree::Ident(n), rest @ ..] => (n.to_string(), rest),
        _ => return Err("serde compat derive: expected a type name".into()),
    };
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde compat derive: generic type `{name}` is unsupported (see compat/serde_derive)"
        ));
    }
    match kind.as_str() {
        "struct" => match rest {
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for field in split_top_level_commas(&body) {
                    let field = strip_attrs_and_vis(&field);
                    match field {
                        [] => continue,
                        [TokenTree::Ident(f), TokenTree::Punct(c), ..] if c.as_char() == ':' => {
                            fields.push(f.to_string());
                        }
                        _ => {
                            return Err(format!(
                                "serde compat derive: unparsable field in `{name}`"
                            ))
                        }
                    }
                }
                Ok(Target { name, shape: Shape::Named(fields) })
            }
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let n = split_top_level_commas(&body)
                    .into_iter()
                    .filter(|f| !strip_attrs_and_vis(f).is_empty())
                    .count();
                Ok(Target { name, shape: Shape::Tuple(n) })
            }
            [TokenTree::Punct(p), ..] if p.as_char() == ';' => {
                Ok(Target { name, shape: Shape::Unit })
            }
            [] => Ok(Target { name, shape: Shape::Unit }),
            _ => Err(format!("serde compat derive: unsupported struct shape for `{name}`")),
        },
        "enum" => match rest {
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for var in split_top_level_commas(&body) {
                    let var = strip_attrs_and_vis(&var);
                    match var {
                        [] => continue,
                        [TokenTree::Ident(v)] => variants.push(v.to_string()),
                        _ => {
                            return Err(format!(
                                "serde compat derive: enum `{name}` has a non-unit \
                                 variant, which is unsupported (see compat/serde_derive)"
                            ))
                        }
                    }
                }
                Ok(Target { name, shape: Shape::UnitEnum(variants) })
            }
            _ => Err(format!("serde compat derive: unsupported enum shape for `{name}`")),
        },
        other => Err(format!("serde compat derive: cannot derive for `{other}`")),
    }
}

/// `#[derive(Serialize)]` — emits `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = match parse_target(input) {
        Ok(t) => t,
        Err(e) => return compile_error(&e),
    };
    let name = &target.name;
    let body = match &target.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// `#[derive(Deserialize)]` — emits `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = match parse_target(input) {
        Ok(t) => t,
        Err(e) => return compile_error(&e),
    };
    let name = &target.name;
    let body = match &target.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         __v.get({f:?}).ok_or_else(|| \
                         ::serde::DeError::missing_field({name:?}, {f:?}))?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                         ::serde::DeError::bad_type({name:?}))?)?"
                    )
                })
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::bad_type({name:?}))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "let __s = __v.as_str().ok_or_else(|| \
                 ::serde::DeError::bad_type({name:?}))?;\n\
                 match __s {{ {} _ => \
                 ::std::result::Result::Err(::serde::DeError::bad_type({name:?})) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
