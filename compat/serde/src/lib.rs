//! Offline stand-in for `serde` (API-compatible subset).
//!
//! No crates.io access exists in the build environment, so the workspace
//! vendors a tiny self-describing serialization core: a JSON-shaped
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that convert
//! to/from it, and `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` compat crate) for the struct/enum shapes this
//! repository uses. The compat `serde_json` crate renders [`Value`] to
//! JSON text and parses it back.
//!
//! This is **not** the real serde data model — no zero-copy, no
//! borrowed deserialization, no `#[serde(...)]` attributes. The subset is
//! enough for the snapshot I/O in `arrow-topology::io` and keeps the
//! public derive surface source-compatible with upstream.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers every integral field in the workspace).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object — insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (ints widen; `null` is NaN, matching the
    /// serializer's encoding of non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` for non-negative integral values.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus the offending context.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A struct field was absent from the object.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while reading `{ty}`"))
    }

    /// The value's JSON type does not match the Rust type.
    pub fn bad_type(ty: &str) -> Self {
        DeError(format!("type mismatch while reading `{ty}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the dynamic [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the dynamic [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::bad_type("bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::bad_type(stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| DeError::bad_type(stringify!($t)))
            }
        }
    )*};
}

impl_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::bad_type(stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| DeError::bad_type(stringify!($t)))
            }
        }
    )*};
}

impl_int!(isize, i64, i32, i16, i8);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // JSON has no NaN/Inf; round-trips back as NaN via `as_f64`.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::bad_type("f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::bad_type("String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array().ok_or_else(|| DeError::bad_type("Vec"))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::bad_type("tuple"))?;
                Ok(($(
                    $t::from_value(items.get($i).ok_or_else(|| DeError::bad_type("tuple"))?)?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
