//! The batched-LP bitwise contract, end to end.
//!
//! PR-level invariants pinned here:
//!
//! * `solve_relaxed_batch` is bitwise identical to per-scenario
//!   `solve_relaxed` for arbitrary scenario slices and lane counts, on both
//!   B4 and IBM, under the default (Auto) and PDHG-pinned solver configs —
//!   the latter routes structural groups through the struct-of-arrays
//!   multi-RHS kernel.
//! * A true multi-RHS family (one RWA model with per-lane gamma caps)
//!   solved as one PDHG panel matches lane-by-lane sequential solves to
//!   the bit.
//! * Offline ticket generation produces byte-identical `TicketSet` digests
//!   with batching on (`batch_lanes: 16`), off (`batch_lanes: 1`), and
//!   under sharding — the PR 6 sequential path and the batched path are
//!   indistinguishable in output.

use std::sync::OnceLock;

use arrow_core::lottery::{
    generate_tickets_shard, generate_tickets_universe, LotteryConfig, ShardSpec,
};
use arrow_lp::{Backend, SolverConfig};
use arrow_optical::rwa::{build_relaxed, solve_relaxed, solve_relaxed_batch, RwaConfig};
use arrow_te::TicketSet;
use arrow_topology::{
    b4, compile_universe, generate_failures, ibm, FailureConfig, FailureScenario, UniverseConfig,
    Wan,
};
use proptest::prelude::*;

fn fixture(use_ibm: bool) -> &'static (Wan, Vec<FailureScenario>) {
    static B4: OnceLock<(Wan, Vec<FailureScenario>)> = OnceLock::new();
    static IBM: OnceLock<(Wan, Vec<FailureScenario>)> = OnceLock::new();
    let build = move || {
        let wan = if use_ibm { ibm(17) } else { b4(17) };
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 8, ..Default::default() });
        let scens = failures.failure_scenarios().to_vec();
        (wan, scens)
    };
    if use_ibm {
        IBM.get_or_init(build)
    } else {
        B4.get_or_init(build)
    }
}

fn pdhg_rwa() -> RwaConfig {
    RwaConfig { solver: SolverConfig::first_order(1e-7), ..RwaConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Batched relaxed RWA is bitwise identical to sequential solves for
    /// random scenario slices and 1/2/7-lane batches. `Debug` for `f64`
    /// round-trips, so equal renderings mean bitwise-equal solutions.
    #[test]
    fn batched_rwa_bitwise_matches_sequential(
        use_ibm in any::<bool>(),
        start in 0usize..8,
        lane_pick in 0usize..3,
        pin_pdhg in any::<bool>(),
    ) {
        let lanes = [1usize, 2, 7][lane_pick];
        let (wan, scens) = fixture(use_ibm);
        let rwa = if pin_pdhg { pdhg_rwa() } else { RwaConfig::default() };
        let picked: Vec<&FailureScenario> =
            (0..lanes).map(|i| &scens[(start + i) % scens.len()]).collect();
        let cuts: Vec<_> = picked.iter().map(|s| s.cut_fibers.as_slice()).collect();
        let batched = solve_relaxed_batch(&wan.optical, &cuts, &rwa);
        prop_assert_eq!(batched.len(), lanes);
        for (cut, b) in cuts.iter().zip(&batched) {
            let seq = solve_relaxed(&wan.optical, cut, &rwa);
            prop_assert_eq!(format!("{seq:?}"), format!("{b:?}"));
        }
    }
}

/// One RWA model cloned into a multi-RHS family — per-lane gamma caps
/// patched via `Model::set_rhs` — and solved as a single PDHG panel. This
/// is the pure tentpole kernel path (every lane shares structure, none can
/// fall back to sequential grouping) and must match lane-by-lane
/// sequential solves bit for bit.
#[test]
fn gamma_patched_multi_rhs_panel_is_bitwise_sequential() {
    let (wan, scens) = fixture(true);
    // Pick the scenario whose RWA LP has the most rows so the panel is
    // non-trivial.
    let rwa = RwaConfig::default();
    let base = scens
        .iter()
        .map(|s| build_relaxed(&wan.optical, &s.cut_fibers, &rwa))
        .max_by_key(|lp| lp.model.num_cons())
        .expect("non-empty scenario set");
    assert!(!base.gamma_rows().is_empty(), "need gamma rows to patch");

    let lanes = 7;
    let models: Vec<arrow_lp::Model> = (0..lanes)
        .map(|l| {
            let mut m = base.model.clone();
            for &row in base.gamma_rows() {
                // Tighten each lane's restoration budget differently.
                let cap = m.rhs(row);
                m.set_rhs(row, (cap - l as f64).max(1.0));
            }
            m
        })
        .collect();

    let cfg = SolverConfig::first_order(1e-7);
    let batched = arrow_lp::solve_batch(&models, &cfg);
    assert_eq!(batched.len(), lanes);
    for (model, b) in models.iter().zip(&batched) {
        assert_eq!(b.stats.lanes, lanes, "lane missed the shared panel");
        assert_eq!(b.stats.backend, arrow_lp::BackendKind::Pdhg);
        let seq = arrow_lp::solve(model, &cfg);
        assert_eq!(seq.status, b.status);
        assert_eq!(seq.objective.to_bits(), b.objective.to_bits());
        for (xs, xb) in seq.x.iter().zip(&b.x) {
            assert_eq!(xs.to_bits(), xb.to_bits());
        }
        for (ds, db) in seq.duals.iter().zip(&b.duals) {
            assert_eq!(ds.to_bits(), db.to_bits());
        }
    }
}

fn small_universe() -> (Wan, arrow_topology::ScenarioUniverse) {
    let wan = ibm(17);
    let uni = compile_universe(
        &wan,
        &UniverseConfig {
            max_k: 2,
            cutoff: 1e-4,
            auto_srlg_size: 3,
            auto_srlg_probability: 1e-3,
            max_scenarios: 10,
            ..Default::default()
        },
    );
    assert!(uni.len() >= 6, "universe too small: {}", uni.len());
    (wan, uni)
}

/// Ticket digests are unchanged by batching: `batch_lanes: 16` (default),
/// `batch_lanes: 1` (the PR 6 sequential path), and odd lane widths all
/// produce byte-identical `TicketSet`s.
#[test]
fn ticket_digests_unchanged_by_batching() {
    let (wan, uni) = small_universe();
    let sequential = LotteryConfig { num_tickets: 6, batch_lanes: 1, ..Default::default() };
    let (reference, _) = generate_tickets_universe(&wan, &uni, &sequential);
    for lanes in [2usize, 3, 16] {
        let cfg = LotteryConfig { batch_lanes: lanes, ..sequential.clone() };
        let (set, _) = generate_tickets_universe(&wan, &uni, &cfg);
        assert_eq!(set, reference, "TicketSet diverged at batch_lanes={lanes}");
        assert_eq!(set.digest(), reference.digest(), "digest diverged at batch_lanes={lanes}");
    }
}

/// Sharded generation with batching merges back to the sequential
/// single-shard reference, byte for byte.
#[test]
fn batched_shards_merge_to_sequential_reference() {
    let (wan, uni) = small_universe();
    let sequential = LotteryConfig { num_tickets: 5, batch_lanes: 1, ..Default::default() };
    let batched = LotteryConfig { batch_lanes: 4, ..sequential.clone() };
    let (reference, _) = generate_tickets_universe(&wan, &uni, &sequential);
    for of in [2usize, 3] {
        let shards: Vec<TicketSet> = (0..of)
            .map(|index| generate_tickets_shard(&wan, &uni, &batched, ShardSpec { index, of }).0)
            .collect();
        let merged = TicketSet::merge_all(shards).expect("honest shards must merge");
        assert_eq!(merged, reference, "batched {of}-way shards diverged from sequential");
        assert_eq!(merged.digest(), reference.digest());
    }
}

/// A batch whose lanes include a zero-cut scenario (empty LP) solves
/// cleanly and matches the sequential result.
#[test]
fn zero_cut_lane_in_batch_is_clean() {
    let (wan, scens) = fixture(false);
    let rwa = RwaConfig::default();
    let cuts: Vec<&[_]> = vec![&[], scens[0].cut_fibers.as_slice()];
    let sols = solve_relaxed_batch(&wan.optical, &cuts, &rwa);
    assert_eq!(sols.len(), 2);
    assert!(sols[0].links.is_empty());
    assert_eq!(sols[0].total_wavelengths, 0.0);
    let seq = solve_relaxed(&wan.optical, &scens[0].cut_fibers, &rwa);
    assert_eq!(format!("{seq:?}"), format!("{:?}", sols[1]));
}

/// Pinning the PDHG backend end-to-end through ticket generation still
/// yields identical digests batched vs sequential — the strongest form of
/// the contract, since the panel kernel (not the simplex fallback) carries
/// the scenario LPs.
#[test]
fn pdhg_pinned_pipeline_digests_match() {
    let (wan, uni) = small_universe();
    let base = LotteryConfig {
        num_tickets: 4,
        rwa: RwaConfig {
            solver: SolverConfig { backend: Backend::Pdhg, ..SolverConfig::default() },
            allow_modulation_change: true,
            ..RwaConfig::default()
        },
        ..Default::default()
    };
    let sequential = LotteryConfig { batch_lanes: 1, ..base.clone() };
    let batched = LotteryConfig { batch_lanes: 8, ..base };
    let (a, _) = generate_tickets_universe(&wan, &uni, &sequential);
    let (b, _) = generate_tickets_universe(&wan, &uni, &batched);
    assert_eq!(a, b, "PDHG-pinned pipeline diverged under batching");
    assert_eq!(a.digest(), b.digest());
}
