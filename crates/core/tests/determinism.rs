//! Determinism regression tests for the parallel offline stage.
//!
//! The contract (see `LotteryConfig::seed` and `par`): ticket generation
//! depends only on `(seed, scenario, scenario_index, config)` — never on
//! the worker-thread count or scheduling. These tests pin
//! `generate_tickets` at 1, 2, and N threads against each other and
//! against the documented serial reference `generate_tickets_serial`.

use arrow_core::lottery::{
    derive_seed, generate_tickets, generate_tickets_serial, generate_tickets_shard,
    generate_tickets_universe, generate_tickets_with_threads, LotteryConfig, ShardSpec,
};
use arrow_te::TicketSet;
use arrow_topology::{
    b4, compile_universe, generate_failures, ibm, FailureConfig, FailureScenario, UniverseConfig,
    Wan,
};

fn setup(max_scenarios: usize) -> (Wan, Vec<FailureScenario>) {
    let wan = b4(17);
    let failures = generate_failures(&wan, &FailureConfig { max_scenarios, ..Default::default() });
    (wan, failures.failure_scenarios().to_vec())
}

#[test]
fn ticket_sets_identical_across_thread_counts() {
    let (wan, scens) = setup(8);
    let cfg = LotteryConfig { num_tickets: 10, ..Default::default() };
    let reference = generate_tickets_serial(&wan, &scens, &cfg);

    // The reference itself must be non-trivial or the test proves nothing.
    assert_eq!(reference.per_scenario.len(), scens.len());
    assert!(reference.total_tickets() > scens.len(), "want multiple tickets somewhere");

    for threads in [1, 2, 3, 4, 8, 32] {
        let (set, stats) = generate_tickets_with_threads(&wan, &scens, &cfg, threads);
        assert_eq!(set, reference, "TicketSet diverged at {threads} threads");
        assert_eq!(set.digest(), reference.digest(), "digest diverged at {threads} threads");
        assert_eq!(stats.per_scenario.len(), scens.len());
        assert_eq!(stats.total_kept(), set.total_tickets());
    }

    // The default entry point (pool sized by the environment) agrees too.
    assert_eq!(generate_tickets(&wan, &scens, &cfg), reference);
}

#[test]
fn ticket_sets_identical_across_thread_counts_on_ibm() {
    // IBM's denser surrogate-path structure once exposed a hash-order
    // dependence in the relaxed RWA (constraint rows emitted in HashMap
    // order, now a BTreeMap) that B4 never tripped — keep both topologies
    // in the regression.
    let wan = ibm(17);
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 8, ..Default::default() });
    let scens = failures.failure_scenarios().to_vec();
    let cfg = LotteryConfig { num_tickets: 12, ..Default::default() };
    let reference = generate_tickets_serial(&wan, &scens, &cfg);
    for threads in [2, 4, 8] {
        let (set, _) = generate_tickets_with_threads(&wan, &scens, &cfg, threads);
        assert_eq!(set, reference, "TicketSet diverged at {threads} threads");
    }
}

#[test]
fn repeated_runs_are_bitwise_stable() {
    let (wan, scens) = setup(5);
    let cfg = LotteryConfig { num_tickets: 6, ..Default::default() };
    let a = generate_tickets(&wan, &scens, &cfg);
    let b = generate_tickets(&wan, &scens, &cfg);
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn seed_changes_the_tickets() {
    let (wan, scens) = setup(5);
    let base = LotteryConfig { num_tickets: 10, feasibility_filter: false, ..Default::default() };
    let other = LotteryConfig { seed: base.seed + 1, ..base.clone() };
    let a = generate_tickets(&wan, &scens, &base);
    let b = generate_tickets(&wan, &scens, &other);
    assert_ne!(a.digest(), b.digest(), "different master seeds should explore differently");
}

#[test]
fn derived_seeds_are_distinct_per_scenario() {
    // Not a statistical test — just that the per-scenario streams cannot
    // collide for any realistic scenario count.
    let mut seen = std::collections::HashSet::new();
    for idx in 0..10_000u64 {
        assert!(seen.insert(derive_seed(41, idx)), "seed collision at scenario {idx}");
    }
    assert_ne!(derive_seed(41, 0), derive_seed(42, 0));
}

#[test]
fn relaxed_rwa_is_stable_across_runs_and_threads() {
    // The relaxed RWA feeds ticket generation; its LP rows must be emitted
    // in a fixed order (BTreeMap, not HashMap) or solutions drift between
    // processes. `Debug` for f64 round-trips, so equal renderings mean
    // bitwise-equal solutions.
    use arrow_optical::rwa::{solve_relaxed, RwaConfig};
    use arrow_optical::FiberId;
    let wan = ibm(17);
    let cfg = RwaConfig::default();
    let cuts: Vec<FiberId> = (0..wan.optical.num_fibers().min(6)).map(FiberId).collect();
    let reference: Vec<String> =
        cuts.iter().map(|&f| format!("{:?}", solve_relaxed(&wan.optical, &[f], &cfg))).collect();
    // Repeated in-process runs.
    for (i, &f) in cuts.iter().enumerate() {
        assert_eq!(
            format!("{:?}", solve_relaxed(&wan.optical, &[f], &cfg)),
            reference[i],
            "RWA solution drifted on repeat for fiber {f:?}"
        );
    }
    // Concurrent runs on fresh threads (a thread-seeded hash order would
    // diverge here even when repeats in one thread agree).
    let handles: Vec<_> = cuts
        .iter()
        .map(|&f| {
            let net = wan.optical.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || format!("{:?}", solve_relaxed(&net, &[f], &cfg)))
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), reference[i], "RWA solution diverged across threads");
    }
}

/// A small correlated universe on IBM for the shard-merge contract tests.
fn ibm_universe() -> (Wan, arrow_topology::ScenarioUniverse) {
    let wan = ibm(17);
    let uni = compile_universe(
        &wan,
        &UniverseConfig {
            max_k: 2,
            cutoff: 1e-4,
            auto_srlg_size: 3,
            auto_srlg_probability: 1e-3,
            maintenance_window: 2,
            maintenance_probability: 5e-4,
            max_scenarios: 10,
            ..Default::default()
        },
    );
    assert!(uni.len() >= 6, "universe too small to exercise sharding: {}", uni.len());
    (wan, uni)
}

#[test]
fn sharded_generation_merges_to_unsharded_bitwise_on_ibm() {
    // The shard/merge contract: for any shard count, generating each
    // shard independently and merging reproduces the single-shard run
    // byte for byte (same TicketSet, same digest) — scenario RNG streams
    // key off *global* universe indices, so the shard layout is
    // invisible in the output.
    let (wan, uni) = ibm_universe();
    let cfg = LotteryConfig { num_tickets: 6, ..Default::default() };
    let (full, _) = generate_tickets_universe(&wan, &uni, &cfg);
    assert!(full.is_full(), "single-shard run must cover 0..n in order");
    assert_eq!(full.per_scenario.len(), uni.len());

    for of in [1usize, 2, 3, 7] {
        let shards: Vec<TicketSet> = (0..of)
            .map(|index| generate_tickets_shard(&wan, &uni, &cfg, ShardSpec { index, of }).0)
            .collect();
        // Shards partition the universe.
        let covered: usize = shards.iter().map(|s| s.per_scenario.len()).sum();
        assert_eq!(covered, uni.len(), "shards {of}-way don't partition the universe");

        let merged = TicketSet::merge_all(shards.clone()).expect("honest shards must merge");
        assert_eq!(merged, full, "merged TicketSet diverged at {of} shards");
        assert_eq!(merged.digest(), full.digest(), "digest diverged at {of} shards");

        // Merge order must not matter either.
        let reversed =
            TicketSet::merge_all(shards.into_iter().rev()).expect("reverse merge must succeed");
        assert_eq!(reversed.digest(), full.digest(), "merge order changed bytes at {of} shards");
    }
}

#[test]
fn merge_is_commutative_and_associative_on_digests() {
    let (wan, uni) = ibm_universe();
    let cfg = LotteryConfig { num_tickets: 4, ..Default::default() };
    let shard = |index| generate_tickets_shard(&wan, &uni, &cfg, ShardSpec { index, of: 3 }).0;
    let (a, b, c) = (shard(0), shard(1), shard(2));

    // Commutativity.
    let ab = a.merge(&b).expect("a+b");
    let ba = b.merge(&a).expect("b+a");
    assert_eq!(ab.digest(), ba.digest(), "merge is not commutative");
    assert_eq!(ab, ba);

    // Associativity.
    let ab_c = ab.merge(&c).expect("(a+b)+c");
    let bc = b.merge(&c).expect("b+c");
    let a_bc = a.merge(&bc).expect("a+(b+c)");
    assert_eq!(ab_c.digest(), a_bc.digest(), "merge is not associative");
    assert_eq!(ab_c, a_bc);

    // Idempotence on overlap: merging a shard with itself is the shard.
    let aa = a.merge(&a).expect("a+a");
    assert_eq!(aa.digest(), a.digest(), "self-merge must dedup to the shard");
}

#[test]
fn scenario_tickets_do_not_depend_on_neighbours() {
    // Dropping a scenario from the slice must not change the tickets of
    // the scenarios that keep their indices (prefix stability) — this is
    // what makes parallel scheduling irrelevant.
    let (wan, scens) = setup(6);
    let cfg = LotteryConfig { num_tickets: 8, ..Default::default() };
    let full = generate_tickets_serial(&wan, &scens, &cfg);
    let prefix = generate_tickets_serial(&wan, &scens[..4], &cfg);
    assert_eq!(&full.per_scenario[..4], &prefix.per_scenario[..]);
}
