//! Property tests for the offline stage's numeric invariants.
//!
//! Two properties the paper's correctness argument leans on:
//!
//! * `round_once` (Algorithm 1 lines 4–11) always produces wavelength
//!   counts in `[0, γ_e]` — the round-up is capped by the lost-wavelength
//!   budget and the round-down floors at zero — for *any* fractional seed
//!   with `λ_e ≤ γ_e` (which `fractional_seed` guarantees).
//! * `realize_ticket` is grounded: the optical layer never credits a link
//!   with more Gbps than its ticket promised, so playback availability is
//!   conservative even for over-promising tickets.

use std::sync::OnceLock;

use arrow_core::lottery::{realize_ticket, round_once, FractionalRestoration, LotteryConfig};
use arrow_te::RestorationTicket;
use arrow_topology::{b4, generate_failures, FailureConfig, FailureScenario, IpLinkId, Wan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> &'static (Wan, Vec<FailureScenario>) {
    static FIXTURE: OnceLock<(Wan, Vec<FailureScenario>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let wan = b4(17);
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 6, ..Default::default() });
        let scens = failures.failure_scenarios().to_vec();
        (wan, scens)
    })
}

proptest! {
    #[test]
    fn round_once_stays_within_gamma(
        // Per link: lost wavelengths γ_e and the RWA fraction of it that is
        // restorable (λ_e = frac · γ_e ≤ γ_e, as fractional_seed yields).
        links in proptest::collection::vec((0usize..=12, 0.0f64..=1.0), 1..8),
        delta in 1usize..5,
        rng_seed in any::<u64>(),
    ) {
        let seed: Vec<FractionalRestoration> = links
            .iter()
            .enumerate()
            .map(|(i, &(lost, frac))| FractionalRestoration {
                link: IpLinkId(i),
                wavelengths: frac * lost as f64,
                lost_wavelengths: lost,
                gbps_per_wavelength: 100.0,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..16 {
            let counts = round_once(&mut rng, &seed, delta);
            prop_assert_eq!(counts.len(), seed.len());
            for (f, &c) in seed.iter().zip(&counts) {
                prop_assert!(
                    c <= f.lost_wavelengths,
                    "count {} exceeds γ_e = {} (λ_e = {})",
                    c,
                    f.lost_wavelengths,
                    f.wavelengths
                );
            }
        }
    }

    #[test]
    fn realize_ticket_never_exceeds_the_promise(
        scenario_sel in 0usize..6,
        scales in proptest::collection::vec(0.0f64..=2.0, 16),
    ) {
        let (wan, scens) = fixture();
        let scen = &scens[scenario_sel % scens.len()];
        // Promise an arbitrary fraction (up to 2x!) of each failed link's
        // capacity; the realization must stay at or below every promise.
        let ticket = RestorationTicket {
            restored: scen
                .failed_links
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    (l, scales[i % scales.len()] * wan.link(l).capacity_gbps)
                })
                .collect(),
        };
        let cfg = LotteryConfig::default();
        let realized = realize_ticket(wan, scen, &ticket, &cfg.rwa);
        prop_assert_eq!(realized.restored.len(), ticket.restored.len());
        for (&(link, promised), &(rlink, got)) in
            ticket.restored.iter().zip(&realized.restored)
        {
            prop_assert_eq!(link, rlink);
            prop_assert!(got >= 0.0, "negative restoration on link {:?}", link);
            prop_assert!(
                got <= promised + 1e-9,
                "link {:?} realized {} > promised {}",
                link,
                got,
                promised
            );
        }
        prop_assert!(realized.total_gbps() <= ticket.total_gbps() + 1e-9);
    }
}
