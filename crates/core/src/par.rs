//! Scenario-parallel execution for the offline stage.
//!
//! ARROW's offline stage (Algorithm 1) is embarrassingly parallel: one
//! relaxed-RWA solve plus randomized rounding *per failure scenario*, with
//! no cross-scenario state. This module provides the thread-scoped map the
//! library (and the bench harness, which re-exports it) fans that work out
//! with.
//!
//! Design notes, per DESIGN.md's synchronous CPU-bound rationale:
//!
//! * **`std` only.** Workers are `std::thread::scope` threads pulling
//!   indices from an atomic counter and returning `(index, result)` pairs
//!   over an `mpsc` channel; the caller reassembles results in input
//!   order. No `crossbeam`/`parking_lot`/`rayon` — the build environment
//!   vendors no external crates, and `std` covers this pattern cleanly.
//! * **Sizing.** The pool defaults to [`std::thread::available_parallelism`]
//!   and can be overridden with the `ARROW_THREADS` environment variable
//!   (any integer ≥ 1), e.g. `ARROW_THREADS=1` to force serial execution
//!   when profiling or bisecting.
//! * **Determinism.** `parallel_map` only controls *where* each item runs,
//!   never *what* it computes: `f` receives the item (at its original
//!   index) and results are returned in input order, so any `f` that
//!   depends only on its item yields output identical to `items.iter()
//!   .map(f)` for every thread count and scheduling. The offline stage
//!   pairs this with per-scenario RNG derivation
//!   ([`crate::lottery::derive_seed`]) so ticket generation is
//!   scheduling-independent end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable overriding the worker-thread count (≥ 1).
pub const THREADS_ENV: &str = "ARROW_THREADS";

/// The worker count used by [`parallel_map`]: the `ARROW_THREADS`
/// environment variable if set to an integer ≥ 1, else
/// [`std::thread::available_parallelism`] (falling back to 4 when that is
/// unavailable). A malformed override (non-numeric, zero, negative) is
/// reported through `arrow-obs` — a warn-level `par.threads.invalid` event
/// plus a counter of the same name — and ignored.
pub fn default_threads() -> usize {
    resolve_threads(std::env::var(THREADS_ENV).ok().as_deref())
}

/// Pure core of [`default_threads`]: `raw` is the `ARROW_THREADS` value if
/// the variable is set. Factored out so the fallback path is unit-testable
/// without mutating the process environment.
fn resolve_threads(raw: Option<&str>) -> usize {
    let fallback = || std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    match raw {
        None => fallback(),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                arrow_obs::metrics::counter("par.threads.invalid").inc();
                arrow_obs::event!(
                    warn: "par.threads.invalid",
                    "value" => v,
                    "fallback" => fallback(),
                );
                fallback()
            }
        },
    }
}

/// Runs `f` over `items` on [`default_threads`] workers, preserving order.
///
/// Equivalent to `items.iter().map(|t| f(t)).collect()` for any `f` whose
/// output depends only on its input — see the module docs on determinism.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(default_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count (used by the
/// determinism tests to pin 1/2/N threads regardless of environment).
///
/// `threads` is clamped to `[1, items.len()]`; with one worker (or one
/// item) the map runs inline on the calling thread with no pool at all.
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let (items_ref, f_ref, next_ref) = (&items, &f, &next);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f_ref(&items_ref[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Indices are a permutation of 0..n (each worker claims via the
        // shared counter), so a stable sort restores input order without
        // any per-slot occupancy bookkeeping.
        let mut out: Vec<(usize, R)> = rx.into_iter().collect();
        out.sort_by_key(|&(i, _)| i);
        out.into_iter().map(|(_, r)| r).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |&x: &i32| x * 3);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 17).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = parallel_map_with(threads, items.clone(), |&x| x.wrapping_mul(x) ^ 17);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map_with(8, vec![7], |&x: &i32| x + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn resolve_threads_accepts_valid_overrides() {
        assert_eq!(resolve_threads(Some("3")), 3);
        assert_eq!(resolve_threads(Some("  12 ")), 12);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn resolve_threads_warns_and_falls_back_on_malformed_values() {
        let expected = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        let before = arrow_obs::metrics::snapshot().counter("par.threads.invalid");
        let ring = std::sync::Arc::new(arrow_obs::RingSubscriber::new(64));
        arrow_obs::trace::install(ring.clone());
        for bad in ["", "zero", "0", "-2", "1.5"] {
            assert_eq!(resolve_threads(Some(bad)), expected, "value {bad:?}");
        }
        arrow_obs::trace::uninstall();
        let after = arrow_obs::metrics::snapshot().counter("par.threads.invalid");
        assert_eq!(after - before, 5, "each malformed value counted");
        let warnings: Vec<_> =
            ring.records().into_iter().filter(|r| r.name == "par.threads.invalid").collect();
        assert_eq!(warnings.len(), 5);
        assert!(warnings.iter().all(|w| w.level == arrow_obs::Level::Warn));
        assert_eq!(
            warnings[1].field("value").and_then(arrow_obs::FieldValue::as_str),
            Some("zero")
        );
    }
}
