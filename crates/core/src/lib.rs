//! # arrow-core — the paper's primary contribution
//!
//! ARROW's restoration-aware control plane (Fig. 8): the **LotteryTicket**
//! abstraction between the optical layer and the TE (§3.2), the Algorithm-1
//! randomized-rounding generator seeded by the relaxed RWA, the feasibility
//! filter, the Theorem 3.1 probabilistic-optimality calculator, and the
//! [`controller::ArrowController`] tying the offline stage (tickets) to the
//! online stage (two-phase TE, splitting ratios, ROADM reconfiguration
//! rules).
//!
//! The pieces compose like the paper's system diagram:
//!
//! ```text
//! IP/optical mapping ──► RWA relaxation ──► randomized rounding ──► LotteryTickets
//!                                                                       │ (offline)
//! traffic matrix ──► Phase I (pick winner) ──► Phase II (allocate) ──► ω_{f,t} + Z*
//!                                                                       │ (online)
//!                                              Z* ──► ROADM reconfiguration rules
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod lottery;
pub mod par;
pub mod theorem;

pub use controller::{
    ArrowController, ControllerConfig, EpochHook, EpochReport, PlanError, ReconfigRule, TePlan,
};
pub use lottery::{
    derive_seed, fractional_seed, generate_tickets, generate_tickets_serial,
    generate_tickets_shard, generate_tickets_shard_with_threads, generate_tickets_universe,
    generate_tickets_with_stats, generate_tickets_with_threads, naive_ticket, realize_ticket,
    FractionalRestoration, LotteryConfig, OfflineStats, ScenarioStats, ShardSpec,
};
pub use par::{default_threads, parallel_map, parallel_map_with};
pub use theorem::{
    kappa, optimality_probability, tickets_for_target, LinkRounding, RoundDirection,
};
