//! Theorem 3.1: ARROW's probabilistic optimality guarantee.
//!
//! With `|Z^q|` LotteryTickets per scenario, ARROW finds the optimal
//! allocation for scenario `q` with probability
//!
//! ```text
//! ρ^q = 1 − (1 − κ)^{|Z^q|}
//! κ   = Π_{1 ≤ e ≤ n} (1/δ) · Pr{round up/down}
//! ```
//!
//! where `Pr{round up}` is the fractional part of the RWA seed `λ_e` (and
//! `Pr{round down}` its complement), or 0.3/0.3/0.4 when `λ_e` is integral
//! (Appendix A.2/A.3). These functions compute `κ` and `ρ` and are checked
//! against a Monte-Carlo simulation of the rounding process in tests.

/// Which way the optimal ticket rounds a link relative to the RWA seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundDirection {
    /// The optimal value lies above `⌈λ⌉` (round-up branch).
    Up,
    /// The optimal value lies below `⌊λ⌋` (round-down branch).
    Down,
    /// The optimal value equals an integral `λ` (keep branch).
    Keep,
}

/// Per-link description of the optimal ticket's rounding event.
#[derive(Debug, Clone, Copy)]
pub struct LinkRounding {
    /// Fractional RWA seed `λ_e`.
    pub lambda: f64,
    /// The branch the optimal ticket requires.
    pub direction: RoundDirection,
}

/// Probability that a single randomized-rounding draw reproduces the
/// optimal ticket: `κ` of Theorem 3.1.
///
/// Per failed link, the draw must pick the right stride (probability
/// `1/δ`) and the right direction (fractional part or its complement; for
/// integral seeds 0.3/0.3/0.4 with `Keep` needing no stride).
pub fn kappa(delta: usize, links: &[LinkRounding]) -> f64 {
    assert!(delta >= 1, "stride bound must be at least 1");
    links
        .iter()
        .map(|l| {
            let frac = l.lambda - l.lambda.floor();
            let fractional = frac > 1e-9;
            match (fractional, l.direction) {
                (true, RoundDirection::Up) => frac / delta as f64,
                (true, RoundDirection::Down) => (1.0 - frac) / delta as f64,
                (true, RoundDirection::Keep) => 0.0, // unreachable by Alg. 1
                (false, RoundDirection::Up) => 0.3 / delta as f64,
                (false, RoundDirection::Down) => 0.3 / delta as f64,
                (false, RoundDirection::Keep) => 0.4,
            }
        })
        .product()
}

/// `ρ^q = 1 − (1 − κ)^{|Z^q|}`: probability that at least one of the
/// `num_tickets` independent draws is the optimal ticket.
pub fn optimality_probability(kappa: f64, num_tickets: usize) -> f64 {
    assert!((0.0..=1.0).contains(&kappa), "κ must be a probability, got {kappa}");
    1.0 - (1.0 - kappa).powi(num_tickets as i32)
}

/// Tickets needed so that `ρ^q ≥ target` (binomial inversion). Returns
/// `None` when `κ = 0` (the optimum is unreachable by rounding).
pub fn tickets_for_target(kappa: f64, target: f64) -> Option<usize> {
    assert!((0.0..1.0).contains(&target), "target must be in [0, 1)");
    if kappa <= 0.0 {
        return None;
    }
    if kappa >= 1.0 {
        return Some(1);
    }
    Some(((1.0 - target).ln() / (1.0 - kappa).ln()).ceil().max(1.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rho_is_monotone_in_tickets() {
        let k = 0.05;
        let mut prev = 0.0;
        for z in [1, 2, 5, 10, 50, 100] {
            let rho = optimality_probability(k, z);
            assert!(rho > prev);
            prev = rho;
        }
        assert!((optimality_probability(k, 1) - k).abs() < 1e-12);
    }

    #[test]
    fn tickets_for_target_inverts_rho() {
        let k = 0.03;
        let z = tickets_for_target(k, 0.95).unwrap();
        assert!(optimality_probability(k, z) >= 0.95);
        assert!(optimality_probability(k, z - 1) < 0.95);
        assert_eq!(tickets_for_target(0.0, 0.9), None);
        assert_eq!(tickets_for_target(1.0, 0.9), Some(1));
    }

    /// Monte-Carlo check of κ against a faithful simulation of Algorithm
    /// 1's per-link rounding for a two-link scenario.
    #[test]
    fn kappa_matches_monte_carlo() {
        let delta = 2usize;
        let links = [
            LinkRounding { lambda: 2.3, direction: RoundDirection::Up },
            LinkRounding { lambda: 1.7, direction: RoundDirection::Down },
        ];
        // Target ticket: link0 rounds up with stride 1 => 4; link1 rounds
        // down with stride 2 => -1 -> 0... pick stride 1 => 0. We count the
        // *event* (direction, stride) rather than the value to match κ's
        // definition.
        let analytic = kappa(delta, &links);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400_000;
        let mut hits = 0usize;
        for _ in 0..n {
            let mut ok = true;
            for (i, l) in links.iter().enumerate() {
                let x1 = rng.gen_range(1..=delta);
                let x2: f64 = rng.gen_range(0.0..1.0);
                let frac = l.lambda - l.lambda.floor();
                let up = x2 < frac;
                // The "optimal" event fixes a specific stride (say 1) and
                // the direction in `links`.
                let want_up = matches!(links[i].direction, RoundDirection::Up);
                if up != want_up || x1 != 1 {
                    ok = false;
                    break;
                }
            }
            if ok {
                hits += 1;
            }
        }
        let empirical = hits as f64 / n as f64;
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "κ analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn integral_seed_probabilities() {
        let delta = 3;
        let keep = kappa(delta, &[LinkRounding { lambda: 4.0, direction: RoundDirection::Keep }]);
        assert!((keep - 0.4).abs() < 1e-12);
        let up = kappa(delta, &[LinkRounding { lambda: 4.0, direction: RoundDirection::Up }]);
        assert!((up - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stride bound")]
    fn zero_delta_rejected() {
        let _ = kappa(0, &[]);
    }
}
