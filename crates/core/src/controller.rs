//! The ARROW controller: the end-to-end pipeline of Fig. 8.
//!
//! **Offline stage** (runs when the IP/optical mapping changes, not per TE
//! epoch): enumerate failure scenarios, solve the RWA relaxation per
//! scenario, and generate LotteryTickets by randomized rounding
//! ([`crate::lottery`]).
//!
//! **Online stage** (every TE epoch, e.g. five minutes): take the current
//! traffic matrix, solve Phase I to pick the winning ticket per scenario,
//! solve Phase II for tunnel allocations, derive router splitting ratios
//! `ω_{f,t}`, and compile each winning ticket into concrete ROADM
//! reconfiguration rules (which wavelengths move onto which surrogate
//! fibers) ready to install so the network reacts in seconds when a cut
//! actually happens (§5).

use crate::lottery::{generate_tickets_with_stats, LotteryConfig, OfflineStats};
use crate::par::parallel_map;
use arrow_optical::rwa::greedy_assign;
use arrow_optical::FiberPath;
use arrow_te::schemes::arrow::{Arrow, ArrowOnline, ArrowOutcome};
use arrow_te::tunnels::{build_instance, TeInstance, TunnelConfig};
use arrow_te::{RestorationTicket, TicketSet};
use arrow_topology::{FailureScenario, TrafficMatrix, Wan};

/// Wavelength-reconfiguration rules for one failure scenario, installable
/// on the ROADMs ahead of time.
#[derive(Debug, Clone)]
pub struct ReconfigRule {
    /// Index of the scenario this rule serves.
    pub scenario: usize,
    /// The lightpath (failed IP link) being restored.
    pub lightpath: arrow_optical::LightpathId,
    /// Surrogate routes: `(fiber path, spectrum slots to occupy)`.
    pub routes: Vec<(FiberPath, Vec<usize>)>,
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// LotteryTicket generation settings (offline stage).
    pub lottery: LotteryConfig,
    /// Tunnel selection settings.
    pub tunnels: TunnelConfig,
    /// Phase-I slack budget α.
    pub alpha: f64,
    /// LP solver settings for the online stage.
    pub solver: arrow_lp::SolverConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            lottery: LotteryConfig::default(),
            tunnels: TunnelConfig::default(),
            alpha: 0.1,
            solver: arrow_lp::SolverConfig::default(),
        }
    }
}

/// The offline-stage product: scenarios plus their LotteryTickets.
#[derive(Debug, Clone)]
pub struct OfflineState {
    /// Failure scenarios under consideration.
    pub scenarios: Vec<FailureScenario>,
    /// LotteryTickets per scenario.
    pub tickets: TicketSet,
    /// Measurements from the ticket-generation run that produced
    /// `tickets` (empty when tickets were injected via
    /// [`ArrowController::with_tickets`]).
    pub stats: OfflineStats,
}

/// Why the online stage could not produce a [`TePlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A scenario has no LotteryTickets, so Phase I has nothing to choose
    /// from. Carries the index of the first offending scenario.
    NoTickets {
        /// Index of the first scenario with an empty ticket list.
        scenario: usize,
    },
    /// The ticket set covers fewer scenarios than the controller tracks.
    ScenarioMismatch {
        /// Scenarios the controller tracks.
        expected: usize,
        /// Scenario entries present in the ticket set.
        actual: usize,
    },
    /// The TE solve finished without a restoration plan (scenarios exist
    /// but the solver returned none — indicates a scheme-level bug).
    MissingRestorationPlan,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoTickets { scenario } => {
                write!(f, "scenario {scenario} has no LotteryTickets; Phase I needs at least one (the naive ticket) per scenario")
            }
            PlanError::ScenarioMismatch { expected, actual } => {
                write!(
                    f,
                    "ticket set covers {actual} scenarios but the controller tracks {expected}"
                )
            }
            PlanError::MissingRestorationPlan => {
                write!(f, "TE solve returned no restoration plan despite non-empty scenarios")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The online-stage product for one TE epoch.
#[derive(Debug, Clone)]
pub struct TePlan {
    /// Full ARROW outcome (allocation, winning tickets, timings).
    pub outcome: ArrowOutcome,
    /// Per-flow splitting ratios `ω_{f,t}` ready for router installation.
    pub splitting_ratios: Vec<Vec<(arrow_te::TunnelId, f64)>>,
    /// ROADM reconfiguration rules per scenario, realizing each winning
    /// ticket in the optical domain.
    pub reconfig_rules: Vec<ReconfigRule>,
    /// The instance the plan was computed against.
    pub instance: TeInstance,
}

/// Cached online-stage state for [`ArrowController::plan_warm`]: the
/// expensive tunnel computation and Phase I skeleton are built on the
/// first call and re-used (with patched demands) on every later one.
#[derive(Debug, Clone)]
struct OnlineCache {
    /// Instance built on the first warm call; later calls only swap
    /// demands via [`TeInstance::with_demands`].
    instance: TeInstance,
    /// Incremental two-phase solver carrying warm starts across epochs.
    online: ArrowOnline,
}

/// Process-global online-stage counters, flushed once per TE epoch.
struct EpochMetrics {
    cold: arrow_obs::Counter,
    warm: arrow_obs::Counter,
    seconds: arrow_obs::Histogram,
}

impl EpochMetrics {
    fn record(&self, warm: bool, seconds: f64) -> arrow_obs::EpochVerdict {
        if warm {
            self.warm.inc();
        } else {
            self.cold.inc();
        }
        self.seconds.observe(seconds);
        // Feed the SLO engine: did this epoch make its deadline budget
        // (ARROW §5's five-minute TE epoch by default)? Misses are
        // counted, quantiles and error-budget burn updated, and a warn
        // event emitted on a miss.
        arrow_obs::slo::record_epoch(seconds)
    }
}

fn epoch_metrics() -> &'static EpochMetrics {
    static METRICS: std::sync::OnceLock<EpochMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        arrow_obs::metrics::describe("epoch.cold", "cold-start TE epochs planned");
        arrow_obs::metrics::describe("epoch.warm", "warm-start TE epochs planned");
        arrow_obs::metrics::describe(
            "epoch.seconds",
            "wall-clock seconds per online TE epoch (plan or plan_warm)",
        );
        EpochMetrics {
            cold: arrow_obs::metrics::counter("epoch.cold"),
            warm: arrow_obs::metrics::counter("epoch.warm"),
            seconds: arrow_obs::metrics::histogram(
                "epoch.seconds",
                &[1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0],
            ),
        }
    })
}

/// How one planned epoch fared against the deadline, as seen by the SLO
/// engine — returned by [`ArrowController::plan_epoch`] so a long-lived
/// caller (the `arrow serve` daemon) can decide whether the plan is safe
/// to install or the previous plan must be reused.
#[derive(Debug, Clone, Copy)]
pub struct EpochReport {
    /// Whether the warm (cached) online path served this epoch.
    pub warm: bool,
    /// Wall-clock seconds the epoch took, including any hook work.
    pub seconds: f64,
    /// The SLO verdict ([`arrow_obs::slo::record_epoch`]) for this epoch.
    pub verdict: arrow_obs::EpochVerdict,
}

/// A pre-solve hook for [`ArrowController::plan_epoch`]: runs *inside*
/// the epoch span and wall-clock window, after offline validation and
/// before the TE solve. The daemon's chaos mode uses it to model extra
/// planning load — anything the hook burns counts against the epoch
/// deadline exactly like solver time.
pub type EpochHook<'a> = &'a dyn Fn();

/// The ARROW controller.
#[derive(Debug, Clone)]
pub struct ArrowController {
    /// The WAN under control.
    pub wan: Wan,
    /// Controller settings.
    pub config: ControllerConfig,
    offline: OfflineState,
    online: Option<OnlineCache>,
}

impl ArrowController {
    /// Runs the offline stage: parallel ticket generation for the given
    /// scenarios (see [`crate::par`]), keeping the per-scenario
    /// [`OfflineStats`] in [`OfflineState::stats`].
    pub fn new(wan: Wan, scenarios: Vec<FailureScenario>, config: ControllerConfig) -> Self {
        let (tickets, stats) = generate_tickets_with_stats(&wan, &scenarios, &config.lottery);
        ArrowController {
            offline: OfflineState { scenarios, tickets, stats },
            wan,
            config,
            online: None,
        }
    }

    /// Builds a controller around an externally produced ticket set,
    /// skipping the offline generation entirely (tests, replaying a
    /// serialized offline state, or exercising degenerate ticket sets).
    pub fn with_tickets(
        wan: Wan,
        scenarios: Vec<FailureScenario>,
        tickets: TicketSet,
        config: ControllerConfig,
    ) -> Self {
        let stats = OfflineStats::default();
        ArrowController {
            offline: OfflineState { scenarios, tickets, stats },
            wan,
            config,
            online: None,
        }
    }

    /// The offline state (scenarios + tickets + generation stats).
    pub fn offline(&self) -> &OfflineState {
        &self.offline
    }

    /// Runs one online TE epoch for the current traffic matrix.
    ///
    /// Fails with [`PlanError`] when the offline state cannot support a
    /// solve — a ticketless scenario or a scenario/ticket-set mismatch —
    /// rather than panicking inside the TE scheme.
    pub fn plan(&self, tm: &TrafficMatrix) -> Result<TePlan, PlanError> {
        let _span = arrow_obs::span!("epoch", "mode" => "cold");
        // arrow-lint: allow(wall-clock-in-core) — measures epoch wall time for the metrics registry only; no solver decision reads it
        let t0 = std::time::Instant::now();
        self.validate_offline()?;
        let instance = build_instance(&self.wan, tm, &self.offline.scenarios, &self.config.tunnels);
        let outcome = self.arrow_scheme().solve_detailed(&instance);
        let plan = self.finish_plan(outcome, instance);
        epoch_metrics().record(false, t0.elapsed().as_secs_f64());
        plan
    }

    /// [`ArrowController::plan`] with cross-epoch caching: the first call
    /// builds tunnels and the Phase I skeleton; every later call re-uses
    /// them, patching demands in place and warm-starting both LP phases
    /// from the previous interval's optimum. Intended for diurnal sweeps
    /// where consecutive traffic matrices are close and the five-minute
    /// deadline (§5) is tight.
    ///
    /// The plan produced is equivalent to [`ArrowController::plan`] for
    /// the same traffic matrix (identical winning tickets; Phase II
    /// objective equal up to solver tolerance).
    pub fn plan_warm(&mut self, tm: &TrafficMatrix) -> Result<TePlan, PlanError> {
        self.plan_epoch(tm, None).map(|(plan, _)| plan)
    }

    /// The daemon-facing epoch entry point: [`ArrowController::plan_warm`]
    /// plus the measured [`EpochReport`] (wall seconds and the SLO
    /// verdict), and an optional pre-solve [`EpochHook`] that runs inside
    /// the epoch's span and deadline window.
    ///
    /// The verdict is computed from the same wall clock the `epoch` span
    /// and `epoch.seconds` histogram see, so a deadline miss reported here
    /// is exactly the miss the flight recorder captures.
    pub fn plan_epoch(
        &mut self,
        tm: &TrafficMatrix,
        hook: Option<EpochHook<'_>>,
    ) -> Result<(TePlan, EpochReport), PlanError> {
        let _span = arrow_obs::span!("epoch", "mode" => "warm");
        // arrow-lint: allow(wall-clock-in-core) — measures epoch wall time for the metrics registry only; no solver decision reads it
        let t0 = std::time::Instant::now();
        self.validate_offline()?;
        if let Some(hook) = hook {
            hook();
        }
        let warm_cache = match self.online.take() {
            Some(cache) => cache,
            None => {
                let instance =
                    build_instance(&self.wan, tm, &self.offline.scenarios, &self.config.tunnels);
                let online = ArrowOnline::new(self.arrow_scheme(), &instance);
                OnlineCache { instance, online }
            }
        };
        let cache = self.online.insert(warm_cache);
        let instance = cache.instance.with_demands(tm);
        let outcome = cache.online.solve(&instance);
        let plan = self.finish_plan(outcome, instance);
        let seconds = t0.elapsed().as_secs_f64();
        let verdict = epoch_metrics().record(true, seconds);
        plan.map(|p| (p, EpochReport { warm: true, seconds, verdict }))
    }

    /// Drops the cached online state (tunnels, LP skeleton, warm starts).
    /// Call after mutating `wan`, `config`, or the offline state in place;
    /// the next [`ArrowController::plan_warm`] rebuilds from scratch.
    pub fn reset_online_cache(&mut self) {
        self.online = None;
    }

    fn validate_offline(&self) -> Result<(), PlanError> {
        let expected = self.offline.scenarios.len();
        let actual = self.offline.tickets.per_scenario.len();
        if actual != expected {
            return Err(PlanError::ScenarioMismatch { expected, actual });
        }
        if let Some(scenario) = self.offline.tickets.per_scenario.iter().position(|t| t.is_empty())
        {
            return Err(PlanError::NoTickets { scenario });
        }
        Ok(())
    }

    fn arrow_scheme(&self) -> Arrow {
        Arrow {
            tickets: self.offline.tickets.clone(),
            alpha: self.config.alpha,
            solver: self.config.solver.clone(),
        }
    }

    fn finish_plan(
        &self,
        outcome: ArrowOutcome,
        instance: TeInstance,
    ) -> Result<TePlan, PlanError> {
        let splitting_ratios = (0..instance.flows.len())
            .map(|f| outcome.output.alloc.splitting_ratios(&instance, arrow_te::FlowId(f)))
            .collect();
        let restoration = match outcome.output.restoration.as_deref() {
            Some(plan) => plan,
            None if self.offline.scenarios.is_empty() => &[],
            None => return Err(PlanError::MissingRestorationPlan),
        };
        let reconfig_rules = self.compile_rules(restoration);
        Ok(TePlan { outcome, splitting_ratios, reconfig_rules, instance })
    }

    /// Compiles winning tickets into per-scenario ROADM rules by running
    /// the exact greedy wavelength assigner against each ticket's targets.
    ///
    /// Scenarios are independent, so the assignment fans out over the
    /// [`crate::par`] pool; rule order matches the serial loop (scenario
    /// order, then assigner order within a scenario).
    fn compile_rules(&self, plan: &[RestorationTicket]) -> Vec<ReconfigRule> {
        let work: Vec<(usize, &FailureScenario, &RestorationTicket)> = self
            .offline
            .scenarios
            .iter()
            .zip(plan)
            .enumerate()
            .map(|(qi, (scen, ticket))| (qi, scen, ticket))
            .collect();
        let per_scenario = parallel_map(work, |&(qi, scen, ticket)| {
            let targets: Vec<_> = ticket
                .restored
                .iter()
                .filter_map(|&(link, gbps)| {
                    let lp_id = self.wan.link(link).lightpath;
                    let per = self.wan.optical.lightpath(lp_id).gbps_per_wavelength;
                    let waves = (gbps / per).round() as usize;
                    (waves > 0).then_some((lp_id, waves))
                })
                .collect();
            if targets.is_empty() {
                return Vec::new();
            }
            let assigns = greedy_assign(
                &self.wan.optical,
                &scen.cut_fibers,
                &self.config.lottery.rwa,
                Some(&targets),
            );
            assigns
                .into_iter()
                .filter(|a| !a.routes.is_empty())
                .map(|a| ReconfigRule { scenario: qi, lightpath: a.lightpath, routes: a.routes })
                .collect()
        });
        per_scenario.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn controller() -> (ArrowController, TrafficMatrix) {
        let wan = b4(17);
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 5, ..Default::default() });
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let cfg = ControllerConfig {
            lottery: LotteryConfig { num_tickets: 8, ..Default::default() },
            tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
            ..Default::default()
        };
        (ArrowController::new(wan, failures.failure_scenarios().to_vec(), cfg), tms[0].clone())
    }

    #[test]
    fn end_to_end_plan_is_consistent() {
        let (ctl, tm) = controller();
        let plan = ctl.plan(&tm.scaled(2.0)).expect("valid offline state plans cleanly");
        // Winning tickets exist for every scenario.
        assert_eq!(plan.outcome.winning.len(), ctl.offline().scenarios.len());
        // Splitting ratios normalize per flow.
        for ratios in &plan.splitting_ratios {
            let sum: f64 = ratios.iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Reconfig rules only restore lightpaths actually failed in their
        // scenario, onto surrogate paths avoiding the cut fibers.
        for rule in &plan.reconfig_rules {
            let scen = &ctl.offline().scenarios[rule.scenario];
            let affected = ctl.wan.optical.affected_lightpaths(&scen.cut_fibers);
            assert!(affected.contains(&rule.lightpath));
            for (path, slots) in &rule.routes {
                assert!(!slots.is_empty());
                for f in &path.fibers {
                    assert!(!scen.cut_fibers.contains(f), "route uses a cut fiber");
                }
            }
        }
    }

    #[test]
    fn offline_state_reused_across_epochs() {
        let (ctl, tm) = controller();
        let p1 = ctl.plan(&tm).unwrap();
        let p2 = ctl.plan(&tm.scaled(1.5)).unwrap();
        // Same scenarios and tickets; different demands may change winners.
        assert_eq!(p1.outcome.winning.len(), p2.outcome.winning.len());
        assert!(p1.outcome.output.alloc.total_admitted() > 0.0);
        assert!(p2.outcome.output.alloc.total_admitted() > 0.0);
    }

    #[test]
    fn warm_plan_matches_cold_plan_across_epochs() {
        let (mut ctl, tm) = controller();
        for scale in [1.0, 1.4, 0.7] {
            let shifted = tm.scaled(scale);
            let cold = ctl.plan(&shifted).expect("cold plan");
            let warm = ctl.plan_warm(&shifted).expect("warm plan");
            assert_eq!(warm.outcome.winning, cold.outcome.winning, "scale {scale}");
            let (tw, tc) = (
                warm.outcome.output.alloc.total_admitted(),
                cold.outcome.output.alloc.total_admitted(),
            );
            assert!(
                (tw - tc).abs() <= 1e-6 * (1.0 + tc.abs()),
                "scale {scale}: warm {tw} vs cold {tc}"
            );
            assert_eq!(warm.reconfig_rules.len(), cold.reconfig_rules.len());
        }
        // Later epochs reuse the cached skeleton and start warm.
        let again = ctl.plan_warm(&tm.scaled(1.2)).unwrap();
        assert_ne!(
            again.outcome.phase1_stats.warm,
            arrow_lp::WarmEvent::Cold,
            "cached online state should warm-start Phase I"
        );
        ctl.reset_online_cache();
        let reset = ctl.plan_warm(&tm).unwrap();
        assert_eq!(reset.outcome.phase1_stats.warm, arrow_lp::WarmEvent::Cold);
    }

    #[test]
    fn rules_respect_wavelength_counts() {
        let (ctl, tm) = controller();
        let plan = ctl.plan(&tm.scaled(3.0)).unwrap();
        for rule in &plan.reconfig_rules {
            let assigned: usize = rule.routes.iter().map(|(_, s)| s.len()).sum();
            let lost = ctl.wan.optical.lightpath(rule.lightpath).wavelength_count();
            assert!(assigned <= lost, "restored more wavelengths than lost");
        }
    }

    #[test]
    fn offline_stats_cover_every_scenario() {
        let (ctl, _) = controller();
        let stats = &ctl.offline().stats;
        assert_eq!(stats.per_scenario.len(), ctl.offline().scenarios.len());
        assert_eq!(stats.total_kept(), ctl.offline().tickets.total_tickets());
        assert!(stats.threads >= 1);
        assert!(stats.wall_seconds >= 0.0 && stats.work_seconds >= 0.0);
    }

    #[test]
    fn ticketless_scenario_is_a_typed_error() {
        let (ctl, tm) = controller();
        // Rebuild the controller with one scenario's tickets emptied out:
        // Phase I would have nothing to choose from there.
        let mut tickets = ctl.offline().tickets.clone();
        tickets.per_scenario[2].clear();
        let hollow = ArrowController::with_tickets(
            ctl.wan.clone(),
            ctl.offline().scenarios.clone(),
            tickets,
            ctl.config.clone(),
        );
        assert!(matches!(hollow.plan(&tm), Err(PlanError::NoTickets { scenario: 2 })));

        // And with a ticket set that covers too few scenarios.
        let mut truncated = ctl.offline().tickets.clone();
        truncated.per_scenario.pop();
        let short = ArrowController::with_tickets(
            ctl.wan.clone(),
            ctl.offline().scenarios.clone(),
            truncated,
            ctl.config.clone(),
        );
        assert!(matches!(
            short.plan(&tm),
            Err(PlanError::ScenarioMismatch { expected: 5, actual: 4 })
        ));
    }
}
