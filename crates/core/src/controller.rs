//! The ARROW controller: the end-to-end pipeline of Fig. 8.
//!
//! **Offline stage** (runs when the IP/optical mapping changes, not per TE
//! epoch): enumerate failure scenarios, solve the RWA relaxation per
//! scenario, and generate LotteryTickets by randomized rounding
//! ([`crate::lottery`]).
//!
//! **Online stage** (every TE epoch, e.g. five minutes): take the current
//! traffic matrix, solve Phase I to pick the winning ticket per scenario,
//! solve Phase II for tunnel allocations, derive router splitting ratios
//! `ω_{f,t}`, and compile each winning ticket into concrete ROADM
//! reconfiguration rules (which wavelengths move onto which surrogate
//! fibers) ready to install so the network reacts in seconds when a cut
//! actually happens (§5).

use crate::lottery::{generate_tickets, LotteryConfig};
use arrow_optical::rwa::greedy_assign;
use arrow_optical::FiberPath;
use arrow_te::schemes::arrow::{Arrow, ArrowOutcome};
use arrow_te::tunnels::{build_instance, TeInstance, TunnelConfig};
use arrow_te::{RestorationTicket, TicketSet};
use arrow_topology::{FailureScenario, TrafficMatrix, Wan};

/// Wavelength-reconfiguration rules for one failure scenario, installable
/// on the ROADMs ahead of time.
#[derive(Debug, Clone)]
pub struct ReconfigRule {
    /// Index of the scenario this rule serves.
    pub scenario: usize,
    /// The lightpath (failed IP link) being restored.
    pub lightpath: arrow_optical::LightpathId,
    /// Surrogate routes: `(fiber path, spectrum slots to occupy)`.
    pub routes: Vec<(FiberPath, Vec<usize>)>,
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// LotteryTicket generation settings (offline stage).
    pub lottery: LotteryConfig,
    /// Tunnel selection settings.
    pub tunnels: TunnelConfig,
    /// Phase-I slack budget α.
    pub alpha: f64,
    /// LP solver settings for the online stage.
    pub solver: arrow_lp::SolverConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            lottery: LotteryConfig::default(),
            tunnels: TunnelConfig::default(),
            alpha: 0.1,
            solver: arrow_lp::SolverConfig::default(),
        }
    }
}

/// The offline-stage product: scenarios plus their LotteryTickets.
#[derive(Debug, Clone)]
pub struct OfflineState {
    /// Failure scenarios under consideration.
    pub scenarios: Vec<FailureScenario>,
    /// LotteryTickets per scenario.
    pub tickets: TicketSet,
}

/// The online-stage product for one TE epoch.
#[derive(Debug, Clone)]
pub struct TePlan {
    /// Full ARROW outcome (allocation, winning tickets, timings).
    pub outcome: ArrowOutcome,
    /// Per-flow splitting ratios `ω_{f,t}` ready for router installation.
    pub splitting_ratios: Vec<Vec<(arrow_te::TunnelId, f64)>>,
    /// ROADM reconfiguration rules per scenario, realizing each winning
    /// ticket in the optical domain.
    pub reconfig_rules: Vec<ReconfigRule>,
    /// The instance the plan was computed against.
    pub instance: TeInstance,
}

/// The ARROW controller.
#[derive(Debug, Clone)]
pub struct ArrowController {
    /// The WAN under control.
    pub wan: Wan,
    /// Controller settings.
    pub config: ControllerConfig,
    offline: OfflineState,
}

impl ArrowController {
    /// Runs the offline stage: ticket generation for the given scenarios.
    pub fn new(wan: Wan, scenarios: Vec<FailureScenario>, config: ControllerConfig) -> Self {
        let tickets = generate_tickets(&wan, &scenarios, &config.lottery);
        ArrowController { offline: OfflineState { scenarios, tickets }, wan, config }
    }

    /// The offline state (scenarios + tickets).
    pub fn offline(&self) -> &OfflineState {
        &self.offline
    }

    /// Runs one online TE epoch for the current traffic matrix.
    pub fn plan(&self, tm: &TrafficMatrix) -> TePlan {
        let instance =
            build_instance(&self.wan, tm, &self.offline.scenarios, &self.config.tunnels);
        let arrow = Arrow {
            tickets: self.offline.tickets.clone(),
            alpha: self.config.alpha,
            solver: self.config.solver.clone(),
        };
        let outcome = arrow.solve_detailed(&instance);
        let splitting_ratios = (0..instance.flows.len())
            .map(|f| outcome.output.alloc.splitting_ratios(&instance, arrow_te::FlowId(f)))
            .collect();
        let reconfig_rules = self.compile_rules(
            outcome
                .output
                .restoration
                .as_ref()
                .expect("ARROW always returns a restoration plan"),
        );
        TePlan { outcome, splitting_ratios, reconfig_rules, instance }
    }

    /// Compiles winning tickets into per-scenario ROADM rules by running
    /// the exact greedy wavelength assigner against each ticket's targets.
    fn compile_rules(&self, plan: &[RestorationTicket]) -> Vec<ReconfigRule> {
        let mut rules = Vec::new();
        for (qi, (scen, ticket)) in self.offline.scenarios.iter().zip(plan).enumerate() {
            let targets: Vec<_> = ticket
                .restored
                .iter()
                .filter_map(|&(link, gbps)| {
                    let lp_id = self.wan.link(link).lightpath;
                    let per = self.wan.optical.lightpath(lp_id).gbps_per_wavelength;
                    let waves = (gbps / per).round() as usize;
                    (waves > 0).then_some((lp_id, waves))
                })
                .collect();
            if targets.is_empty() {
                continue;
            }
            let assigns = greedy_assign(
                &self.wan.optical,
                &scen.cut_fibers,
                &self.config.lottery.rwa,
                Some(&targets),
            );
            for a in assigns {
                if a.routes.is_empty() {
                    continue;
                }
                rules.push(ReconfigRule {
                    scenario: qi,
                    lightpath: a.lightpath,
                    routes: a.routes,
                });
            }
        }
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn controller() -> (ArrowController, TrafficMatrix) {
        let wan = b4(17);
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 5, ..Default::default() });
        let tms =
            gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let cfg = ControllerConfig {
            lottery: LotteryConfig { num_tickets: 8, ..Default::default() },
            tunnels: TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
            ..Default::default()
        };
        (
            ArrowController::new(wan, failures.failure_scenarios().to_vec(), cfg),
            tms[0].clone(),
        )
    }

    #[test]
    fn end_to_end_plan_is_consistent() {
        let (ctl, tm) = controller();
        let plan = ctl.plan(&tm.scaled(2.0));
        // Winning tickets exist for every scenario.
        assert_eq!(plan.outcome.winning.len(), ctl.offline().scenarios.len());
        // Splitting ratios normalize per flow.
        for ratios in &plan.splitting_ratios {
            let sum: f64 = ratios.iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Reconfig rules only restore lightpaths actually failed in their
        // scenario, onto surrogate paths avoiding the cut fibers.
        for rule in &plan.reconfig_rules {
            let scen = &ctl.offline().scenarios[rule.scenario];
            let affected = ctl.wan.optical.affected_lightpaths(&scen.cut_fibers);
            assert!(affected.contains(&rule.lightpath));
            for (path, slots) in &rule.routes {
                assert!(!slots.is_empty());
                for f in &path.fibers {
                    assert!(!scen.cut_fibers.contains(f), "route uses a cut fiber");
                }
            }
        }
    }

    #[test]
    fn offline_state_reused_across_epochs() {
        let (ctl, tm) = controller();
        let p1 = ctl.plan(&tm);
        let p2 = ctl.plan(&tm.scaled(1.5));
        // Same scenarios and tickets; different demands may change winners.
        assert_eq!(p1.outcome.winning.len(), p2.outcome.winning.len());
        assert!(p1.outcome.output.alloc.total_admitted() > 0.0);
        assert!(p2.outcome.output.alloc.total_admitted() > 0.0);
    }

    #[test]
    fn rules_respect_wavelength_counts() {
        let (ctl, tm) = controller();
        let plan = ctl.plan(&tm.scaled(3.0));
        for rule in &plan.reconfig_rules {
            let assigned: usize = rule.routes.iter().map(|(_, s)| s.len()).sum();
            let lost = ctl.wan.optical.lightpath(rule.lightpath).wavelength_count();
            assert!(assigned <= lost, "restored more wavelengths than lost");
        }
    }
}
