//! Algorithm 1: LotteryTicket generation by randomized rounding.
//!
//! For each fiber-cut scenario the relaxed RWA (Appendix A.2) yields a
//! *fractional* number of restorable wavelengths `λ_e` per failed IP link.
//! Each LotteryTicket is built by rounding those fractions randomly:
//!
//! 1. pick a rounding stride `x₁ ∈ {1, …, δ}` uniformly (line 6);
//! 2. round **up** to `min(⌈λ⌉ + x₁, γ_e)` with probability equal to the
//!    fractional part, else **down** to `max(⌊λ⌋ − x₁, 0)` (lines 7–11);
//! 3. convert wavelengths to Gbps via the link's modulation (line 12).
//!
//! Integer `λ_e` would leave zero probability of exploring neighbours, so
//! per Appendix A.2 the probabilities become 0.3 round-up / 0.3 round-down
//! / 0.4 keep.
//!
//! Randomly rounded tickets may over-ask the optical layer, so a
//! feasibility filter (greedy exact assignment, §3.2 "Handling
//! LotteryTickets' feasibility") drops unrealizable tickets. Every
//! scenario additionally receives the *naive* ticket — the greedy exact
//! realization of the RWA optimum — so at least one feasible candidate
//! always exists (this is also exactly ARROW-Naive's plan).

use arrow_optical::rwa::{
    greedy_assign, is_feasible, solve_relaxed, solve_relaxed_batch, RwaConfig, RwaSolution,
};
use arrow_te::restoration::{RestorationTicket, TicketSet};
use arrow_topology::{FailureScenario, ScenarioUniverse, Wan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for Algorithm 1.
#[derive(Debug, Clone)]
pub struct LotteryConfig {
    /// Number of LotteryTickets |Z| per scenario (before filtering; §6 uses
    /// 80/90/120 for B4/IBM/Facebook).
    pub num_tickets: usize,
    /// Maximum rounding stride δ.
    pub delta: usize,
    /// Drop tickets that the optical layer cannot realize.
    pub feasibility_filter: bool,
    /// Deduplicate identical tickets (pure LP-size optimization; the
    /// duplicate would add identical constraints).
    pub dedupe: bool,
    /// Always include the greedy RWA-optimal ("naive") candidate in every
    /// scenario's set. Algorithm 1 as printed generates only rounded
    /// tickets — that is what produces Fig. 14's fluctuation at small |Z|
    /// — so this defaults to `false`; the naive candidate is still used as
    /// a fallback when the feasibility filter rejects every rounded
    /// ticket (the paper leaves that corner case unspecified).
    pub include_naive: bool,
    /// Scenario LPs per batched solve in the sharded offline path
    /// ([`generate_tickets_shard`]): chunks of this many scenarios submit
    /// their relaxed RWA LPs as one [`arrow_lp::solve_batch`] call, so
    /// structurally identical LPs share a multi-RHS panel. `<= 1` keeps
    /// the legacy one-LP-per-scenario path. Ticket bytes are identical
    /// either way (the batch layer's bitwise contract —
    /// `crates/core/tests/batch_lp.rs` pins it); only throughput changes.
    pub batch_lanes: usize,
    /// RWA settings (surrogate paths, retuning, modulation).
    pub rwa: RwaConfig,
    /// Master RNG seed for ticket generation.
    ///
    /// Each scenario derives its own independent stream as
    /// `StdRng::seed_from_u64(derive_seed(seed, scenario_index))` (see
    /// [`derive_seed`]), so the ticket set for a scenario depends only on
    /// `(seed, scenario_index, scenario, config)` — never on how many
    /// threads the offline stage ran on, the order scenarios were
    /// scheduled in, or how many tickets *other* scenarios drew. Equal
    /// seeds give byte-identical [`TicketSet`]s on 1 thread and N.
    pub seed: u64,
}

impl Default for LotteryConfig {
    fn default() -> Self {
        LotteryConfig {
            num_tickets: 20,
            delta: 2,
            feasibility_filter: true,
            dedupe: true,
            include_naive: false,
            batch_lanes: 16,
            // Per Appendix A.1 the RWA keeps the current modulation when
            // the surrogate path's length permits and otherwise steps down
            // to the best alternative — without this, high-rate links
            // whose reach is short would be unrestorable.
            rwa: RwaConfig { allow_modulation_change: true, ..RwaConfig::default() },
            seed: 41,
        }
    }
}

/// Per-link fractional seed from the RWA used by the rounding loop.
#[derive(Debug, Clone)]
pub struct FractionalRestoration {
    /// The failed IP link.
    pub link: arrow_topology::IpLinkId,
    /// Fractional restorable wavelengths `λ_e`.
    pub wavelengths: f64,
    /// Wavelengths lost (`γ_e`, the rounding cap).
    pub lost_wavelengths: usize,
    /// Effective Gbps per restored wavelength (modulation).
    pub gbps_per_wavelength: f64,
}

/// Maps an [`RwaSolution`]'s lightpath restorations onto IP links. Links
/// whose lightpath has no surrogate path get `λ_e = 0`.
fn restorations_from(wan: &Wan, sol: &RwaSolution) -> Vec<FractionalRestoration> {
    sol.links
        .iter()
        .filter_map(|l| {
            let link = wan.link_of_lightpath(l.lightpath)?;
            Some(FractionalRestoration {
                link,
                wavelengths: l.wavelengths,
                lost_wavelengths: l.lost_wavelengths,
                gbps_per_wavelength: l.gbps_per_wavelength,
            })
        })
        .collect()
}

/// Solves the RWA relaxation for one scenario and maps the result onto IP
/// links.
pub fn fractional_seed(
    wan: &Wan,
    scenario: &FailureScenario,
    rwa: &RwaConfig,
) -> Vec<FractionalRestoration> {
    let sol = solve_relaxed(&wan.optical, &scenario.cut_fibers, rwa);
    restorations_from(wan, &sol)
}

/// Relaxed-RWA seeds for a chunk of scenarios via one batched LP solve
/// ([`solve_relaxed_batch`]). Returns each scenario's seed paired with its
/// amortized share of the chunk's RWA seconds. Seeds are bitwise identical
/// to per-scenario [`fractional_seed`] calls.
fn fractional_seed_batch(
    wan: &Wan,
    scens: &[&FailureScenario],
    rwa: &RwaConfig,
) -> Vec<(Vec<FractionalRestoration>, f64)> {
    // arrow-lint: allow(wall-clock-in-core) — RWA timing feeds ScenarioStats reporting; ticket contents never depend on it
    let t0 = std::time::Instant::now();
    let cuts: Vec<_> = scens.iter().map(|s| s.cut_fibers.as_slice()).collect();
    let sols = solve_relaxed_batch(&wan.optical, &cuts, rwa);
    let share = t0.elapsed().as_secs_f64() / scens.len().max(1) as f64;
    sols.iter().map(|sol| (restorations_from(wan, sol), share)).collect()
}

/// The greedy exact realization of the RWA optimum — ARROW-Naive's single
/// restoration candidate for the scenario.
pub fn naive_ticket(wan: &Wan, scenario: &FailureScenario, rwa: &RwaConfig) -> RestorationTicket {
    let assigns = greedy_assign(&wan.optical, &scenario.cut_fibers, rwa, None);
    RestorationTicket {
        restored: assigns
            .iter()
            .filter_map(|a| {
                let link = wan.link_of_lightpath(a.lightpath)?;
                Some((link, a.restored_gbps()))
            })
            .collect(),
    }
}

/// The optically-realized version of a ticket: run the exact greedy
/// assigner against the ticket's per-link wavelength targets and report
/// what the hardware can actually deliver.
///
/// Feasible tickets realize exactly; tickets that over-promise (e.g. when
/// the feasibility filter was disabled) realize to less. Playback grounded
/// in realized tickets never credits capacity the ROADMs cannot switch.
pub fn realize_ticket(
    wan: &Wan,
    scenario: &FailureScenario,
    ticket: &RestorationTicket,
    rwa: &RwaConfig,
) -> RestorationTicket {
    // Greedy-assign as many wavelengths as the optical layer permits, then
    // cap each link at the ticket's promise. Conservative: under heavy
    // spectrum contention a realizable-but-unbalanced promise may realize
    // below its paper value, never above it.
    let assigns = greedy_assign(&wan.optical, &scenario.cut_fibers, rwa, None);
    RestorationTicket {
        restored: ticket
            .restored
            .iter()
            .map(|&(link, promised)| {
                let lp_id = wan.link(link).lightpath;
                let got = assigns
                    .iter()
                    .find(|a| a.lightpath == lp_id)
                    .map(|a| a.restored_gbps())
                    .unwrap_or(0.0);
                (link, got.min(promised))
            })
            .collect(),
    }
}

/// Rounds one fractional seed into integer wavelength counts (lines 4–11).
///
/// Every count is in `[0, lost_wavelengths]` for its link (γ_e caps the
/// round-up, zero floors the round-down) — `tests/proptest_core.rs` pins
/// this for arbitrary fractional seeds.
pub fn round_once(rng: &mut StdRng, seed: &[FractionalRestoration], delta: usize) -> Vec<usize> {
    seed.iter()
        .map(|f| {
            let lambda = f.wavelengths;
            let floor = lambda.floor();
            let frac = lambda - floor;
            let x1 = rng.gen_range(1..=delta.max(1)) as f64;
            let x2: f64 = rng.gen_range(0.0..1.0);
            let rounded = if frac > 1e-9 {
                if x2 < frac {
                    (lambda.ceil() + x1).min(f.lost_wavelengths as f64)
                } else {
                    (floor - x1).max(0.0)
                }
            } else {
                // Non-fractional λ: 0.3 up / 0.3 down / 0.4 keep (App. A.2).
                if x2 < 0.3 {
                    (lambda + x1).min(f.lost_wavelengths as f64)
                } else if x2 < 0.6 {
                    (lambda - x1).max(0.0)
                } else {
                    lambda
                }
            };
            rounded as usize
        })
        .collect()
}

/// Derives the RNG seed for one scenario's ticket stream from the master
/// seed — two rounds of splitmix64 over `(seed, index)`.
///
/// This is the offline stage's determinism contract: every scenario owns
/// an independent `StdRng` derived only from `(cfg.seed, scenario_index)`,
/// so scenarios can be generated in any order, on any number of threads,
/// and still produce byte-identical tickets. The mixing is splitmix64
/// (Steele et al.), whose avalanche keeps adjacent indices' streams
/// uncorrelated even though indices differ by one bit.
pub fn derive_seed(seed: u64, scenario_index: u64) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix(seed ^ splitmix(scenario_index))
}

/// Per-scenario offline-stage measurements (one entry of
/// [`OfflineStats`]).
#[derive(Debug, Clone)]
pub struct ScenarioStats {
    /// Index of the scenario in the input slice.
    pub scenario: usize,
    /// Seconds spent in the relaxed-RWA solve seeding the rounding.
    pub rwa_seconds: f64,
    /// Total seconds of work for this scenario (RWA + rounding + filter).
    pub seconds: f64,
    /// Rounding draws attempted (Algorithm 1's |Z| budget).
    pub rounds: usize,
    /// Draws dropped by the optical feasibility filter.
    pub infeasible: usize,
    /// Feasible draws dropped as duplicates of an earlier ticket.
    pub duplicates: usize,
    /// Tickets kept for this scenario.
    pub kept: usize,
    /// Whether the always-realizable naive candidate was added as a
    /// fallback because every rounded draw was filtered.
    pub naive_fallback: bool,
}

/// Offline-stage report: what Algorithm 1 did per scenario, and how the
/// wall clock compared to the serial work sum.
#[derive(Debug, Clone, Default)]
pub struct OfflineStats {
    /// Per-scenario measurements, parallel to the scenario slice.
    pub per_scenario: Vec<ScenarioStats>,
    /// End-to-end wall-clock seconds for the offline stage.
    pub wall_seconds: f64,
    /// Sum of per-scenario work seconds (the serial-equivalent cost).
    pub work_seconds: f64,
    /// Worker threads the stage ran on.
    pub threads: usize,
}

impl OfflineStats {
    /// Total tickets kept across scenarios.
    pub fn total_kept(&self) -> usize {
        self.per_scenario.iter().map(|s| s.kept).sum()
    }

    /// Total draws dropped by the feasibility filter.
    pub fn total_infeasible(&self) -> usize {
        self.per_scenario.iter().map(|s| s.infeasible).sum()
    }

    /// Total feasible draws dropped as duplicates.
    pub fn total_duplicates(&self) -> usize {
        self.per_scenario.iter().map(|s| s.duplicates).sum()
    }

    /// Parallel speedup actually realized: work seconds / wall seconds.
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.work_seconds / self.wall_seconds
        } else {
            1.0
        }
    }

    /// One-line human summary (printed by the controller example and the
    /// offline-sweep binary).
    pub fn summary(&self) -> String {
        format!(
            "{} scenarios -> {} tickets ({} infeasible, {} duplicate) on {} thread(s): \
             {:.2}s wall, {:.2}s work, {:.2}x speedup",
            self.per_scenario.len(),
            self.total_kept(),
            self.total_infeasible(),
            self.total_duplicates(),
            self.threads,
            self.wall_seconds,
            self.work_seconds,
            self.speedup()
        )
    }
}

/// Algorithm 1 for a single scenario, on its own derived RNG stream.
///
/// This is the unit of work both the serial reference and the parallel
/// pool execute; it depends only on `(wan, scen, index, cfg)`.
fn scenario_tickets(
    wan: &Wan,
    scen: &FailureScenario,
    index: usize,
    cfg: &LotteryConfig,
) -> (Vec<RestorationTicket>, ScenarioStats) {
    // arrow-lint: allow(wall-clock-in-core) — RWA timing feeds ScenarioStats reporting; ticket contents never depend on it
    let t_rwa = std::time::Instant::now();
    let seed = fractional_seed(wan, scen, &cfg.rwa);
    let rwa_seconds = t_rwa.elapsed().as_secs_f64();
    round_and_filter(wan, scen, index, cfg, &seed, rwa_seconds)
}

/// The rounding/filtering half of Algorithm 1 for one scenario, given its
/// fractional seed and the seconds spent producing it.
///
/// Owns the scenario's derived RNG stream (the rounding draws are the only
/// consumer), so tickets depend solely on `(wan, scen, index, cfg, seed)` —
/// identical whether the seed came from a sequential or a batched RWA
/// solve.
fn round_and_filter(
    wan: &Wan,
    scen: &FailureScenario,
    index: usize,
    cfg: &LotteryConfig,
    seed: &[FractionalRestoration],
    rwa_seconds: f64,
) -> (Vec<RestorationTicket>, ScenarioStats) {
    let _span = arrow_obs::span!(
        "offline.scenario",
        "scenario" => index,
        "cut_fibers" => scen.cut_fibers.len(),
    );
    // arrow-lint: allow(wall-clock-in-core) — rounding timing feeds ScenarioStats reporting; ticket contents never depend on it
    let t_round = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, index as u64));
    let mut stats = ScenarioStats {
        scenario: index,
        rwa_seconds,
        seconds: 0.0,
        rounds: 0,
        infeasible: 0,
        duplicates: 0,
        kept: 0,
        naive_fallback: false,
    };
    let mut tickets: Vec<RestorationTicket> = Vec::new();
    if cfg.include_naive {
        tickets.push(naive_ticket(wan, scen, &cfg.rwa));
    }
    for _ in tickets.len()..cfg.num_tickets {
        stats.rounds += 1;
        let counts = round_once(&mut rng, seed, cfg.delta);
        if cfg.feasibility_filter {
            let targets: Vec<_> =
                seed.iter().zip(&counts).map(|(f, &c)| (wan.link(f.link).lightpath, c)).collect();
            if !is_feasible(&wan.optical, &scen.cut_fibers, &cfg.rwa, &targets) {
                stats.infeasible += 1;
                continue;
            }
        }
        let ticket = RestorationTicket {
            restored: seed
                .iter()
                .zip(&counts)
                .map(|(f, &c)| (f.link, c as f64 * f.gbps_per_wavelength))
                .collect(),
        };
        if !cfg.dedupe || !tickets.contains(&ticket) {
            tickets.push(ticket);
        } else {
            stats.duplicates += 1;
        }
    }
    if tickets.is_empty() {
        // Every rounded candidate was infeasible: fall back to the
        // always-realizable greedy candidate so the TE has one.
        tickets.push(naive_ticket(wan, scen, &cfg.rwa));
        stats.naive_fallback = true;
    }
    stats.kept = tickets.len();
    stats.seconds = rwa_seconds + t_round.elapsed().as_secs_f64();
    offline_metrics().record_scenario(&stats);
    (tickets, stats)
}

/// Process-global offline-stage counters, flushed once per scenario.
struct OfflineMetrics {
    scenarios: arrow_obs::Counter,
    rounds: arrow_obs::Counter,
    kept: arrow_obs::Counter,
    infeasible: arrow_obs::Counter,
    duplicates: arrow_obs::Counter,
    naive_fallbacks: arrow_obs::Counter,
    scenario_seconds: arrow_obs::Histogram,
    wall_seconds: arrow_obs::Gauge,
}

impl OfflineMetrics {
    fn record_scenario(&self, s: &ScenarioStats) {
        self.scenarios.inc();
        self.rounds.add(s.rounds as u64);
        self.kept.add(s.kept as u64);
        self.infeasible.add(s.infeasible as u64);
        self.duplicates.add(s.duplicates as u64);
        if s.naive_fallback {
            self.naive_fallbacks.inc();
        }
        self.scenario_seconds.observe(s.seconds);
    }
}

fn offline_metrics() -> &'static OfflineMetrics {
    static METRICS: std::sync::OnceLock<OfflineMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| OfflineMetrics {
        scenarios: arrow_obs::metrics::counter("offline.scenarios"),
        rounds: arrow_obs::metrics::counter("offline.rounds"),
        kept: arrow_obs::metrics::counter("offline.tickets.kept"),
        infeasible: arrow_obs::metrics::counter("offline.tickets.infeasible"),
        duplicates: arrow_obs::metrics::counter("offline.tickets.duplicates"),
        naive_fallbacks: arrow_obs::metrics::counter("offline.naive_fallbacks"),
        scenario_seconds: arrow_obs::metrics::histogram(
            "offline.scenario.seconds",
            &[1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0],
        ),
        wall_seconds: arrow_obs::metrics::gauge("offline.wall.seconds"),
    })
}

/// Generates the LotteryTicket set for every scenario (Algorithm 1 applied
/// per scenario, plus the always-feasible naive fallback), fanned out over
/// [`crate::par::default_threads`] worker threads.
///
/// Output is identical for every thread count — see
/// [`LotteryConfig::seed`] and [`generate_tickets_serial`].
pub fn generate_tickets(
    wan: &Wan,
    scenarios: &[FailureScenario],
    cfg: &LotteryConfig,
) -> TicketSet {
    generate_tickets_with_stats(wan, scenarios, cfg).0
}

/// [`generate_tickets`] plus the [`OfflineStats`] report.
pub fn generate_tickets_with_stats(
    wan: &Wan,
    scenarios: &[FailureScenario],
    cfg: &LotteryConfig,
) -> (TicketSet, OfflineStats) {
    generate_tickets_with_threads(wan, scenarios, cfg, crate::par::default_threads())
}

/// [`generate_tickets_with_stats`] with an explicit worker count (the
/// determinism regression tests pin 1/2/N threads through this).
pub fn generate_tickets_with_threads(
    wan: &Wan,
    scenarios: &[FailureScenario],
    cfg: &LotteryConfig,
    threads: usize,
) -> (TicketSet, OfflineStats) {
    let _span = arrow_obs::span!(
        "offline",
        "scenarios" => scenarios.len(),
        "threads" => threads,
        "num_tickets" => cfg.num_tickets,
    );
    // arrow-lint: allow(wall-clock-in-core) — offline-stage wall time feeds OfflineStats reporting; ticket contents never depend on it
    let t0 = std::time::Instant::now();
    let indices: Vec<usize> = (0..scenarios.len()).collect();
    let results = crate::par::parallel_map_with(threads, indices, |&i| {
        scenario_tickets(wan, &scenarios[i], i, cfg)
    });
    let mut per_scenario = Vec::with_capacity(results.len());
    let mut stats = OfflineStats {
        per_scenario: Vec::with_capacity(results.len()),
        wall_seconds: 0.0,
        work_seconds: 0.0,
        threads: threads.max(1),
    };
    for (tickets, s) in results {
        stats.work_seconds += s.seconds;
        stats.per_scenario.push(s);
        per_scenario.push(tickets);
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    offline_metrics().wall_seconds.set(stats.wall_seconds);
    (TicketSet::full(per_scenario), stats)
}

/// One deterministic slice of a scenario universe: shard `index` of `of`
/// owns the global scenario indices `i` with `i % of == index`.
///
/// The strided (round-robin) slice balances work when scenarios are
/// sorted by descending probability — contiguous chunks would give shard
/// 0 all the expensive high-probability scenarios. Because every
/// scenario's RNG stream derives from its *global* index
/// ([`derive_seed`]), the shard layout never changes ticket bytes: any
/// sharding merges back ([`TicketSet::merge`]) to the single-shard run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position in `0..of`.
    pub index: usize,
    /// Total number of shards.
    pub of: usize,
}

impl ShardSpec {
    /// The trivial sharding: one shard covering everything.
    pub fn whole() -> Self {
        ShardSpec { index: 0, of: 1 }
    }

    /// Global scenario indices this shard owns out of `n` scenarios.
    ///
    /// `of` must be ≥ 1 and `index < of` (asserted — a malformed spec is
    /// a programming error, not data).
    pub fn indices(&self, n: usize) -> Vec<usize> {
        assert!(self.of >= 1, "ShardSpec.of must be >= 1");
        assert!(self.index < self.of, "ShardSpec.index {} out of 0..{}", self.index, self.of);
        (self.index..n).step_by(self.of).collect()
    }
}

/// Generates tickets for one shard of a compiled scenario universe.
///
/// The returned [`TicketSet`] covers exactly the universe indices in
/// [`ShardSpec::indices`], carries them in `scenario_indices`, and digests
/// deterministically; merging every shard of any `of`-way split
/// reproduces the [`generate_tickets_universe`] result byte-for-byte
/// (`crates/core/tests/determinism.rs` pins this).
pub fn generate_tickets_shard(
    wan: &Wan,
    universe: &ScenarioUniverse,
    cfg: &LotteryConfig,
    shard: ShardSpec,
) -> (TicketSet, OfflineStats) {
    generate_tickets_shard_with_threads(wan, universe, cfg, shard, crate::par::default_threads())
}

/// [`generate_tickets_shard`] with an explicit worker count.
pub fn generate_tickets_shard_with_threads(
    wan: &Wan,
    universe: &ScenarioUniverse,
    cfg: &LotteryConfig,
    shard: ShardSpec,
    threads: usize,
) -> (TicketSet, OfflineStats) {
    let globals = shard.indices(universe.len());
    let _span = arrow_obs::span!(
        "offline",
        "scenarios" => globals.len(),
        "shard.index" => shard.index,
        "shard.of" => shard.of,
        "threads" => threads,
        "num_tickets" => cfg.num_tickets,
    );
    // arrow-lint: allow(wall-clock-in-core) — offline-stage wall time feeds OfflineStats reporting; ticket contents never depend on it
    let t0 = std::time::Instant::now();
    let results: Vec<(Vec<RestorationTicket>, ScenarioStats)> = if cfg.batch_lanes >= 2 {
        // Batched path: chunks of `batch_lanes` scenarios submit their
        // relaxed RWA LPs as one multi-RHS solve, then round per scenario.
        // Chunking happens after the strided shard selection, so the
        // chunk layout (like the thread count) never changes ticket bytes.
        let chunks: Vec<Vec<usize>> = globals.chunks(cfg.batch_lanes).map(|c| c.to_vec()).collect();
        let per_chunk = crate::par::parallel_map_with(threads, chunks, |chunk| {
            let scens: Vec<&FailureScenario> =
                chunk.iter().map(|&g| universe.scenario(g)).collect();
            let seeds = fractional_seed_batch(wan, &scens, &cfg.rwa);
            chunk
                .iter()
                .zip(scens.iter().zip(seeds))
                .map(|(&g, (scen, (seed, rwa_seconds)))| {
                    round_and_filter(wan, scen, g, cfg, &seed, rwa_seconds)
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    } else {
        crate::par::parallel_map_with(threads, globals.clone(), |&g| {
            scenario_tickets(wan, universe.scenario(g), g, cfg)
        })
    };
    let mut entries = Vec::with_capacity(results.len());
    let mut stats = OfflineStats {
        per_scenario: Vec::with_capacity(results.len()),
        wall_seconds: 0.0,
        work_seconds: 0.0,
        threads: threads.max(1),
    };
    for (&g, (tickets, s)) in globals.iter().zip(results) {
        stats.work_seconds += s.seconds;
        stats.per_scenario.push(s);
        entries.push((g, tickets));
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    offline_metrics().wall_seconds.set(stats.wall_seconds);
    (TicketSet::sharded(entries), stats)
}

/// Algorithm 1 over a whole compiled universe — the single-shard
/// reference every sharded run must merge back to.
pub fn generate_tickets_universe(
    wan: &Wan,
    universe: &ScenarioUniverse,
    cfg: &LotteryConfig,
) -> (TicketSet, OfflineStats) {
    generate_tickets_shard(wan, universe, cfg, ShardSpec::whole())
}

/// The documented serial reference for the determinism contract: plain
/// `iter().map()` over [`scenario_tickets`] with no thread pool at all.
///
/// `generate_tickets` (any thread count) must produce a `TicketSet` equal
/// to this — `crates/core/tests/determinism.rs` enforces it.
pub fn generate_tickets_serial(
    wan: &Wan,
    scenarios: &[FailureScenario],
    cfg: &LotteryConfig,
) -> TicketSet {
    TicketSet::full(
        scenarios
            .iter()
            .enumerate()
            .map(|(i, scen)| scenario_tickets(wan, scen, i, cfg).0)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_topology::{b4, generate_failures, FailureConfig};

    fn setup() -> (Wan, Vec<FailureScenario>) {
        let wan = b4(17);
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 5, ..Default::default() });
        (wan, failures.failure_scenarios().to_vec())
    }

    #[test]
    fn every_scenario_gets_at_least_the_naive_ticket() {
        let (wan, scens) = setup();
        let set = generate_tickets(&wan, &scens, &LotteryConfig::default());
        assert_eq!(set.per_scenario.len(), scens.len());
        for tickets in &set.per_scenario {
            assert!(!tickets.is_empty());
        }
    }

    #[test]
    fn tickets_respect_gamma_bounds() {
        let (wan, scens) = setup();
        let cfg = LotteryConfig { num_tickets: 30, ..Default::default() };
        let set = generate_tickets(&wan, &scens, &cfg);
        for (scen, tickets) in scens.iter().zip(&set.per_scenario) {
            for t in tickets {
                for &(link, gbps) in &t.restored {
                    assert!(scen.failed_links.contains(&link), "ticket names a healthy link");
                    let cap = wan.link(link).capacity_gbps;
                    assert!(gbps <= cap + 1e-6, "restored {gbps} exceeds lost capacity {cap}");
                    assert!(gbps >= 0.0);
                }
            }
        }
    }

    #[test]
    fn rounding_explores_distinct_candidates() {
        let (wan, scens) = setup();
        let cfg =
            LotteryConfig { num_tickets: 40, feasibility_filter: false, ..Default::default() };
        let set = generate_tickets(&wan, &scens, &cfg);
        // At least one scenario with a fractional/partial seed should
        // produce several distinct tickets.
        let max_distinct = set.per_scenario.iter().map(|t| t.len()).max().unwrap();
        assert!(max_distinct >= 3, "rounding produced {max_distinct} distinct tickets");
    }

    #[test]
    fn filtered_tickets_are_realizable() {
        let (wan, scens) = setup();
        let cfg = LotteryConfig { num_tickets: 25, ..Default::default() };
        let set = generate_tickets(&wan, &scens, &cfg);
        for (scen, tickets) in scens.iter().zip(&set.per_scenario) {
            for t in tickets {
                // Re-check realizability via the same filter.
                let targets: Vec<_> = t
                    .restored
                    .iter()
                    .map(|&(l, g)| {
                        let lp = wan.link(l).lightpath;
                        let gbps_per_wl = wan.optical.lightpath(lp).gbps_per_wavelength;
                        (lp, (g / gbps_per_wl).round() as usize)
                    })
                    .collect();
                assert!(
                    is_feasible(&wan.optical, &scen.cut_fibers, &cfg.rwa, &targets),
                    "an infeasible ticket survived the filter"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (wan, scens) = setup();
        let cfg = LotteryConfig::default();
        let a = generate_tickets(&wan, &scens, &cfg);
        let b = generate_tickets(&wan, &scens, &cfg);
        for (ta, tb) in a.per_scenario.iter().zip(&b.per_scenario) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn naive_ticket_matches_greedy_assignment() {
        let (wan, scens) = setup();
        let t = naive_ticket(&wan, &scens[0], &RwaConfig::default());
        // Every restored link is a failed link, and capacity is integral
        // wavelengths × modulation.
        for &(link, gbps) in &t.restored {
            assert!(scens[0].failed_links.contains(&link));
            let lp = wan.optical.lightpath(wan.link(link).lightpath);
            let per = lp.gbps_per_wavelength;
            let waves = gbps / per;
            assert!((waves - waves.round()).abs() < 1e-9, "non-integral wavelengths");
        }
    }

    #[test]
    fn realize_ticket_grounds_over_promises() {
        let (wan, scens) = setup();
        let cfg = LotteryConfig::default();
        // A ticket demanding full capacity on every failed link usually
        // over-promises; its realization must not exceed the promise and
        // must equal the greedy-feasible amount.
        let scen = &scens[0];
        let greedy_total = naive_ticket(&wan, scen, &cfg.rwa).total_gbps();
        let over = arrow_te::RestorationTicket {
            restored: scen.failed_links.iter().map(|&l| (l, wan.link(l).capacity_gbps)).collect(),
        };
        let realized = realize_ticket(&wan, scen, &over, &cfg.rwa);
        assert!(realized.total_gbps() <= over.total_gbps() + 1e-9);
        // Greedy realization of "everything" is the naive plan.
        assert!((realized.total_gbps() - greedy_total).abs() < 1e-6);
        // A feasible ticket realizes (at least) itself.
        let naive = naive_ticket(&wan, scen, &cfg.rwa);
        let again = realize_ticket(&wan, scen, &naive, &cfg.rwa);
        assert!(again.total_gbps() >= naive.total_gbps() - 1e-6);
    }

    #[test]
    fn round_once_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let seed = vec![FractionalRestoration {
            link: arrow_topology::IpLinkId(0),
            wavelengths: 2.4,
            lost_wavelengths: 4,
            gbps_per_wavelength: 100.0,
        }];
        for _ in 0..200 {
            let c = round_once(&mut rng, &seed, 3);
            assert!(c[0] <= 4, "exceeded γ_e");
        }
    }

    #[test]
    fn gbps_weighted_fractional_seed() {
        let (wan, scens) = setup();
        let seed = fractional_seed(&wan, &scens[0], &RwaConfig::default());
        assert!(!seed.is_empty());
        for f in &seed {
            assert!(f.wavelengths >= -1e-9);
            assert!(f.wavelengths <= f.lost_wavelengths as f64 + 1e-6);
            // A link with no surrogate path restores nothing and reports a
            // zero modulation rate; otherwise the rate must be positive.
            if f.wavelengths > 1e-9 {
                assert!(f.gbps_per_wavelength > 0.0);
            }
        }
    }
}
