//! Shard/merge semantics of [`TicketSet`] as plain data — no WAN, no LP:
//! merge coverage rules, conflict detection, and the deduplicated
//! weighted ticket pool (identical tickets produced for different
//! scenarios collapse to one entry carrying the combined probability).

use arrow_te::{MergeError, RestorationTicket, TicketSet};
use arrow_topology::IpLinkId;

fn ticket(pairs: &[(usize, f64)]) -> RestorationTicket {
    RestorationTicket { restored: pairs.iter().map(|&(l, g)| (IpLinkId(l), g)).collect() }
}

#[test]
fn sharded_entries_sort_by_global_index() {
    let set = TicketSet::sharded(vec![
        (5, vec![ticket(&[(0, 10.0)])]),
        (1, vec![ticket(&[(1, 20.0)])]),
        (3, vec![ticket(&[(2, 30.0)])]),
    ]);
    assert_eq!(set.scenario_indices, vec![1, 3, 5]);
    assert_eq!(set.for_scenario(0), &[ticket(&[(1, 20.0)])]);
    assert!(!set.is_full());
}

#[test]
fn merge_reassembles_full_coverage() {
    let even = TicketSet::sharded(vec![
        (0, vec![ticket(&[(0, 100.0)])]),
        (2, vec![ticket(&[(2, 300.0)])]),
    ]);
    let odd = TicketSet::sharded(vec![(1, vec![ticket(&[(1, 200.0)])])]);
    let merged = even.merge(&odd).expect("disjoint shards merge");
    assert!(merged.is_full());
    assert_eq!(merged.per_scenario.len(), 3);
    for q in 0..3 {
        assert_eq!(merged.for_scenario(q), &[ticket(&[(q, 100.0 * (q + 1) as f64)])]);
    }
}

#[test]
fn merge_dedups_identical_overlap_and_rejects_conflicts() {
    let a = TicketSet::sharded(vec![(4, vec![ticket(&[(0, 50.0)])])]);
    let same = TicketSet::sharded(vec![(4, vec![ticket(&[(0, 50.0)])])]);
    let merged = a.merge(&same).expect("identical overlap dedups");
    assert_eq!(merged.per_scenario.len(), 1);
    assert_eq!(merged.digest(), a.digest());

    // Same global scenario, different tickets: silent corruption — error.
    let diverged = TicketSet::sharded(vec![(4, vec![ticket(&[(0, 51.0)])])]);
    assert_eq!(a.merge(&diverged), Err(MergeError::Conflict { scenario: 4 }));
}

#[test]
fn merge_rejects_malformed_sets() {
    let mut broken = TicketSet::sharded(vec![(0, vec![ticket(&[(0, 1.0)])])]);
    broken.scenario_indices.clear();
    assert_eq!(
        TicketSet::default().merge(&broken),
        Err(MergeError::Malformed { entries: 1, indices: 0 })
    );
}

#[test]
fn same_ticket_across_shards_pools_to_one_with_combined_probability() {
    // Two shards, two *different* scenarios, bitwise-identical tickets:
    // e.g. a single cut of fiber A and the SRLG containing A restore the
    // same IP links by the same amounts. The pooled view must keep
    // exactly one copy carrying the combined probability mass.
    let shard_a = TicketSet::sharded(vec![(0, vec![ticket(&[(3, 200.0), (7, 100.0)])])]);
    let shard_b = TicketSet::sharded(vec![
        (1, vec![ticket(&[(3, 200.0), (7, 100.0)])]), // same bytes, other scenario
        (2, vec![ticket(&[(3, 150.0)])]),             // distinct ticket
    ]);
    let merged = shard_a.merge(&shard_b).expect("disjoint scenarios merge");

    let probs = [0.3, 0.2, 0.4]; // covered mass 0.9
    let pool = merged.weighted_pool(&probs);
    assert_eq!(pool.len(), 2, "identical tickets must collapse to one pool entry");

    let dup = &pool[0]; // first appearance: scenario 0's ticket
    assert_eq!(dup.ticket, ticket(&[(3, 200.0), (7, 100.0)]));
    assert_eq!(dup.scenarios, vec![0, 1], "both carrying scenarios recorded");
    let expect = (0.3 + 0.2) / 0.9; // combined, re-normalized by covered mass
    assert!((dup.probability - expect).abs() < 1e-12, "got {}", dup.probability);

    let solo = &pool[1];
    assert_eq!(solo.scenarios, vec![2]);
    assert!((solo.probability - 0.4 / 0.9).abs() < 1e-12);

    // The pool is a distribution over tickets: masses sum to ~1 here.
    let total: f64 = pool.iter().map(|w| w.probability).sum();
    assert!((total - 1.0).abs() < 1e-12);
}

#[test]
fn weighted_pool_counts_a_scenario_once_per_ticket() {
    // Dedupe-disabled generation can list the same ticket twice within
    // one scenario; the pool must not double-count that scenario's mass.
    let set = TicketSet::sharded(vec![(0, vec![ticket(&[(1, 10.0)]), ticket(&[(1, 10.0)])])]);
    let pool = set.weighted_pool(&[0.5]);
    assert_eq!(pool.len(), 1);
    assert_eq!(pool[0].scenarios, vec![0]);
    assert!((pool[0].probability - 1.0).abs() < 1e-12); // 0.5 / 0.5 covered
}
