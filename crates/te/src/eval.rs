//! Scenario playback and the paper's evaluation metrics (§6.1–§6.3).
//!
//! Given a TE allocation (and, for restoration-aware schemes, a restoration
//! plan), the playback engine simulates each failure scenario:
//!
//! 1. A tunnel is *alive* if it survives the scenario outright or is
//!    restored by the scenario's ticket (every failed link it crosses has
//!    positive restored capacity).
//! 2. Each flow offers traffic over its alive tunnels — by default frozen
//!    at the installed allocations (FFC semantics: routers keep splitting
//!    ratios, traffic on dead tunnels is lost), optionally re-spread
//!    proportionally over survivors.
//! 3. Failed links carry their *restored* capacity; every link load above
//!    capacity is scaled down proportionally (the congestion response).
//!
//! From playback come the paper's metrics: **availability** (§6.1,
//! probability-weighted demand satisfaction), **throughput** (§6.2,
//! `Σ b_f / Σ d_f`), **availability-guaranteed throughput** and the
//! **router-port cost model** (§6.3).

use crate::alloc::TeAllocation;
use crate::restoration::RestorationTicket;
use crate::schemes::{SchemeOutput, TeScheme};
use crate::tunnels::{DirLink, TeInstance};
use arrow_topology::FailureScenario;
use std::collections::BTreeMap;

/// Playback options.
#[derive(Debug, Clone, Default)]
pub struct PlaybackConfig {
    /// Re-spread each flow's admitted bandwidth over surviving tunnels
    /// (instead of freezing installed allocations).
    pub respread: bool,
}

/// Delivery outcome for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioDelivery {
    /// Delivered Gbps per flow.
    pub delivered: Vec<f64>,
    /// Directed link loads after congestion scaling.
    pub link_loads: BTreeMap<DirLink, f64>,
    /// `Σ delivered / Σ demand` — the scenario's demand satisfaction.
    pub satisfaction: f64,
}

/// Plays one scenario (or the healthy state when `scenario` is `None`).
pub fn play_scenario(
    inst: &TeInstance,
    alloc: &TeAllocation,
    scenario: Option<&FailureScenario>,
    restoration: Option<&RestorationTicket>,
    cfg: &PlaybackConfig,
) -> ScenarioDelivery {
    let restored = |l| restoration.map_or(0.0, |t| t.restored_gbps(l));
    // Tunnel aliveness.
    let alive: Vec<bool> = inst
        .tunnels
        .iter()
        .enumerate()
        .map(|(ti, _)| match scenario {
            None => true,
            Some(q) => {
                let tid = crate::tunnels::TunnelId(ti);
                inst.tunnel_survives(tid, q) || inst.tunnel_restorable(tid, q, &restored)
            }
        })
        .collect();
    // Offered load per tunnel.
    let mut offered = vec![0.0; inst.tunnels.len()];
    for (fi, flow) in inst.flows.iter().enumerate() {
        let alive_total: f64 =
            flow.tunnels.iter().filter(|&&t| alive[t.0]).map(|&t| alloc.a[t.0]).sum();
        if alive_total <= 0.0 {
            continue;
        }
        let send = if cfg.respread { alloc.b[fi] } else { alloc.b[fi].min(alive_total) };
        for &t in &flow.tunnels {
            if alive[t.0] {
                offered[t.0] = send * alloc.a[t.0] / alive_total;
            }
        }
    }
    // Link loads and congestion factors.
    let mut loads: BTreeMap<DirLink, f64> = BTreeMap::new();
    for (ti, t) in inst.tunnels.iter().enumerate() {
        if offered[ti] <= 0.0 {
            continue;
        }
        for h in &t.hops {
            *loads.entry(DirLink(h.link, h.forward)).or_insert(0.0) += offered[ti];
        }
    }
    let cap_of = |key: &DirLink| -> f64 {
        let is_failed = scenario.is_some_and(|q| q.failed_links.contains(&key.0));
        if is_failed {
            restored(key.0)
        } else {
            inst.wan.link(key.0).capacity_gbps
        }
    };
    let factor: BTreeMap<DirLink, f64> = loads
        .iter()
        .map(|(k, &load)| {
            let cap = cap_of(k);
            (*k, if load > cap { (cap / load).max(0.0) } else { 1.0 })
        })
        .collect();
    // Delivered traffic: each tunnel is throttled by its worst link.
    let mut delivered = vec![0.0; inst.flows.len()];
    let mut final_loads: BTreeMap<DirLink, f64> = BTreeMap::new();
    for (ti, t) in inst.tunnels.iter().enumerate() {
        if offered[ti] <= 0.0 {
            continue;
        }
        let worst = t.hops.iter().map(|h| factor[&DirLink(h.link, h.forward)]).fold(1.0, f64::min);
        let got = offered[ti] * worst;
        delivered[t.flow.0] += got;
        for h in &t.hops {
            *final_loads.entry(DirLink(h.link, h.forward)).or_insert(0.0) += got;
        }
    }
    // Delivered cannot exceed demand.
    for (fi, flow) in inst.flows.iter().enumerate() {
        delivered[fi] = delivered[fi].min(flow.demand_gbps);
    }
    // An empty traffic matrix is trivially satisfied; dividing by the old
    // 1e-9 floor instead turned "no demand" into satisfaction ≈ 0 (or a
    // huge ratio when rounding left delivered slightly positive).
    let total_demand = inst.total_demand();
    let satisfaction =
        if total_demand <= 0.0 { 1.0 } else { delivered.iter().sum::<f64>() / total_demand };
    ScenarioDelivery { delivered, link_loads: final_loads, satisfaction }
}

/// Availability of one `(allocation, restoration plan)` on an instance
/// (§6.1): "the sum of the availabilities of all *failure scenarios*
/// weighted by each scenario's probability" — demand satisfaction during
/// failures, probability-normalized over the enumerated scenario set. The
/// healthy state is not a failure scenario and does not enter the average
/// (use [`availability_with_healthy`] for the blended variant).
pub fn availability(inst: &TeInstance, out: &SchemeOutput, cfg: &PlaybackConfig) -> f64 {
    let failure_mass: f64 = inst.scenarios.iter().map(|s| s.probability).sum();
    let mut acc = 0.0;
    for (qi, q) in inst.scenarios.iter().enumerate() {
        let ticket = out.restoration.as_ref().map(|r| &r[qi]);
        acc += q.probability * play_scenario(inst, &out.alloc, Some(q), ticket, cfg).satisfaction;
    }
    acc / failure_mass.max(1e-12)
}

/// Availability blended with the healthy state: probability-weighted
/// demand satisfaction over the healthy scenario plus every enumerated
/// failure scenario, normalized by covered mass.
pub fn availability_with_healthy(
    inst: &TeInstance,
    out: &SchemeOutput,
    cfg: &PlaybackConfig,
) -> f64 {
    let failure_mass: f64 = inst.scenarios.iter().map(|s| s.probability).sum();
    let healthy_p = (1.0 - failure_mass).max(0.0);
    let mut acc = healthy_p * play_scenario(inst, &out.alloc, None, None, cfg).satisfaction;
    for (qi, q) in inst.scenarios.iter().enumerate() {
        let ticket = out.restoration.as_ref().map(|r| &r[qi]);
        acc += q.probability * play_scenario(inst, &out.alloc, Some(q), ticket, cfg).satisfaction;
    }
    acc / (healthy_p + failure_mass).max(1e-12)
}

/// Availability-guaranteed throughput at target β (§6.3): the demand
/// satisfaction at the β-percentile of the scenario loss distribution
/// (scenarios sorted by loss, weighted by probability).
pub fn availability_guaranteed_throughput(
    inst: &TeInstance,
    out: &SchemeOutput,
    beta: f64,
    cfg: &PlaybackConfig,
) -> f64 {
    let failure_mass: f64 = inst.scenarios.iter().map(|s| s.probability).sum();
    let healthy_p = (1.0 - failure_mass).max(0.0);
    let mut points: Vec<(f64, f64)> = Vec::new(); // (satisfaction, prob)
    points.push((play_scenario(inst, &out.alloc, None, None, cfg).satisfaction, healthy_p));
    for (qi, q) in inst.scenarios.iter().enumerate() {
        let ticket = out.restoration.as_ref().map(|r| &r[qi]);
        points.push((
            play_scenario(inst, &out.alloc, Some(q), ticket, cfg).satisfaction,
            q.probability,
        ));
    }
    let mass: f64 = points.iter().map(|&(_, p)| p).sum();
    // Sort by loss ascending (satisfaction descending); walk until the
    // cumulative probability reaches β.
    points.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut cum = 0.0;
    for &(sat, p) in &points {
        cum += p / mass;
        if cum >= beta {
            return sat;
        }
    }
    points.last().map(|&(s, _)| s).unwrap_or(0.0)
}

/// Router-port cost proxy (§6.3): worst-case directed link load across all
/// scenarios, summed over links, normalized by the availability-guaranteed
/// throughput.
pub fn required_router_ports(
    inst: &TeInstance,
    out: &SchemeOutput,
    beta: f64,
    cfg: &PlaybackConfig,
) -> f64 {
    let mut cap: BTreeMap<DirLink, f64> = BTreeMap::new();
    let healthy = play_scenario(inst, &out.alloc, None, None, cfg);
    for (k, &v) in &healthy.link_loads {
        cap.insert(*k, v);
    }
    for (qi, q) in inst.scenarios.iter().enumerate() {
        let ticket = out.restoration.as_ref().map(|r| &r[qi]);
        let d = play_scenario(inst, &out.alloc, Some(q), ticket, cfg);
        for (k, &v) in &d.link_loads {
            let e = cap.entry(*k).or_insert(0.0);
            *e = e.max(v);
        }
    }
    let total: f64 = cap.values().sum();
    let agt = availability_guaranteed_throughput(inst, out, beta, cfg).max(1e-9);
    total / agt
}

/// Finds the demand scale at which the failure-oblivious MaxFlow LP just
/// satisfies 100% of demand (§6 "Demand scaling": evaluations start from a
/// state where all demand fits). Returns the multiplicative factor to apply
/// to the instance's demands.
pub fn normalize_demand_scale(inst: &TeInstance) -> f64 {
    use crate::schemes::maxflow::MaxFlow;
    let solver = MaxFlow::default();
    let sat = |scale: f64| -> bool {
        let scaled = inst.scaled(scale);
        solver.solve(&scaled).alloc.throughput(&scaled) >= 0.999
    };
    let (mut lo, mut hi);
    if sat(1.0) {
        lo = 1.0;
        hi = 2.0;
        while sat(hi) && hi < 1e6 {
            lo = hi;
            hi *= 2.0;
        }
    } else {
        hi = 1.0;
        lo = 0.5;
        while !sat(lo) && lo > 1e-6 {
            hi = lo;
            lo /= 2.0;
        }
    }
    for _ in 0..25 {
        let mid = 0.5 * (lo + hi);
        if sat(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Convenience: solve a scheme and report `(availability, throughput)`.
pub fn evaluate_scheme(
    inst: &TeInstance,
    scheme: &dyn TeScheme,
    cfg: &PlaybackConfig,
) -> (f64, f64, SchemeOutput) {
    let out = scheme.solve(inst);
    let avail = availability(inst, &out, cfg);
    let thr = play_scenario(inst, &out.alloc, None, None, cfg).satisfaction;
    (avail, thr, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restoration::{RestorationTicket, TicketSet};
    use crate::schemes::arrow::Arrow;
    use crate::schemes::ecmp::Ecmp;
    use crate::schemes::ffc::Ffc;
    use crate::schemes::maxflow::MaxFlow;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn instance(scale: f64) -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 10, ..Default::default() });
        build_instance(
            &wan,
            &tms[0].scaled(scale),
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: true,
                ..Default::default()
            },
        )
    }

    fn full_tickets(inst: &TeInstance) -> TicketSet {
        TicketSet::full(
            inst.scenarios
                .iter()
                .map(|s| {
                    vec![RestorationTicket {
                        restored: s
                            .failed_links
                            .iter()
                            .map(|&l| (l, inst.wan.link(l).capacity_gbps))
                            .collect(),
                    }]
                })
                .collect(),
        )
    }

    #[test]
    fn zero_demand_is_fully_satisfied() {
        // Regression: the old 1e-9 demand floor reported satisfaction ≈ 0
        // for an empty traffic matrix, dragging availability metrics to
        // zero on idle networks instead of the trivially correct 1.0.
        let inst = instance(0.0);
        assert_eq!(inst.total_demand(), 0.0);
        let out = MaxFlow::default().solve(&inst);
        let cfg = PlaybackConfig::default();
        let healthy = play_scenario(&inst, &out.alloc, None, None, &cfg);
        assert_eq!(healthy.satisfaction, 1.0);
        for q in &inst.scenarios {
            let d = play_scenario(&inst, &out.alloc, Some(q), None, &cfg);
            assert_eq!(d.satisfaction, 1.0, "zero demand must be satisfied under failures too");
        }
        assert!((availability(&inst, &out, &cfg) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn healthy_playback_matches_lp_for_feasible_schemes() {
        let inst = instance(1.0);
        let out = MaxFlow::default().solve(&inst);
        let d = play_scenario(&inst, &out.alloc, None, None, &Default::default());
        assert!(
            (d.satisfaction - out.alloc.throughput(&inst)).abs() < 1e-3,
            "playback {} vs LP {}",
            d.satisfaction,
            out.alloc.throughput(&inst)
        );
    }

    #[test]
    fn ffc1_has_no_loss_under_single_cuts() {
        let inst = instance(2.0);
        let out = Ffc::k1().solve(&inst);
        let healthy = play_scenario(&inst, &out.alloc, None, None, &Default::default());
        for q in inst.scenarios.iter().filter(|q| q.cut_fibers.len() == 1) {
            let d = play_scenario(&inst, &out.alloc, Some(q), None, &Default::default());
            assert!(
                d.satisfaction >= healthy.satisfaction - 1e-3,
                "FFC-1 lost traffic under a single cut: {} -> {}",
                healthy.satisfaction,
                d.satisfaction
            );
        }
    }

    #[test]
    fn ecmp_loses_more_than_ffc_under_failures() {
        let inst = instance(3.0);
        let ecmp = Ecmp.solve(&inst);
        let ffc = Ffc::k1().solve(&inst);
        let cfg = PlaybackConfig::default();
        // Compare worst-case single-cut satisfaction.
        let worst = |out: &SchemeOutput| -> f64 {
            inst.scenarios
                .iter()
                .map(|q| play_scenario(&inst, &out.alloc, Some(q), None, &cfg).satisfaction)
                .fold(1.0, f64::min)
        };
        // ECMP admits everything, so its healthy satisfaction may be higher,
        // but its worst-case drop (relative to healthy) must be larger.
        let drop_e =
            play_scenario(&inst, &ecmp.alloc, None, None, &cfg).satisfaction - worst(&ecmp);
        let drop_f = play_scenario(&inst, &ffc.alloc, None, None, &cfg).satisfaction - worst(&ffc);
        assert!(drop_e > drop_f - 1e-6, "ECMP drop {drop_e} should exceed FFC drop {drop_f}");
    }

    #[test]
    fn restoration_improves_availability() {
        let inst = instance(3.0);
        let cfg = PlaybackConfig::default();
        let no_rest = Arrow::new(TicketSet::none(inst.scenarios.len())).solve(&inst);
        let full = Arrow::new(full_tickets(&inst)).solve(&inst);
        let a_no = availability(&inst, &no_rest, &cfg);
        let a_full = availability(&inst, &full, &cfg);
        assert!(
            a_full >= a_no - 1e-6,
            "restoration must not hurt availability: {a_full} vs {a_no}"
        );
    }

    #[test]
    fn availability_guaranteed_throughput_is_monotone_in_beta() {
        let inst = instance(3.0);
        let out = Ffc::k1().solve(&inst);
        let cfg = PlaybackConfig::default();
        let t90 = availability_guaranteed_throughput(&inst, &out, 0.90, &cfg);
        let t999 = availability_guaranteed_throughput(&inst, &out, 0.999, &cfg);
        assert!(t999 <= t90 + 1e-9, "stricter target cannot allow more: {t999} vs {t90}");
    }

    #[test]
    fn router_ports_favor_restoration() {
        let inst = instance(2.0);
        let cfg = PlaybackConfig::default();
        let full = Arrow::new(full_tickets(&inst)).solve(&inst);
        let ffc = Ffc::k1().solve(&inst);
        let ports_arrow = required_router_ports(&inst, &full, 0.999, &cfg);
        let ports_ffc = required_router_ports(&inst, &ffc, 0.999, &cfg);
        assert!(
            ports_arrow <= ports_ffc * 1.5,
            "ARROW ports {ports_arrow} should not exceed FFC {ports_ffc} by much"
        );
    }

    #[test]
    fn normalization_lands_at_full_satisfaction() {
        let inst = instance(1.0);
        let s = normalize_demand_scale(&inst);
        assert!(s > 0.0);
        let scaled = inst.scaled(s);
        let out = MaxFlow::default().solve(&scaled);
        let thr = out.alloc.throughput(&scaled);
        assert!(thr >= 0.998, "normalized throughput {thr}");
        // And 10% more demand must not fit fully.
        let over = inst.scaled(s * 1.1);
        let out2 = MaxFlow::default().solve(&over);
        assert!(out2.alloc.throughput(&over) < 0.9999);
    }

    #[test]
    fn playback_respects_restored_capacity_limits() {
        let inst = instance(2.0);
        let out = MaxFlow::default().solve(&inst);
        let q = &inst.scenarios[0];
        let half_ticket = RestorationTicket {
            restored: q
                .failed_links
                .iter()
                .map(|&l| (l, 0.5 * inst.wan.link(l).capacity_gbps))
                .collect(),
        };
        let d = play_scenario(&inst, &out.alloc, Some(q), Some(&half_ticket), &Default::default());
        for (k, &load) in &d.link_loads {
            let cap = if q.failed_links.contains(&k.0) {
                half_ticket.restored_gbps(k.0)
            } else {
                inst.wan.link(k.0).capacity_gbps
            };
            assert!(load <= cap * (1.0 + 1e-6) + 1e-6, "link {k:?} load {load} > cap {cap}");
        }
        // Partial restoration beats no restoration.
        let none = play_scenario(&inst, &out.alloc, Some(q), None, &Default::default());
        assert!(d.satisfaction >= none.satisfaction - 1e-9);
    }

    #[test]
    fn respread_mode_never_delivers_less() {
        let inst = instance(2.0);
        let out = Ecmp.solve(&inst);
        for q in &inst.scenarios {
            let frozen = play_scenario(&inst, &out.alloc, Some(q), None, &Default::default());
            let spread =
                play_scenario(&inst, &out.alloc, Some(q), None, &PlaybackConfig { respread: true });
            // Respread pushes the full b_f onto survivors; with capacity
            // scaling it can congest, but in the typical case it delivers
            // at least as much offered traffic.
            assert!(spread.satisfaction >= frozen.satisfaction - 0.05);
        }
    }
}
