//! Restoration candidates (LotteryTickets) as TE input.
//!
//! These are plain data types: a [`RestorationTicket`] records, for one
//! failure scenario, how much capacity each failed IP link would get back
//! (`r_e^{z,q}` in Table 2). Ticket *generation* (the RWA seed + randomized
//! rounding of Algorithm 1) lives in `arrow-core`; keeping the data types
//! here lets the TE formulations consume tickets without a dependency
//! cycle.

use arrow_topology::IpLinkId;
use serde::{Deserialize, Serialize};

/// One restoration candidate for one failure scenario: restorable Gbps per
/// failed IP link (links absent from the map restore nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestorationTicket {
    /// `(failed link, restorable capacity in Gbps)` pairs.
    pub restored: Vec<(IpLinkId, f64)>,
}

impl RestorationTicket {
    /// A ticket restoring nothing (the degenerate candidate).
    pub fn empty() -> Self {
        RestorationTicket { restored: Vec::new() }
    }

    /// Restorable capacity of `link` under this ticket (0 if absent).
    pub fn restored_gbps(&self, link: IpLinkId) -> f64 {
        self.restored.iter().find(|(l, _)| *l == link).map(|&(_, g)| g).unwrap_or(0.0)
    }

    /// Total restored capacity across links.
    pub fn total_gbps(&self) -> f64 {
        self.restored.iter().map(|&(_, g)| g).sum()
    }

    /// The set of links with positive restoration — the ticket's *support*.
    /// Tickets with equal support yield the same restorable-tunnel sets
    /// `Y_f^{z,q}`, which the Phase-I builder exploits to deduplicate
    /// constraints.
    pub fn support(&self) -> Vec<IpLinkId> {
        let mut s: Vec<IpLinkId> =
            self.restored.iter().filter(|&&(_, g)| g > 0.0).map(|&(l, _)| l).collect();
        s.sort();
        s
    }
}

/// All restoration candidates for every failure scenario, parallel to the
/// instance's scenario list: `tickets[q]` holds `Z^q`.
///
/// `PartialEq` is structural and exact (bitwise on the Gbps values) — the
/// offline stage's determinism tests rely on it to assert byte-identical
/// generation across thread counts.
///
/// A set is either *full* (entry `q` describes global scenario `q`; built
/// with [`TicketSet::full`]) or a *shard* of a larger universe (entries
/// cover a subset of global scenario indices; built with
/// [`TicketSet::sharded`]). [`TicketSet::scenario_indices`] records the
/// mapping either way, and [`TicketSet::merge`] recombines shards into the
/// byte-identical full set regardless of shard count or merge order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TicketSet {
    /// Per-scenario ticket lists.
    pub per_scenario: Vec<Vec<RestorationTicket>>,
    /// Global scenario index described by each `per_scenario` entry,
    /// ascending. A full set carries exactly `0..per_scenario.len()`; a
    /// shard carries the (strided) subset its `ShardSpec` selected.
    pub scenario_indices: Vec<usize>,
}

/// Why two ticket shards refused to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The same global scenario carries *different* ticket lists in the
    /// two sets — they were generated from different seeds, configs, or
    /// universes and recombining them would be silent corruption.
    Conflict {
        /// Global scenario index with diverging tickets.
        scenario: usize,
    },
    /// A set's `scenario_indices` length does not match `per_scenario` —
    /// it was hand-built inconsistently.
    Malformed {
        /// `per_scenario` entries present.
        entries: usize,
        /// `scenario_indices` entries present.
        indices: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Conflict { scenario } => write!(
                f,
                "ticket shards disagree on scenario {scenario}: same global index, \
                 different tickets (mixed seeds/configs/universes?)"
            ),
            MergeError::Malformed { entries, indices } => write!(
                f,
                "malformed TicketSet: {entries} per-scenario entries but {indices} \
                 scenario indices"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// One deduplicated restoration ticket with the probability mass of the
/// scenarios that produced it (see [`TicketSet::weighted_pool`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedTicket {
    /// The unique ticket (bitwise identity over `(link, gbps)` pairs).
    pub ticket: RestorationTicket,
    /// Combined probability of its scenarios, re-normalized by the covered
    /// mass of the whole set so the pool is a distribution over tickets.
    pub probability: f64,
    /// Global scenario indices that carry this exact ticket, ascending.
    pub scenarios: Vec<usize>,
}

impl TicketSet {
    /// A *full* set: entry `q` holds the candidates for global scenario
    /// `q`. This is what the TE formulations consume.
    pub fn full(per_scenario: Vec<Vec<RestorationTicket>>) -> Self {
        let scenario_indices = (0..per_scenario.len()).collect();
        TicketSet { per_scenario, scenario_indices }
    }

    /// A *shard*: explicit `(global scenario index, tickets)` entries.
    /// Entries are sorted by index so equal coverage means equal bytes no
    /// matter what order the shard produced them in.
    pub fn sharded(mut entries: Vec<(usize, Vec<RestorationTicket>)>) -> Self {
        entries.sort_by_key(|&(q, _)| q);
        let scenario_indices = entries.iter().map(|&(q, _)| q).collect();
        let per_scenario = entries.into_iter().map(|(_, t)| t).collect();
        TicketSet { per_scenario, scenario_indices }
    }

    /// A set with no restoration at all (every scheme degenerates to
    /// failure-aware TE without restoration).
    pub fn none(num_scenarios: usize) -> Self {
        TicketSet::full(vec![vec![RestorationTicket::empty()]; num_scenarios])
    }

    /// Whether this set is full (covers exactly `0..n` in order) rather
    /// than a shard of a larger universe.
    pub fn is_full(&self) -> bool {
        self.scenario_indices.len() == self.per_scenario.len()
            && self.scenario_indices.iter().copied().eq(0..self.per_scenario.len())
    }

    /// Tickets for scenario index `q`.
    ///
    /// Positional: on a full set `q` is the global scenario index; on a
    /// shard it is the position within the shard (`scenario_indices[q]`
    /// gives the global index).
    pub fn for_scenario(&self, q: usize) -> &[RestorationTicket] {
        &self.per_scenario[q]
    }

    /// Largest per-scenario ticket count.
    pub fn max_tickets(&self) -> usize {
        self.per_scenario.iter().map(|t| t.len()).max().unwrap_or(0)
    }

    /// Total tickets across all scenarios.
    pub fn total_tickets(&self) -> usize {
        self.per_scenario.iter().map(|t| t.len()).sum()
    }

    /// Merges two shards of the same universe into one set covering the
    /// union of their scenarios.
    ///
    /// The operation is commutative and associative — entries land sorted
    /// by global scenario index, so any merge tree over any sharding of a
    /// universe reproduces the byte-identical full set (equal [`digest`]).
    /// A scenario present in both sides must carry identical tickets
    /// (deterministic generation guarantees this for honest shards); the
    /// duplicate entry is dropped, and diverging duplicates are a
    /// [`MergeError::Conflict`].
    ///
    /// [`digest`]: TicketSet::digest
    pub fn merge(&self, other: &TicketSet) -> Result<TicketSet, MergeError> {
        for set in [self, other] {
            if set.scenario_indices.len() != set.per_scenario.len() {
                return Err(MergeError::Malformed {
                    entries: set.per_scenario.len(),
                    indices: set.scenario_indices.len(),
                });
            }
        }
        // BTreeMap keys the union by global index — deterministic order,
        // no hash iteration (this crate feeds LP row construction).
        let mut union: std::collections::BTreeMap<usize, &Vec<RestorationTicket>> =
            std::collections::BTreeMap::new();
        for set in [self, other] {
            for (&q, tickets) in set.scenario_indices.iter().zip(&set.per_scenario) {
                match union.entry(q) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(tickets);
                    }
                    std::collections::btree_map::Entry::Occupied(e) => {
                        if *e.get() != tickets {
                            return Err(MergeError::Conflict { scenario: q });
                        }
                    }
                }
            }
        }
        let mut merged = TicketSet {
            per_scenario: Vec::with_capacity(union.len()),
            scenario_indices: Vec::with_capacity(union.len()),
        };
        for (q, tickets) in union {
            merged.scenario_indices.push(q);
            merged.per_scenario.push(tickets.clone());
        }
        Ok(merged)
    }

    /// Folds [`merge`](TicketSet::merge) over any number of shards. An
    /// empty iterator yields the empty set.
    pub fn merge_all(shards: impl IntoIterator<Item = TicketSet>) -> Result<TicketSet, MergeError> {
        let mut acc = TicketSet::default();
        for shard in shards {
            acc = acc.merge(&shard)?;
        }
        Ok(acc)
    }

    /// The deduplicated ticket pool: every distinct ticket exactly once,
    /// weighted by the probability of the scenarios that produced it.
    ///
    /// `scenario_prob[q]` is the probability of global scenario `q` (a
    /// compiled universe's `probabilities()`; indices outside the slice
    /// weigh zero). Identical tickets emitted for different scenarios —
    /// common across shards, where k-cut supersets restore the same links
    /// — collapse to one [`WeightedTicket`] whose probability is the *sum*
    /// over its scenarios, re-normalized by the set's covered mass so the
    /// pool sums to ≤ 1. Identity is bitwise on the `(link, gbps)` pairs;
    /// output order is first appearance (scenario order, then ticket
    /// order), which is deterministic for deterministic generation.
    pub fn weighted_pool(&self, scenario_prob: &[f64]) -> Vec<WeightedTicket> {
        let covered: f64 = self
            .scenario_indices
            .iter()
            .map(|&q| scenario_prob.get(q).copied().unwrap_or(0.0))
            .sum();
        let norm = if covered > 0.0 { covered } else { 1.0 };
        // Bitwise ticket key → position in the output pool.
        let mut seen: std::collections::BTreeMap<Vec<(usize, u64)>, usize> =
            std::collections::BTreeMap::new();
        let mut pool: Vec<WeightedTicket> = Vec::new();
        for (&q, tickets) in self.scenario_indices.iter().zip(&self.per_scenario) {
            let p = scenario_prob.get(q).copied().unwrap_or(0.0);
            for t in tickets {
                let key: Vec<(usize, u64)> =
                    t.restored.iter().map(|&(l, g)| (l.0, g.to_bits())).collect();
                let at = *seen.entry(key).or_insert_with(|| {
                    pool.push(WeightedTicket {
                        ticket: t.clone(),
                        probability: 0.0,
                        scenarios: Vec::new(),
                    });
                    pool.len() - 1
                });
                // Count each scenario once even if (dedupe disabled) it
                // lists the same ticket twice.
                if pool[at].scenarios.last() != Some(&q) {
                    pool[at].scenarios.push(q);
                    pool[at].probability += p / norm;
                }
            }
        }
        for w in &mut pool {
            w.probability = w.probability.min(1.0);
        }
        pool
    }

    /// An order-sensitive 64-bit digest of the full set (FNV-1a over the
    /// structure, the scenario indices, and the exact bit patterns of
    /// every Gbps value).
    ///
    /// Two sets digest equal iff they are `==`; the determinism tests use
    /// it for a compact cross-thread-count and cross-shard fingerprint,
    /// and it is cheap enough to log per offline run.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.per_scenario.len() as u64);
        for (&q, tickets) in self.scenario_indices.iter().zip(&self.per_scenario) {
            mix(q as u64);
            mix(tickets.len() as u64);
            for t in tickets {
                mix(t.restored.len() as u64);
                for &(link, gbps) in &t.restored {
                    mix(link.0 as u64);
                    mix(gbps.to_bits());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_lookup_and_total() {
        let t = RestorationTicket {
            restored: vec![(IpLinkId(3), 200.0), (IpLinkId(7), 0.0), (IpLinkId(1), 300.0)],
        };
        assert_eq!(t.restored_gbps(IpLinkId(3)), 200.0);
        assert_eq!(t.restored_gbps(IpLinkId(9)), 0.0);
        assert_eq!(t.total_gbps(), 500.0);
        assert_eq!(t.support(), vec![IpLinkId(1), IpLinkId(3)]);
    }

    #[test]
    fn none_set_shape() {
        let s = TicketSet::none(4);
        assert_eq!(s.per_scenario.len(), 4);
        assert_eq!(s.max_tickets(), 1);
        assert_eq!(s.for_scenario(2)[0], RestorationTicket::empty());
        assert_eq!(RestorationTicket::empty().total_gbps(), 0.0);
    }
}
