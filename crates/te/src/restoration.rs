//! Restoration candidates (LotteryTickets) as TE input.
//!
//! These are plain data types: a [`RestorationTicket`] records, for one
//! failure scenario, how much capacity each failed IP link would get back
//! (`r_e^{z,q}` in Table 2). Ticket *generation* (the RWA seed + randomized
//! rounding of Algorithm 1) lives in `arrow-core`; keeping the data types
//! here lets the TE formulations consume tickets without a dependency
//! cycle.

use arrow_topology::IpLinkId;
use serde::{Deserialize, Serialize};

/// One restoration candidate for one failure scenario: restorable Gbps per
/// failed IP link (links absent from the map restore nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestorationTicket {
    /// `(failed link, restorable capacity in Gbps)` pairs.
    pub restored: Vec<(IpLinkId, f64)>,
}

impl RestorationTicket {
    /// A ticket restoring nothing (the degenerate candidate).
    pub fn empty() -> Self {
        RestorationTicket { restored: Vec::new() }
    }

    /// Restorable capacity of `link` under this ticket (0 if absent).
    pub fn restored_gbps(&self, link: IpLinkId) -> f64 {
        self.restored.iter().find(|(l, _)| *l == link).map(|&(_, g)| g).unwrap_or(0.0)
    }

    /// Total restored capacity across links.
    pub fn total_gbps(&self) -> f64 {
        self.restored.iter().map(|&(_, g)| g).sum()
    }

    /// The set of links with positive restoration — the ticket's *support*.
    /// Tickets with equal support yield the same restorable-tunnel sets
    /// `Y_f^{z,q}`, which the Phase-I builder exploits to deduplicate
    /// constraints.
    pub fn support(&self) -> Vec<IpLinkId> {
        let mut s: Vec<IpLinkId> =
            self.restored.iter().filter(|&&(_, g)| g > 0.0).map(|&(l, _)| l).collect();
        s.sort();
        s
    }
}

/// All restoration candidates for every failure scenario, parallel to the
/// instance's scenario list: `tickets[q]` holds `Z^q`.
///
/// `PartialEq` is structural and exact (bitwise on the Gbps values) — the
/// offline stage's determinism tests rely on it to assert byte-identical
/// generation across thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TicketSet {
    /// Per-scenario ticket lists.
    pub per_scenario: Vec<Vec<RestorationTicket>>,
}

impl TicketSet {
    /// A set with no restoration at all (every scheme degenerates to
    /// failure-aware TE without restoration).
    pub fn none(num_scenarios: usize) -> Self {
        TicketSet { per_scenario: vec![vec![RestorationTicket::empty()]; num_scenarios] }
    }

    /// Tickets for scenario index `q`.
    pub fn for_scenario(&self, q: usize) -> &[RestorationTicket] {
        &self.per_scenario[q]
    }

    /// Largest per-scenario ticket count.
    pub fn max_tickets(&self) -> usize {
        self.per_scenario.iter().map(|t| t.len()).max().unwrap_or(0)
    }

    /// Total tickets across all scenarios.
    pub fn total_tickets(&self) -> usize {
        self.per_scenario.iter().map(|t| t.len()).sum()
    }

    /// An order-sensitive 64-bit digest of the full set (FNV-1a over the
    /// structure and the exact bit patterns of every Gbps value).
    ///
    /// Two sets digest equal iff they are `==`; the determinism tests use
    /// it for a compact cross-thread-count fingerprint, and it is cheap
    /// enough to log per offline run.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.per_scenario.len() as u64);
        for tickets in &self.per_scenario {
            mix(tickets.len() as u64);
            for t in tickets {
                mix(t.restored.len() as u64);
                for &(link, gbps) in &t.restored {
                    mix(link.0 as u64);
                    mix(gbps.to_bits());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_lookup_and_total() {
        let t = RestorationTicket {
            restored: vec![(IpLinkId(3), 200.0), (IpLinkId(7), 0.0), (IpLinkId(1), 300.0)],
        };
        assert_eq!(t.restored_gbps(IpLinkId(3)), 200.0);
        assert_eq!(t.restored_gbps(IpLinkId(9)), 0.0);
        assert_eq!(t.total_gbps(), 500.0);
        assert_eq!(t.support(), vec![IpLinkId(1), IpLinkId(3)]);
    }

    #[test]
    fn none_set_shape() {
        let s = TicketSet::none(4);
        assert_eq!(s.per_scenario.len(), 4);
        assert_eq!(s.max_tickets(), 1);
        assert_eq!(s.for_scenario(2)[0], RestorationTicket::empty());
        assert_eq!(RestorationTicket::empty().total_gbps(), 0.0);
    }
}
