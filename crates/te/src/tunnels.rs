//! IP-layer tunnels and the TE problem instance.
//!
//! Standard TE input (Table 1): flows are site pairs with demands; each
//! flow routes over a fixed set of tunnels (IP-layer paths). Tunnels are
//! selected with k-shortest paths plus a fiber-disjointness preference
//! (§6 "Tunnel selection"), and the selection guarantees at least one
//! residual tunnel per flow under every configured failure scenario by
//! adding scenario-avoiding tunnels where needed.
//!
//! IP links are full-duplex: a tunnel occupies capacity on each link in a
//! specific direction, and capacity constraints are per `(link, direction)`.

use arrow_topology::{FailureScenario, IpLinkId, SiteId, TrafficMatrix, Wan};

/// Index of a flow within a [`TeInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// Index of a tunnel within a [`TeInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TunnelId(pub usize);

/// One directed traversal of an IP link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectedHop {
    /// The IP link.
    pub link: IpLinkId,
    /// `true` when traversed from `link.a` to `link.b`.
    pub forward: bool,
}

/// A directed capacity key: `(link, direction)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirLink(pub IpLinkId, pub bool);

/// One tunnel: a loop-free IP path serving one flow.
#[derive(Debug, Clone)]
pub struct Tunnel {
    /// The flow this tunnel serves.
    pub flow: FlowId,
    /// Directed hops from the flow's source to its destination.
    pub hops: Vec<DirectedHop>,
    /// Total underlying fiber length (km) — the latency proxy used to rank.
    pub length_km: f64,
}

impl Tunnel {
    /// Whether the tunnel traverses `link` (either direction).
    pub fn uses_link(&self, link: IpLinkId) -> bool {
        self.hops.iter().any(|h| h.link == link)
    }

    /// The underlying fiber ids (for disjointness checks).
    pub fn fibers(&self, wan: &Wan) -> Vec<arrow_optical::FiberId> {
        let mut out = Vec::new();
        for h in &self.hops {
            let lp = wan.optical.lightpath(wan.link(h.link).lightpath);
            out.extend(lp.path.iter().copied());
        }
        out.sort();
        out.dedup();
        out
    }
}

/// One flow: an ordered site pair with a demand and its tunnel set.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Source site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// Demand in Gbps (`d_f`).
    pub demand_gbps: f64,
    /// Tunnels serving this flow (`T_f`).
    pub tunnels: Vec<TunnelId>,
}

/// Tunnel-selection knobs.
#[derive(Debug, Clone)]
pub struct TunnelConfig {
    /// Tunnels per flow (§6: 8 for B4, 12 for IBM, 16 for Facebook).
    pub tunnels_per_flow: usize,
    /// Prefer fiber-disjoint tunnels when ranking candidates.
    pub prefer_fiber_disjoint: bool,
    /// Beyond the instance's scenario list, also guarantee (where the IP
    /// layer permits) a surviving tunnel for every cut of up to this many
    /// fibers. FFC-k enumerates *all* k-fiber combinations, so its
    /// protection quality depends on this (§6 "ensuring that there is at
    /// least one residual tunnel for every flow under each failure
    /// scenario"). `1` covers all single cuts; `0` covers only the
    /// instance's scenarios.
    pub cover_all_cuts: usize,
}

impl Default for TunnelConfig {
    fn default() -> Self {
        TunnelConfig { tunnels_per_flow: 8, prefer_fiber_disjoint: true, cover_all_cuts: 1 }
    }
}

/// The full TE problem instance: topology + flows + tunnels + scenarios.
#[derive(Debug, Clone)]
pub struct TeInstance {
    /// The WAN (IP + optical layers).
    pub wan: Wan,
    /// Flows (`F`), one per ordered site pair with positive demand.
    pub flows: Vec<Flow>,
    /// All tunnels (`T`), flow-owned.
    pub tunnels: Vec<Tunnel>,
    /// Failure scenarios considered (`Q`), failure entries only.
    pub scenarios: Vec<FailureScenario>,
}

/// IP-layer Dijkstra from `src` to `dst`, avoiding `banned_links` and
/// interior `banned_sites`. Edge weight: underlying fiber km + 1 (the +1
/// breaks ties toward fewer hops).
fn ip_shortest_path(
    wan: &Wan,
    src: SiteId,
    dst: SiteId,
    banned_links: &[IpLinkId],
    banned_sites: &[SiteId],
) -> Option<(Vec<DirectedHop>, f64)> {
    let n = wan.num_sites();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(usize, DirectedHop)>> = vec![None; n];
    let mut done = vec![false; n];
    if banned_sites.contains(&src) || banned_sites.contains(&dst) {
        return None;
    }
    dist[src.0] = 0.0;
    // Simple O(V^2) scan — IP graphs here are at most a few dozen sites.
    loop {
        let mut at = None;
        let mut best = f64::INFINITY;
        for v in 0..n {
            if !done[v] && dist[v] < best {
                best = dist[v];
                at = Some(v);
            }
        }
        let Some(at) = at else { break };
        if at == dst.0 {
            break;
        }
        done[at] = true;
        for lid in wan.incident_links(SiteId(at)) {
            if banned_links.contains(&lid) {
                continue;
            }
            let link = wan.link(lid);
            let next = link.other_end(SiteId(at));
            if banned_sites.contains(&next) || done[next.0] {
                continue;
            }
            let lp = wan.optical.lightpath(link.lightpath);
            let w = wan.optical.path_length_km(&lp.path) + 1.0;
            if dist[at] + w < dist[next.0] {
                dist[next.0] = dist[at] + w;
                prev[next.0] = Some((at, DirectedHop { link: lid, forward: link.a.0 == at }));
            }
        }
    }
    if !dist[dst.0].is_finite() {
        return None;
    }
    let mut hops = Vec::new();
    let mut at = dst.0;
    while at != src.0 {
        // Finite distance implies an unbroken predecessor chain to src.
        let (p, h) = prev[at]?;
        hops.push(h);
        at = p;
    }
    hops.reverse();
    Some((hops, dist[dst.0]))
}

/// Sites visited by a hop sequence starting at `src`.
fn hop_sites(wan: &Wan, src: SiteId, hops: &[DirectedHop]) -> Vec<SiteId> {
    let mut sites = vec![src];
    let mut at = src;
    for h in hops {
        at = wan.link(h.link).other_end(at);
        sites.push(at);
    }
    sites
}

/// Yen's k-shortest loop-free IP paths.
fn ip_k_shortest(wan: &Wan, src: SiteId, dst: SiteId, k: usize) -> Vec<(Vec<DirectedHop>, f64)> {
    let mut accepted: Vec<(Vec<DirectedHop>, f64)> = Vec::new();
    let Some(first) = ip_shortest_path(wan, src, dst, &[], &[]) else {
        return accepted;
    };
    accepted.push(first);
    let mut candidates: Vec<(Vec<DirectedHop>, f64)> = Vec::new();
    while accepted.len() < k {
        let Some((last_hops, _)) = accepted.last().cloned() else { break };
        let last_sites = hop_sites(wan, src, &last_hops);
        for spur in 0..last_hops.len() {
            let spur_site = last_sites[spur];
            let root = &last_hops[..spur];
            let mut banned_links: Vec<IpLinkId> = Vec::new();
            for (p, _) in &accepted {
                if p.len() > spur && p[..spur] == *root {
                    banned_links.push(p[spur].link);
                }
            }
            let banned_sites: Vec<SiteId> = last_sites[..spur].to_vec();
            if let Some((spur_hops, _)) =
                ip_shortest_path(wan, spur_site, dst, &banned_links, &banned_sites)
            {
                let mut hops = root.to_vec();
                hops.extend(spur_hops);
                let len: f64 = hops
                    .iter()
                    .map(|h| {
                        let lp = wan.optical.lightpath(wan.link(h.link).lightpath);
                        wan.optical.path_length_km(&lp.path) + 1.0
                    })
                    .sum();
                let cand = (hops, len);
                if !accepted.iter().any(|(p, _)| *p == cand.0)
                    && !candidates.iter().any(|(p, _)| *p == cand.0)
                {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        let Some(best) =
            candidates.iter().enumerate().min_by(|a, b| a.1 .1.total_cmp(&b.1 .1)).map(|(i, _)| i)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best));
    }
    accepted
}

/// Builds a TE instance from a WAN, a traffic matrix, scenarios, and
/// tunnel-selection settings.
///
/// Tunnel selection: take `3k` Yen candidates, then greedily pick `k`
/// maximizing fiber diversity (if configured), then patch: for every
/// scenario that would kill all of a flow's tunnels, add one tunnel routed
/// around that scenario's failed links (when the IP layer permits).
pub fn build_instance(
    wan: &Wan,
    tm: &TrafficMatrix,
    scenarios: &[FailureScenario],
    cfg: &TunnelConfig,
) -> TeInstance {
    let mut flows = Vec::new();
    let mut tunnels: Vec<Tunnel> = Vec::new();
    for (src, dst, demand) in tm.flows() {
        let fid = FlowId(flows.len());
        let k = cfg.tunnels_per_flow;
        let mut cands = ip_k_shortest(wan, src, dst, k * 3);
        // Greedy diversity selection.
        let mut chosen: Vec<(Vec<DirectedHop>, f64)> = Vec::new();
        if cfg.prefer_fiber_disjoint {
            while chosen.len() < k && !cands.is_empty() {
                let chosen_fibers: Vec<std::collections::BTreeSet<_>> = chosen
                    .iter()
                    .map(|(hops, _)| {
                        hops.iter()
                            .flat_map(|h| {
                                wan.optical
                                    .lightpath(wan.link(h.link).lightpath)
                                    .path
                                    .iter()
                                    .copied()
                            })
                            .collect()
                    })
                    .collect();
                // Score: number of already-chosen tunnels we are fiber-
                // disjoint from (higher better), then shorter length.
                let Some(best) = cands
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let score = |(hops, len): &(Vec<DirectedHop>, f64)| {
                            let fibers: std::collections::BTreeSet<_> = hops
                                .iter()
                                .flat_map(|h| {
                                    wan.optical
                                        .lightpath(wan.link(h.link).lightpath)
                                        .path
                                        .iter()
                                        .copied()
                                })
                                .collect();
                            let disjoint =
                                chosen_fibers.iter().filter(|cf| cf.is_disjoint(&fibers)).count()
                                    as f64;
                            disjoint - len / 1e6
                        };
                        score(a).total_cmp(&score(b))
                    })
                    .map(|(i, _)| i)
                else {
                    break;
                };
                chosen.push(cands.swap_remove(best));
            }
        } else {
            cands.truncate(k);
            chosen = cands;
        }
        // Patch: guarantee a residual tunnel for every instance scenario,
        // and for every single-fiber cut when `cover_all_cuts >= 1` (FFC-1
        // protects all singles, not just the probabilistic subset).
        let mut patch_sets: Vec<Vec<IpLinkId>> =
            scenarios.iter().map(|s| s.failed_links.clone()).collect();
        if cfg.cover_all_cuts >= 1 {
            for f in 0..wan.optical.num_fibers() {
                let failed = wan.links_failed_by(&[arrow_optical::FiberId(f)]);
                if !failed.is_empty() {
                    patch_sets.push(failed);
                }
            }
        }
        for failed in &patch_sets {
            let survives =
                chosen.iter().any(|(hops, _)| hops.iter().all(|h| !failed.contains(&h.link)));
            if !survives {
                if let Some(extra) = ip_shortest_path(wan, src, dst, failed, &[]) {
                    if !chosen.iter().any(|(p, _)| *p == extra.0) {
                        chosen.push(extra);
                    }
                }
            }
        }
        let tunnel_ids: Vec<TunnelId> = chosen
            .into_iter()
            .map(|(hops, len)| {
                let tid = TunnelId(tunnels.len());
                tunnels.push(Tunnel { flow: fid, hops, length_km: len });
                tid
            })
            .collect();
        flows.push(Flow { src, dst, demand_gbps: demand, tunnels: tunnel_ids });
    }
    TeInstance { wan: wan.clone(), flows, tunnels, scenarios: scenarios.to_vec() }
}

impl TeInstance {
    /// Tunnels of flow `f`.
    pub fn flow_tunnels(&self, f: FlowId) -> &[TunnelId] {
        &self.flows[f.0].tunnels
    }

    /// Whether tunnel `t` survives scenario `q` unaided (uses no failed
    /// link) — membership in `T_f^q`.
    pub fn tunnel_survives(&self, t: TunnelId, q: &FailureScenario) -> bool {
        self.tunnels[t.0].hops.iter().all(|h| !q.failed_links.contains(&h.link))
    }

    /// Whether tunnel `t` is *restorable* under a restoration vector: it
    /// crosses at least one failed link and every failed link it crosses
    /// has positive restored capacity (§3.3: `t ∈ Y_f^{z,q}`).
    pub fn tunnel_restorable(
        &self,
        t: TunnelId,
        q: &FailureScenario,
        restored_gbps: &dyn Fn(IpLinkId) -> f64,
    ) -> bool {
        let mut crosses_failed = false;
        for h in &self.tunnels[t.0].hops {
            if q.failed_links.contains(&h.link) {
                crosses_failed = true;
                if restored_gbps(h.link) <= 0.0 {
                    return false;
                }
            }
        }
        crosses_failed
    }

    /// Total demand in Gbps.
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand_gbps).sum()
    }

    /// All directed capacity keys that appear in some tunnel.
    pub fn used_dir_links(&self) -> Vec<DirLink> {
        let mut keys: Vec<DirLink> = self
            .tunnels
            .iter()
            .flat_map(|t| t.hops.iter().map(|h| DirLink(h.link, h.forward)))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Returns a clone with demands replaced from another traffic matrix
    /// (tunnels are demand-independent, so they are reused).
    pub fn with_demands(&self, tm: &TrafficMatrix) -> TeInstance {
        let mut inst = self.clone();
        for f in inst.flows.iter_mut() {
            f.demand_gbps = tm.demand(f.src, f.dst);
        }
        inst
    }

    /// Returns a clone with all demands scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> TeInstance {
        let mut inst = self.clone();
        for f in inst.flows.iter_mut() {
            f.demand_gbps *= factor;
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn small_instance() -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig::default());
        build_instance(
            &wan,
            &tms[0],
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn every_flow_gets_tunnels() {
        let inst = small_instance();
        assert_eq!(inst.flows.len(), 12 * 11);
        for f in &inst.flows {
            assert!(!f.tunnels.is_empty(), "flow {:?}->{:?} has no tunnels", f.src, f.dst);
            assert!(f.tunnels.len() >= 2, "need path diversity");
        }
    }

    #[test]
    fn tunnels_connect_endpoints_loop_free() {
        let inst = small_instance();
        for f in &inst.flows {
            for &tid in &f.tunnels {
                let t = &inst.tunnels[tid.0];
                let sites = hop_sites(&inst.wan, f.src, &t.hops);
                assert_eq!(*sites.last().unwrap(), f.dst);
                let mut uniq = sites.clone();
                uniq.sort();
                uniq.dedup();
                assert_eq!(uniq.len(), sites.len(), "tunnel has a loop");
            }
        }
    }

    #[test]
    fn residual_tunnel_exists_for_every_scenario() {
        let inst = small_instance();
        for q in &inst.scenarios {
            for f in &inst.flows {
                let survives = f.tunnels.iter().any(|&t| inst.tunnel_survives(t, q));
                assert!(
                    survives,
                    "flow {:?}->{:?} loses all tunnels under {:?}",
                    f.src, f.dst, q.cut_fibers
                );
            }
        }
    }

    #[test]
    fn restorable_classification() {
        let inst = small_instance();
        let q = &inst.scenarios[0];
        assert!(!q.failed_links.is_empty());
        let failed = q.failed_links[0];
        // With full restoration every affected tunnel is restorable...
        let all_restored = |_l: IpLinkId| 1000.0;
        // ...with zero restoration none is.
        let none_restored = |_l: IpLinkId| 0.0;
        let mut found_affected = false;
        for (i, t) in inst.tunnels.iter().enumerate() {
            if t.uses_link(failed) {
                found_affected = true;
                let tid = TunnelId(i);
                assert!(inst.tunnel_restorable(tid, q, &all_restored));
                assert!(!inst.tunnel_restorable(tid, q, &none_restored));
                assert!(!inst.tunnel_survives(tid, q));
            }
        }
        assert!(found_affected, "some tunnel should cross the failed link");
    }

    #[test]
    fn demand_swaps_preserve_tunnels() {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 2, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig::default());
        let inst = build_instance(&wan, &tms[0], failures.failure_scenarios(), &Default::default());
        let inst2 = inst.with_demands(&tms[1]);
        assert_eq!(inst.tunnels.len(), inst2.tunnels.len());
        assert_ne!(inst.total_demand(), inst2.total_demand());
        let scaled = inst.scaled(2.0);
        assert!((scaled.total_demand() - 2.0 * inst.total_demand()).abs() < 1e-6);
    }

    #[test]
    fn used_dir_links_are_deduped() {
        let inst = small_instance();
        let keys = inst.used_dir_links();
        let mut copy = keys.clone();
        copy.dedup();
        assert_eq!(copy.len(), keys.len());
        assert!(!keys.is_empty());
    }
}
