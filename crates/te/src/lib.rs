//! # arrow-te — traffic engineering substrate and algorithms
//!
//! The IP-layer half of the ARROW reproduction: tunnels and TE instances
//! (Table 1's standard input), the comparison schemes of §6 (ECMP, MaxFlow,
//! FFC-1/2, TeaVaR), the paper's restoration-aware two-phase ARROW TE
//! (Tables 2 & 3) plus ARROW-Naive, the intractable joint IP/optical
//! formulation's size accounting (Tables 7–9), and the playback/metric
//! engine computing availability, throughput, availability-guaranteed
//! throughput, and the router-port cost model (§6.1–§6.3).
//!
//! LotteryTicket *generation* (Algorithm 1) lives in `arrow-core`; this
//! crate consumes tickets as plain data ([`restoration::TicketSet`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod eval;
pub mod restoration;
pub mod schemes;
pub mod tunnels;

pub use alloc::TeAllocation;
pub use restoration::{MergeError, RestorationTicket, TicketSet, WeightedTicket};
pub use schemes::arrow::{Arrow, ArrowNaive, ArrowOnline, ArrowOutcome};
pub use schemes::ecmp::Ecmp;
pub use schemes::ffc::Ffc;
pub use schemes::joint::{binary_ticket_selection, joint_formulation_size, JointSize};
pub use schemes::maxflow::MaxFlow;
pub use schemes::teavar::TeaVar;
pub use schemes::{SchemeOutput, TeScheme};
pub use tunnels::{
    build_instance, DirLink, DirectedHop, Flow, FlowId, TeInstance, Tunnel, TunnelConfig, TunnelId,
};
