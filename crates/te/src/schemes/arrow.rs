//! ARROW: restoration-aware TE over LotteryTickets (§3.3, Tables 2 & 3).
//!
//! The two-phase LP design:
//!
//! * **Phase I** (Table 2) — takes every LotteryTicket `z` for every
//!   failure scenario `q` and solves one LP whose slack variables
//!   `Δ_e^{z,q}` measure how much each ticket's restored capacity
//!   `r_e^{z,q}` falls short of what the traffic wants. Constraint (6)
//!   bounds total slack per `(z, q)` by `M^{z,q} = α · Σ_e r_e^{z,q}`.
//! * **Post-processing** — per scenario, the *winning* ticket minimizes
//!   `Σ_e max(0, Δ_e^{z,q})` (the ReLU trick of §3.3).
//! * **Phase II** (Table 3) — re-solves with only the winning tickets'
//!   restored capacities and restorable tunnel sets, yielding the final
//!   allocation `{b_f, a_{f,t}}` and the restoration plan `Z*` installed on
//!   ROADMs.
//!
//! Constraint-size note: the paper's Table 2 ranges over every
//! `(f, q, z)`; most of those rows are duplicates because tickets with the
//! same *support* (set of links restored at all) induce the same
//! restorable-tunnel set `Y_f^{z,q}`. The builder deduplicates on support
//! — a pure formulation-size optimization with identical semantics.
//!
//! **ARROW-Naive** (§6) skips Phase I: it uses a single optical-layer-
//! optimal restoration candidate per scenario and solves Phase II with it.

use super::{base_model, extract_alloc, SchemeOutput, TeScheme};
use crate::restoration::{RestorationTicket, TicketSet};
use crate::tunnels::{TeInstance, TunnelId};
use arrow_lp::{LinExpr, Sense, SolverConfig, VarId};

/// The ARROW scheme (two-phase, LotteryTicket-driven).
#[derive(Debug, Clone)]
pub struct Arrow {
    /// LotteryTickets per scenario (from `arrow-core`'s Algorithm 1).
    pub tickets: TicketSet,
    /// Slack budget fraction α in `M^{z,q} = α Σ_e r_e^{z,q}` (paper
    /// evaluates α ∈ {0.2, 0.1, 0.05}).
    pub alpha: f64,
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl Arrow {
    /// ARROW with default α = 0.1.
    pub fn new(tickets: TicketSet) -> Self {
        Arrow { tickets, alpha: 0.1, solver: SolverConfig::default() }
    }
}

/// Detailed ARROW output: allocation plus the winning ticket per scenario.
#[derive(Debug, Clone)]
pub struct ArrowOutcome {
    /// The scheme output (allocation + restoration plan).
    pub output: SchemeOutput,
    /// Winning ticket index per scenario (into `tickets.per_scenario[q]`).
    pub winning: Vec<usize>,
    /// Phase I LP solve seconds.
    pub phase1_seconds: f64,
    /// Phase II LP solve seconds.
    pub phase2_seconds: f64,
}

/// Restorable tunnel set for flow tunnels under `(q, ticket)`.
fn restorable_tunnels(
    inst: &TeInstance,
    q_idx: usize,
    ticket: &RestorationTicket,
) -> Vec<TunnelId> {
    let scen = &inst.scenarios[q_idx];
    let lookup = |l| ticket.restored_gbps(l);
    (0..inst.tunnels.len())
        .map(TunnelId)
        .filter(|&t| inst.tunnel_restorable(t, scen, &lookup))
        .collect()
}

impl Arrow {
    /// Phase I: selects the winning LotteryTicket per scenario.
    pub fn phase1(&self, inst: &TeInstance) -> (Vec<usize>, f64) {
        assert_eq!(
            self.tickets.per_scenario.len(),
            inst.scenarios.len(),
            "ticket set must align with the scenario list"
        );
        let mut base = base_model(inst);
        // Slack variables per (q, z, failed link e).
        let mut slack_vars: Vec<Vec<Vec<(usize, VarId)>>> = Vec::new(); // [q][z] -> (link, Δ)
        for (qi, scen) in inst.scenarios.iter().enumerate() {
            let mut per_ticket = Vec::new();
            for (zi, ticket) in self.tickets.for_scenario(qi).iter().enumerate() {
                // Restorable tunnels for this (q, z).
                let y: Vec<TunnelId> = restorable_tunnels(inst, qi, ticket);
                // Constraint (4): residual + restorable tunnels cover b_f.
                // Deduplicated by ticket support (same support => same Y).
                let is_first_with_support = self.tickets.for_scenario(qi)[..zi]
                    .iter()
                    .all(|prev| prev.support() != ticket.support());
                if is_first_with_support {
                    for (fi, flow) in inst.flows.iter().enumerate() {
                        // Skip flows untouched by this scenario: constraint
                        // (4) collapses to constraint (1).
                        let affected = flow
                            .tunnels
                            .iter()
                            .any(|&t| !inst.tunnel_survives(t, scen));
                        if !affected {
                            continue;
                        }
                        let covered: Vec<_> = flow
                            .tunnels
                            .iter()
                            .filter(|&&t| inst.tunnel_survives(t, scen) || y.contains(&t))
                            .collect();
                        if covered.is_empty() {
                            // Nothing survives or restores: the flow is
                            // best-effort under this scenario (the loss is
                            // accounted during playback, not by zeroing b).
                            continue;
                        }
                        let mut e = LinExpr::term(base.b[fi], -1.0);
                        for &&t in &covered {
                            e.add_term(base.a[t.0], 1.0);
                        }
                        base.model.add_con(e, Sense::Ge, 0.0, format!("arw4_f{fi}_q{qi}_z{zi}"));
                    }
                }
                // Constraints (5)+(6): restored capacity with slack. Like
                // healthy capacity, restored capacity is per direction.
                let mut slacks = Vec::new();
                let mut m_bound = LinExpr::new();
                for &(link, r) in &ticket.restored {
                    for fwd in [true, false] {
                        // Load of restorable tunnels crossing (link, dir).
                        let users: Vec<VarId> = y
                            .iter()
                            .filter(|&&t| {
                                inst.tunnels[t.0]
                                    .hops
                                    .iter()
                                    .any(|h| h.link == link && h.forward == fwd)
                            })
                            .map(|&t| base.a[t.0])
                            .collect();
                        if users.is_empty() {
                            continue;
                        }
                        // Δ ≥ 0 measures how far traffic *wants* to exceed
                        // the ticket's restored capacity; a tiny objective
                        // penalty (added below) pins it to that minimum so
                        // the post-processing comparison is meaningful.
                        let delta = base.model.add_var(
                            0.0,
                            arrow_lp::INF,
                            format!("d_e{}_{fwd}_q{qi}_z{zi}", link.0),
                        );
                        let mut e = LinExpr::sum_vars(users);
                        e.add_term(delta, -1.0);
                        base.model
                            .add_con(e, Sense::Le, r, format!("arw5_e{}_{fwd}_q{qi}_z{zi}", link.0));
                        m_bound.add_term(delta, 1.0);
                        slacks.push((link.0, delta));
                    }
                }
                if !slacks.is_empty() {
                    let m = self.alpha * ticket.total_gbps();
                    base.model.add_con(m_bound, Sense::Le, m, format!("arw6_q{qi}_z{zi}"));
                }
                per_ticket.push(slacks);
            }
            slack_vars.push(per_ticket);
        }
        // Objective: max Σ b_f minus a tiny slack penalty that pins each
        // Δ to exactly max(0, load − r) without perturbing throughput.
        let mut obj = LinExpr::sum_vars(base.b.iter().copied());
        for per_ticket in &slack_vars {
            for slacks in per_ticket {
                for &(_, v) in slacks {
                    obj.add_term(v, -1e-4);
                }
            }
        }
        base.model.set_objective(obj, arrow_lp::Objective::Maximize);
        let sol = arrow_lp::solve(&base.model, &self.solver);
        assert!(sol.status.is_usable(), "ARROW Phase I LP failed: {:?}", sol.status);
        let _ = &slack_vars; // Δ variables exist per Table 2; the scoring
                             // below recomputes their minimal values.
        // Winning ticket per scenario: the paper's criterion is
        // `min_z Σ_e max(0, Δ_e^{z,q})`. The LP leaves Δ degenerate when
        // capacity is plentiful (many exact ties), so the score is
        // evaluated directly from the Phase-I traffic: for each ticket,
        //   stranded = allocation on affected tunnels the ticket fails to
        //              restore (they stay dark), plus
        //   overflow = max(0, restorable-tunnel load − r_e) per direction
        //              (the minimal feasible Δ).
        // Ties still break toward the ticket restoring the most capacity.
        let winning: Vec<usize> = inst
            .scenarios
            .iter()
            .enumerate()
            .map(|(qi, scen)| {
                let tickets = self.tickets.for_scenario(qi);
                let affected: Vec<TunnelId> = (0..inst.tunnels.len())
                    .map(TunnelId)
                    .filter(|&t| !inst.tunnel_survives(t, scen))
                    .collect();
                let score = |ticket: &RestorationTicket| -> i64 {
                    let y: Vec<TunnelId> = affected
                        .iter()
                        .copied()
                        .filter(|&t| {
                            inst.tunnel_restorable(t, scen, &|l| ticket.restored_gbps(l))
                        })
                        .collect();
                    let stranded: f64 = affected
                        .iter()
                        .filter(|t| !y.contains(t))
                        .map(|&t| sol.value(base.a[t.0]).max(0.0))
                        .sum();
                    let mut overflow = 0.0f64;
                    for &(link, r) in &ticket.restored {
                        for fwd in [true, false] {
                            let load: f64 = y
                                .iter()
                                .filter(|&&t| {
                                    inst.tunnels[t.0]
                                        .hops
                                        .iter()
                                        .any(|h| h.link == link && h.forward == fwd)
                                })
                                .map(|&t| sol.value(base.a[t.0]).max(0.0))
                                .sum();
                            overflow += (load - r).max(0.0);
                        }
                    }
                    ((stranded + overflow) * 100.0).round() as i64
                };
                tickets
                    .iter()
                    .enumerate()
                    .min_by(|(za, ta), (zb, tb)| {
                        (score(ta), -ta.total_gbps())
                            .partial_cmp(&(score(tb), -tb.total_gbps()))
                            .unwrap()
                            .then(za.cmp(zb))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        (winning, sol.stats.solve_seconds)
    }

    /// Phase II: final allocation under the winning tickets.
    pub fn phase2(
        &self,
        inst: &TeInstance,
        winning: &[usize],
    ) -> (SchemeOutput, f64) {
        let mut base = base_model(inst);
        let mut plan = Vec::new();
        for (qi, scen) in inst.scenarios.iter().enumerate() {
            let ticket = &self.tickets.for_scenario(qi)[winning[qi]];
            plan.push(ticket.clone());
            let y = restorable_tunnels(inst, qi, ticket);
            // Constraint (10): residual + winning restorable tunnels.
            for (fi, flow) in inst.flows.iter().enumerate() {
                let affected =
                    flow.tunnels.iter().any(|&t| !inst.tunnel_survives(t, scen));
                if !affected {
                    continue;
                }
                let covered: Vec<_> = flow
                    .tunnels
                    .iter()
                    .filter(|&&t| inst.tunnel_survives(t, scen) || y.contains(&t))
                    .collect();
                if covered.is_empty() {
                    continue; // best-effort flow under this scenario
                }
                let mut e = LinExpr::term(base.b[fi], -1.0);
                for &&t in &covered {
                    e.add_term(base.a[t.0], 1.0);
                }
                base.model.add_con(e, Sense::Ge, 0.0, format!("arw10_f{fi}_q{qi}"));
            }
            // Constraint (11): restorable-tunnel load ≤ winning r (hard,
            // per direction like healthy capacity).
            for &(link, r) in &ticket.restored {
                for fwd in [true, false] {
                    let users: Vec<VarId> = y
                        .iter()
                        .filter(|&&t| {
                            inst.tunnels[t.0]
                                .hops
                                .iter()
                                .any(|h| h.link == link && h.forward == fwd)
                        })
                        .map(|&t| base.a[t.0])
                        .collect();
                    if users.is_empty() {
                        continue;
                    }
                    base.model.add_con(
                        LinExpr::sum_vars(users),
                        Sense::Le,
                        r,
                        format!("arw11_e{}_{fwd}_q{qi}", link.0),
                    );
                }
            }
        }
        let sol = arrow_lp::solve(&base.model, &self.solver);
        assert!(sol.status.is_usable(), "ARROW Phase II LP failed: {:?}", sol.status);
        (
            SchemeOutput {
                alloc: extract_alloc(inst, &base, &sol, "ARROW"),
                restoration: Some(plan),
            },
            sol.stats.solve_seconds,
        )
    }

    /// Full two-phase solve with timing detail.
    pub fn solve_detailed(&self, inst: &TeInstance) -> ArrowOutcome {
        let (winning, phase1_seconds) = self.phase1(inst);
        let (mut output, phase2_seconds) = self.phase2(inst, &winning);
        output.alloc.solve_seconds = phase1_seconds + phase2_seconds;
        ArrowOutcome { output, winning, phase1_seconds, phase2_seconds }
    }
}

impl TeScheme for Arrow {
    fn name(&self) -> String {
        "ARROW".into()
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        self.solve_detailed(inst).output
    }
}

/// ARROW-Naive: Phase II with one optical-layer-optimal ticket (§6).
#[derive(Debug, Clone)]
pub struct ArrowNaive {
    /// The single restoration candidate per scenario (from the RWA).
    pub tickets: Vec<RestorationTicket>,
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl TeScheme for ArrowNaive {
    fn name(&self) -> String {
        "ARROW-Naive".into()
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        let arrow = Arrow {
            tickets: TicketSet {
                per_scenario: self.tickets.iter().map(|t| vec![t.clone()]).collect(),
            },
            alpha: 0.1,
            solver: self.solver.clone(),
        };
        let winning = vec![0; inst.scenarios.len()];
        let (mut output, secs) = arrow.phase2(inst, &winning);
        output.alloc.scheme = self.name();
        output.alloc.solve_seconds = secs;
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::ffc::Ffc;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn instance(scale: f64, max_scenarios: usize) -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(
            &wan,
            &FailureConfig { max_scenarios, ..Default::default() },
        );
        build_instance(
            &wan,
            &tms[0].scaled(scale),
            failures.failure_scenarios(),
            &TunnelConfig { tunnels_per_flow: 4, prefer_fiber_disjoint: true, ..Default::default() },
        )
    }

    /// Tickets granting full restoration of every failed link.
    fn full_tickets(inst: &TeInstance) -> TicketSet {
        TicketSet {
            per_scenario: inst
                .scenarios
                .iter()
                .map(|s| {
                    vec![RestorationTicket {
                        restored: s
                            .failed_links
                            .iter()
                            .map(|&l| (l, inst.wan.link(l).capacity_gbps))
                            .collect(),
                    }]
                })
                .collect(),
        }
    }

    /// Tickets restoring nothing.
    fn empty_tickets(inst: &TeInstance) -> TicketSet {
        TicketSet::none(inst.scenarios.len())
    }

    #[test]
    fn full_restoration_matches_maxflow() {
        // If every failure is fully restorable, failures are invisible and
        // ARROW should admit exactly what the failure-oblivious LP admits.
        let inst = instance(4.0, 8);
        let mf = super::super::maxflow::MaxFlow::default().solve(&inst);
        let arrow = Arrow::new(full_tickets(&inst)).solve(&inst);
        let (t_mf, t_ar) = (mf.alloc.throughput(&inst), arrow.alloc.throughput(&inst));
        assert!(
            (t_mf - t_ar).abs() < 2e-3,
            "full restoration should equal MaxFlow: {t_ar} vs {t_mf}"
        );
    }

    #[test]
    fn no_restoration_sandwiched_by_ffc_and_maxflow() {
        let inst = instance(4.0, 8);
        let arrow = Arrow::new(empty_tickets(&inst)).solve(&inst);
        let mf = super::super::maxflow::MaxFlow::default().solve(&inst);
        let t = arrow.alloc.throughput(&inst);
        assert!(t <= mf.alloc.throughput(&inst) + 1e-6);
        // With zero tickets ARROW still protects the enumerated scenarios,
        // so it cannot beat MaxFlow but must stay positive.
        assert!(t > 0.0);
    }

    #[test]
    fn more_restoration_never_hurts() {
        let inst = instance(4.0, 8);
        let none = Arrow::new(empty_tickets(&inst)).solve(&inst).alloc.throughput(&inst);
        let full = Arrow::new(full_tickets(&inst)).solve(&inst).alloc.throughput(&inst);
        assert!(full >= none - 1e-6, "full {full} < none {none}");
    }

    #[test]
    fn winning_ticket_tracks_demand() {
        // Reconstruction of Fig. 7: one scenario, two failed links, three
        // tickets; the demand profile makes ticket "(100, 400)" the winner.
        let inst = instance(1.0, 4);
        // Find a scenario with ≥1 failed link to attach tickets to.
        let q0 = &inst.scenarios[0];
        assert!(!q0.failed_links.is_empty());
        let link = q0.failed_links[0];
        let cap = inst.wan.link(link).capacity_gbps;
        let mut per_scenario: Vec<Vec<RestorationTicket>> = inst
            .scenarios
            .iter()
            .map(|s| {
                vec![RestorationTicket {
                    restored: s.failed_links.iter().map(|&l| (l, 0.0)).collect(),
                }]
            })
            .collect();
        // Scenario 0 gets two candidates: nothing vs full for `link`.
        per_scenario[0] = vec![
            RestorationTicket { restored: vec![(link, 0.0)] },
            RestorationTicket { restored: vec![(link, cap)] },
        ];
        let arrow = Arrow::new(TicketSet { per_scenario });
        let outcome = arrow.solve_detailed(&inst.scaled(4.0));
        // The full-restoration candidate must win scenario 0.
        assert_eq!(outcome.winning[0], 1, "full-restoration ticket should win");
    }

    #[test]
    fn naive_equals_arrow_with_single_ticket() {
        let inst = instance(3.0, 6);
        let tickets: Vec<RestorationTicket> = inst
            .scenarios
            .iter()
            .map(|s| RestorationTicket {
                restored: s
                    .failed_links
                    .iter()
                    .map(|&l| (l, 0.5 * inst.wan.link(l).capacity_gbps))
                    .collect(),
            })
            .collect();
        let naive = ArrowNaive { tickets: tickets.clone(), solver: Default::default() }
            .solve(&inst);
        let arrow = Arrow::new(TicketSet {
            per_scenario: tickets.into_iter().map(|t| vec![t]).collect(),
        })
        .solve(&inst);
        assert!(
            (naive.alloc.throughput(&inst) - arrow.alloc.throughput(&inst)).abs() < 1e-4,
            "single-ticket ARROW must equal ARROW-Naive"
        );
    }

    #[test]
    fn arrow_beats_ffc_under_load() {
        // The headline effect: restoration awareness admits more demand
        // than failure-aware TE that treats cuts as fatal.
        let inst = instance(5.0, 8);
        let arrow = Arrow::new(full_tickets(&inst)).solve(&inst);
        let ffc = Ffc::k1().solve(&inst);
        let (t_a, t_f) = (arrow.alloc.throughput(&inst), ffc.alloc.throughput(&inst));
        assert!(t_a > t_f, "ARROW {t_a} should beat FFC-1 {t_f} under load");
    }

    #[test]
    fn restoration_plan_is_returned_per_scenario() {
        let inst = instance(2.0, 5);
        let out = Arrow::new(full_tickets(&inst)).solve(&inst);
        let plan = out.restoration.expect("ARROW returns a plan");
        assert_eq!(plan.len(), inst.scenarios.len());
        for (q, ticket) in inst.scenarios.iter().zip(&plan) {
            for &(l, _) in &ticket.restored {
                assert!(q.failed_links.contains(&l), "plan restores a non-failed link");
            }
        }
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_ticket_set_panics() {
        let inst = instance(1.0, 5);
        let bad = TicketSet::none(inst.scenarios.len() + 1);
        let _ = Arrow::new(bad).phase1(&inst);
    }

    #[test]
    fn ticket_support_dedup_is_semantically_safe() {
        // Two tickets with identical support but different capacities must
        // both be selectable; dedup only merges constraint (4) rows.
        let inst = instance(4.0, 4);
        let q0 = &inst.scenarios[0];
        let link = q0.failed_links[0];
        let cap = inst.wan.link(link).capacity_gbps;
        let mut per_scenario: Vec<Vec<RestorationTicket>> = inst
            .scenarios
            .iter()
            .map(|_| vec![RestorationTicket::empty()])
            .collect();
        per_scenario[0] = vec![
            RestorationTicket { restored: vec![(link, 0.25 * cap)] },
            RestorationTicket { restored: vec![(link, cap)] }, // same support
        ];
        let outcome = Arrow::new(TicketSet { per_scenario }).solve_detailed(&inst);
        assert_eq!(outcome.winning[0], 1, "larger-capacity ticket should win");
    }
}
