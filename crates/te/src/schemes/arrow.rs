//! ARROW: restoration-aware TE over LotteryTickets (§3.3, Tables 2 & 3).
//!
//! The two-phase LP design:
//!
//! * **Phase I** (Table 2) — takes every LotteryTicket `z` for every
//!   failure scenario `q` and solves one LP whose slack variables
//!   `Δ_e^{z,q}` measure how much each ticket's restored capacity
//!   `r_e^{z,q}` falls short of what the traffic wants. Constraint (6)
//!   bounds total slack per `(z, q)` by `M^{z,q} = α · Σ_e r_e^{z,q}`.
//! * **Post-processing** — per scenario, the *winning* ticket minimizes
//!   `Σ_e max(0, Δ_e^{z,q})` (the ReLU trick of §3.3).
//! * **Phase II** (Table 3) — re-solves with only the winning tickets'
//!   restored capacities and restorable tunnel sets, yielding the final
//!   allocation `{b_f, a_{f,t}}` and the restoration plan `Z*` installed on
//!   ROADMs.
//!
//! Constraint-size note: the paper's Table 2 ranges over every
//! `(f, q, z)`; most of those rows are duplicates because tickets with the
//! same *support* (set of links restored at all) induce the same
//! restorable-tunnel set `Y_f^{z,q}`. The builder deduplicates on support
//! — a pure formulation-size optimization with identical semantics.
//!
//! **ARROW-Naive** (§6) skips Phase I: it uses a single optical-layer-
//! optimal restoration candidate per scenario and solves Phase II with it.

use super::{base_model, extract_alloc, BaseModel, SchemeOutput, TeScheme};
use crate::restoration::{RestorationTicket, TicketSet};
use crate::tunnels::{TeInstance, TunnelId};
use arrow_lp::{
    ConId, LinExpr, PrimalDual, Sense, Solution, SolveStats, SolverConfig, VarId, WarmStart,
};

/// The ARROW scheme (two-phase, LotteryTicket-driven).
#[derive(Debug, Clone)]
pub struct Arrow {
    /// LotteryTickets per scenario (from `arrow-core`'s Algorithm 1).
    pub tickets: TicketSet,
    /// Slack budget fraction α in `M^{z,q} = α Σ_e r_e^{z,q}` (paper
    /// evaluates α ∈ {0.2, 0.1, 0.05}).
    pub alpha: f64,
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl Arrow {
    /// ARROW with default α = 0.1.
    pub fn new(tickets: TicketSet) -> Self {
        Arrow { tickets, alpha: 0.1, solver: SolverConfig::default() }
    }
}

/// Detailed ARROW output: allocation plus the winning ticket per scenario.
#[derive(Debug, Clone)]
pub struct ArrowOutcome {
    /// The scheme output (allocation + restoration plan).
    pub output: SchemeOutput,
    /// Winning ticket index per scenario (into `tickets.per_scenario[q]`).
    pub winning: Vec<usize>,
    /// Phase I LP solve seconds.
    pub phase1_seconds: f64,
    /// Phase II LP solve seconds.
    pub phase2_seconds: f64,
    /// Phase I solver observability (size, iterations, backend, warm event).
    pub phase1_stats: SolveStats,
    /// Phase II solver observability.
    pub phase2_stats: SolveStats,
}

/// Restorable tunnel set for flow tunnels under `(q, ticket)`.
fn restorable_tunnels(
    inst: &TeInstance,
    q_idx: usize,
    ticket: &RestorationTicket,
) -> Vec<TunnelId> {
    let scen = &inst.scenarios[q_idx];
    let lookup = |l| ticket.restored_gbps(l);
    (0..inst.tunnels.len())
        .map(TunnelId)
        .filter(|&t| inst.tunnel_restorable(t, scen, &lookup))
        .collect()
}

/// The Phase I LP skeleton plus the row handles needed to patch it in
/// place between consecutive online solves.
///
/// Everything about the model except the demand bounds on `b_f` and the
/// restored-capacity right-hand sides is independent of the traffic
/// matrix, so a diurnal sweep can build this once and re-solve it per
/// interval (see [`ArrowOnline`]).
#[derive(Debug, Clone)]
pub(crate) struct Phase1Model {
    /// The shared skeleton plus all Phase-I rows and slack variables.
    pub base: BaseModel,
    /// `arw5` rows: `(row, qi, zi, index into ticket.restored)`. The rhs
    /// is the ticket's restored capacity `r_e^{z,q}` for that entry (one
    /// row per used direction, both share the same `r`).
    r_rows: Vec<(ConId, usize, usize, usize)>,
    /// `arw6` budget rows: `(row, qi, zi)`; rhs is `α · Σ_e r_e^{z,q}`.
    m_rows: Vec<(ConId, usize, usize)>,
}

impl Arrow {
    /// Phase I: selects the winning LotteryTicket per scenario.
    pub fn phase1(&self, inst: &TeInstance) -> (Vec<usize>, f64) {
        let p1 = self.build_phase1(inst);
        let sol = arrow_lp::solve(&p1.base.model, &self.solver);
        assert!(sol.status.is_usable(), "ARROW Phase I LP failed: {:?}", sol.status);
        (self.select_winning(inst, &p1.base, &sol), sol.stats.solve_seconds)
    }

    /// Builds the Phase I model (Table 2) without solving it.
    pub(crate) fn build_phase1(&self, inst: &TeInstance) -> Phase1Model {
        assert_eq!(
            self.tickets.per_scenario.len(),
            inst.scenarios.len(),
            "ticket set must align with the scenario list"
        );
        let mut base = base_model(inst);
        let mut r_rows = Vec::new();
        let mut m_rows = Vec::new();
        // Slack variables per (q, z, failed link e).
        let mut slack_vars: Vec<Vec<Vec<(usize, VarId)>>> = Vec::new(); // [q][z] -> (link, Δ)
        for (qi, scen) in inst.scenarios.iter().enumerate() {
            let mut per_ticket = Vec::new();
            for (zi, ticket) in self.tickets.for_scenario(qi).iter().enumerate() {
                // Restorable tunnels for this (q, z).
                let y: Vec<TunnelId> = restorable_tunnels(inst, qi, ticket);
                // Constraint (4): residual + restorable tunnels cover b_f.
                // Deduplicated by ticket support (same support => same Y).
                let is_first_with_support = self.tickets.for_scenario(qi)[..zi]
                    .iter()
                    .all(|prev| prev.support() != ticket.support());
                if is_first_with_support {
                    for (fi, flow) in inst.flows.iter().enumerate() {
                        // Skip flows untouched by this scenario: constraint
                        // (4) collapses to constraint (1).
                        let affected = flow.tunnels.iter().any(|&t| !inst.tunnel_survives(t, scen));
                        if !affected {
                            continue;
                        }
                        let covered: Vec<_> = flow
                            .tunnels
                            .iter()
                            .filter(|&&t| inst.tunnel_survives(t, scen) || y.contains(&t))
                            .collect();
                        if covered.is_empty() {
                            // Nothing survives or restores: the flow is
                            // best-effort under this scenario (the loss is
                            // accounted during playback, not by zeroing b).
                            continue;
                        }
                        let mut e = LinExpr::term(base.b[fi], -1.0);
                        for &&t in &covered {
                            e.add_term(base.a[t.0], 1.0);
                        }
                        base.model.add_con(e, Sense::Ge, 0.0, format!("arw4_f{fi}_q{qi}_z{zi}"));
                    }
                }
                // Constraints (5)+(6): restored capacity with slack. Like
                // healthy capacity, restored capacity is per direction.
                let mut slacks = Vec::new();
                let mut m_bound = LinExpr::new();
                for (ri, &(link, r)) in ticket.restored.iter().enumerate() {
                    for fwd in [true, false] {
                        // Load of restorable tunnels crossing (link, dir).
                        let users: Vec<VarId> = y
                            .iter()
                            .filter(|&&t| {
                                inst.tunnels[t.0]
                                    .hops
                                    .iter()
                                    .any(|h| h.link == link && h.forward == fwd)
                            })
                            .map(|&t| base.a[t.0])
                            .collect();
                        if users.is_empty() {
                            continue;
                        }
                        // Δ ≥ 0 measures how far traffic *wants* to exceed
                        // the ticket's restored capacity; a tiny objective
                        // penalty (added below) pins it to that minimum so
                        // the post-processing comparison is meaningful.
                        let delta = base.model.add_var(
                            0.0,
                            arrow_lp::INF,
                            format!("d_e{}_{fwd}_q{qi}_z{zi}", link.0),
                        );
                        let mut e = LinExpr::sum_vars(users);
                        e.add_term(delta, -1.0);
                        let con = base.model.add_con(
                            e,
                            Sense::Le,
                            r,
                            format!("arw5_e{}_{fwd}_q{qi}_z{zi}", link.0),
                        );
                        r_rows.push((con, qi, zi, ri));
                        m_bound.add_term(delta, 1.0);
                        slacks.push((link.0, delta));
                    }
                }
                if !slacks.is_empty() {
                    let m = self.alpha * ticket.total_gbps();
                    let con =
                        base.model.add_con(m_bound, Sense::Le, m, format!("arw6_q{qi}_z{zi}"));
                    m_rows.push((con, qi, zi));
                }
                per_ticket.push(slacks);
            }
            slack_vars.push(per_ticket);
        }
        // Objective: max Σ b_f minus a tiny slack penalty that pins each
        // Δ to exactly max(0, load − r) without perturbing throughput.
        let mut obj = LinExpr::sum_vars(base.b.iter().copied());
        for per_ticket in &slack_vars {
            for slacks in per_ticket {
                for &(_, v) in slacks {
                    obj.add_term(v, -1e-4);
                }
            }
        }
        base.model.set_objective(obj, arrow_lp::Objective::Maximize);
        Phase1Model { base, r_rows, m_rows }
    }

    /// Post-processing on a Phase I solution: the winning ticket per
    /// scenario.
    pub(crate) fn select_winning(
        &self,
        inst: &TeInstance,
        base: &BaseModel,
        sol: &Solution,
    ) -> Vec<usize> {
        // Winning ticket per scenario: the paper's criterion is
        // `min_z Σ_e max(0, Δ_e^{z,q})`. The LP leaves Δ degenerate when
        // capacity is plentiful (many exact ties), so the score is
        // evaluated directly from the Phase-I traffic: for each ticket,
        //   stranded = allocation on affected tunnels the ticket fails to
        //              restore (they stay dark), plus
        //   overflow = max(0, restorable-tunnel load − r_e) per direction
        //              (the minimal feasible Δ).
        // Ties still break toward the ticket restoring the most capacity.
        let winning: Vec<usize> = inst
            .scenarios
            .iter()
            .enumerate()
            .map(|(qi, scen)| {
                let tickets = self.tickets.for_scenario(qi);
                let affected: Vec<TunnelId> = (0..inst.tunnels.len())
                    .map(TunnelId)
                    .filter(|&t| !inst.tunnel_survives(t, scen))
                    .collect();
                let score = |ticket: &RestorationTicket| -> i64 {
                    let y: Vec<TunnelId> = affected
                        .iter()
                        .copied()
                        .filter(|&t| inst.tunnel_restorable(t, scen, &|l| ticket.restored_gbps(l)))
                        .collect();
                    let stranded: f64 = affected
                        .iter()
                        .filter(|t| !y.contains(t))
                        .map(|&t| sol.value(base.a[t.0]).max(0.0))
                        .sum();
                    let mut overflow = 0.0f64;
                    for &(link, r) in &ticket.restored {
                        for fwd in [true, false] {
                            let load: f64 = y
                                .iter()
                                .filter(|&&t| {
                                    inst.tunnels[t.0]
                                        .hops
                                        .iter()
                                        .any(|h| h.link == link && h.forward == fwd)
                                })
                                .map(|&t| sol.value(base.a[t.0]).max(0.0))
                                .sum();
                            overflow += (load - r).max(0.0);
                        }
                    }
                    ((stranded + overflow) * 100.0).round() as i64
                };
                // Total order even for pathological (NaN) capacities:
                // integer score ascending, then restored capacity
                // descending via total_cmp, then first index.
                tickets
                    .iter()
                    .enumerate()
                    .min_by(|(za, ta), (zb, tb)| {
                        score(ta)
                            .cmp(&score(tb))
                            .then(tb.total_gbps().total_cmp(&ta.total_gbps()))
                            .then(za.cmp(zb))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        winning
    }

    /// Phase II: final allocation under the winning tickets.
    pub fn phase2(&self, inst: &TeInstance, winning: &[usize]) -> (SchemeOutput, f64) {
        let (base, plan) = self.build_phase2(inst, winning);
        let sol = arrow_lp::solve(&base.model, &self.solver);
        assert!(sol.status.is_usable(), "ARROW Phase II LP failed: {:?}", sol.status);
        (
            SchemeOutput {
                alloc: extract_alloc(inst, &base, &sol, "ARROW"),
                restoration: Some(plan),
            },
            sol.stats.solve_seconds,
        )
    }

    /// Builds the Phase II model (Table 3) without solving it.
    pub(crate) fn build_phase2(
        &self,
        inst: &TeInstance,
        winning: &[usize],
    ) -> (BaseModel, Vec<RestorationTicket>) {
        let mut base = base_model(inst);
        let mut plan = Vec::new();
        for (qi, scen) in inst.scenarios.iter().enumerate() {
            let ticket = &self.tickets.for_scenario(qi)[winning[qi]];
            plan.push(ticket.clone());
            let y = restorable_tunnels(inst, qi, ticket);
            // Constraint (10): residual + winning restorable tunnels.
            for (fi, flow) in inst.flows.iter().enumerate() {
                let affected = flow.tunnels.iter().any(|&t| !inst.tunnel_survives(t, scen));
                if !affected {
                    continue;
                }
                let covered: Vec<_> = flow
                    .tunnels
                    .iter()
                    .filter(|&&t| inst.tunnel_survives(t, scen) || y.contains(&t))
                    .collect();
                if covered.is_empty() {
                    continue; // best-effort flow under this scenario
                }
                let mut e = LinExpr::term(base.b[fi], -1.0);
                for &&t in &covered {
                    e.add_term(base.a[t.0], 1.0);
                }
                base.model.add_con(e, Sense::Ge, 0.0, format!("arw10_f{fi}_q{qi}"));
            }
            // Constraint (11): restorable-tunnel load ≤ winning r (hard,
            // per direction like healthy capacity).
            for &(link, r) in &ticket.restored {
                for fwd in [true, false] {
                    let users: Vec<VarId> = y
                        .iter()
                        .filter(|&&t| {
                            inst.tunnels[t.0]
                                .hops
                                .iter()
                                .any(|h| h.link == link && h.forward == fwd)
                        })
                        .map(|&t| base.a[t.0])
                        .collect();
                    if users.is_empty() {
                        continue;
                    }
                    base.model.add_con(
                        LinExpr::sum_vars(users),
                        Sense::Le,
                        r,
                        format!("arw11_e{}_{fwd}_q{qi}", link.0),
                    );
                }
            }
        }
        (base, plan)
    }

    /// Full two-phase solve with timing and solver-observability detail.
    pub fn solve_detailed(&self, inst: &TeInstance) -> ArrowOutcome {
        let (p1, sol1) = {
            let _span = arrow_obs::span!(
                "te.phase1",
                "flows" => inst.flows.len(),
                "scenarios" => inst.scenarios.len(),
                "warm" => false,
            );
            let p1 = self.build_phase1(inst);
            let sol1 = arrow_lp::solve(&p1.base.model, &self.solver);
            (p1, sol1)
        };
        assert!(sol1.status.is_usable(), "ARROW Phase I LP failed: {:?}", sol1.status);
        let winning = {
            let _span = arrow_obs::span!("te.select", "scenarios" => inst.scenarios.len());
            self.select_winning(inst, &p1.base, &sol1)
        };
        let (base2, plan, sol2) = {
            let _span = arrow_obs::span!(
                "te.phase2",
                "flows" => inst.flows.len(),
                "cached" => false,
            );
            let (base2, plan) = self.build_phase2(inst, &winning);
            let sol2 = arrow_lp::solve(&base2.model, &self.solver);
            (base2, plan, sol2)
        };
        assert!(sol2.status.is_usable(), "ARROW Phase II LP failed: {:?}", sol2.status);
        let mut output = SchemeOutput {
            alloc: extract_alloc(inst, &base2, &sol2, "ARROW"),
            restoration: Some(plan),
        };
        output.alloc.solve_seconds = sol1.stats.solve_seconds + sol2.stats.solve_seconds;
        ArrowOutcome {
            output,
            winning,
            phase1_seconds: sol1.stats.solve_seconds,
            phase2_seconds: sol2.stats.solve_seconds,
            phase1_stats: sol1.stats,
            phase2_stats: sol2.stats,
        }
    }
}

impl TeScheme for Arrow {
    fn name(&self) -> String {
        "ARROW".into()
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        self.solve_detailed(inst).output
    }
}

/// Incremental two-phase solver for consecutive online intervals.
///
/// The online stage runs every TE epoch against the same topology,
/// tunnels, scenarios, and tickets — only the traffic matrix changes. This
/// wrapper exploits that:
///
/// * the Phase I constraint skeleton is built **once** and demand enters
///   it only through the `b_f` upper bounds, which are patched in place;
/// * each solve warm-starts from the previous interval's optimum (simplex
///   basis and/or primal–dual point, whichever the backend consumes);
/// * the Phase II model is cached keyed on the winning-ticket vector and
///   re-solved warm when the winners repeat; a fresh Phase II model is
///   seeded from the Phase I allocation (its `b`/`a` variables are the
///   shared prefix of both models).
///
/// Changing the instance *structure* (flows, tunnels, scenarios) requires
/// a new `ArrowOnline`; [`ArrowOnline::solve`] asserts the shape matches.
#[derive(Debug, Clone)]
pub struct ArrowOnline {
    arrow: Arrow,
    phase1: Phase1Model,
    phase1_warm: Option<WarmStart>,
    phase2: Option<Phase2Cache>,
    /// `(flows, tunnels, scenarios)` of the instance the skeleton was
    /// built from.
    shape: (usize, usize, usize),
}

/// Cached Phase II state, valid while the winning tickets repeat.
#[derive(Debug, Clone)]
struct Phase2Cache {
    winning: Vec<usize>,
    base: BaseModel,
    plan: Vec<RestorationTicket>,
    warm: Option<WarmStart>,
}

impl ArrowOnline {
    /// Builds the Phase I skeleton for `inst`'s structure. Demands present
    /// in `inst` are immaterial: every [`ArrowOnline::solve`] re-patches
    /// them from its own instance.
    pub fn new(arrow: Arrow, inst: &TeInstance) -> Self {
        let phase1 = arrow.build_phase1(inst);
        let shape = (inst.flows.len(), inst.tunnels.len(), inst.scenarios.len());
        ArrowOnline { arrow, phase1, phase1_warm: None, phase2: None, shape }
    }

    /// The underlying scheme configuration.
    pub fn arrow(&self) -> &Arrow {
        &self.arrow
    }

    /// Swaps in a new ticket set with the **same support structure** (same
    /// scenario count, tickets per scenario, and restored-link lists):
    /// only the restored-capacity values `r_e^{z,q}` may differ. The
    /// Phase I rows are patched in place; the Phase II cache is dropped
    /// (its hard capacity rows bake in the old plan).
    ///
    /// Panics when the structure differs — rebuild with
    /// [`ArrowOnline::new`] in that case.
    pub fn update_tickets(&mut self, tickets: TicketSet) {
        let old = &self.arrow.tickets;
        assert_eq!(
            old.per_scenario.len(),
            tickets.per_scenario.len(),
            "ticket update must keep the scenario count"
        );
        for (qi, (a, b)) in old.per_scenario.iter().zip(&tickets.per_scenario).enumerate() {
            assert_eq!(a.len(), b.len(), "scenario {qi}: ticket count changed");
            for (zi, (ta, tb)) in a.iter().zip(b).enumerate() {
                let la: Vec<_> = ta.restored.iter().map(|&(l, _)| l).collect();
                let lb: Vec<_> = tb.restored.iter().map(|&(l, _)| l).collect();
                assert_eq!(la, lb, "scenario {qi} ticket {zi}: support changed");
            }
        }
        for &(con, qi, zi, ri) in &self.phase1.r_rows {
            let (_, r) = tickets.per_scenario[qi][zi].restored[ri];
            self.phase1.base.model.set_rhs(con, r);
        }
        for &(con, qi, zi) in &self.phase1.m_rows {
            let m = self.arrow.alpha * tickets.per_scenario[qi][zi].total_gbps();
            self.phase1.base.model.set_rhs(con, m);
        }
        self.arrow.tickets = tickets;
        // The cached Phase II model hard-codes the old winning tickets'
        // capacities; the Phase I warm basis stays valid (same pattern).
        self.phase2 = None;
    }

    /// One online interval: patch demands, warm-solve Phase I, pick the
    /// winners, warm-solve Phase II.
    ///
    /// `inst` must share the structure of the instance this solver was
    /// built from — typically produced by
    /// [`TeInstance::with_demands`](crate::tunnels::TeInstance::with_demands).
    pub fn solve(&mut self, inst: &TeInstance) -> ArrowOutcome {
        assert_eq!(
            self.shape,
            (inst.flows.len(), inst.tunnels.len(), inst.scenarios.len()),
            "instance structure changed; rebuild ArrowOnline"
        );
        let sol1 = {
            let _span = arrow_obs::span!(
                "te.phase1",
                "flows" => inst.flows.len(),
                "scenarios" => inst.scenarios.len(),
                "warm" => self.phase1_warm.is_some(),
            );
            // Demand enters Phase I only through the b_f upper bounds.
            for (fi, f) in inst.flows.iter().enumerate() {
                self.phase1.base.model.set_bounds(self.phase1.base.b[fi], 0.0, f.demand_gbps);
            }
            arrow_lp::solve_with(
                &self.phase1.base.model,
                &self.arrow.solver,
                self.phase1_warm.as_ref(),
            )
        };
        assert!(sol1.status.is_usable(), "ARROW Phase I LP failed: {:?}", sol1.status);
        self.phase1_warm = sol1.warm_start();
        let winning = {
            let _span = arrow_obs::span!("te.select", "scenarios" => inst.scenarios.len());
            self.arrow.select_winning(inst, &self.phase1.base, &sol1)
        };
        let cache_valid = self.phase2.as_ref().is_some_and(|c| c.winning == winning);
        let (sol2, alloc, plan) = {
            let _span = arrow_obs::span!(
                "te.phase2",
                "flows" => inst.flows.len(),
                "cached" => cache_valid,
            );
            let warm_cache = match self.phase2.take() {
                Some(c) if c.winning == winning => c,
                _ => {
                    let (base, plan) = self.arrow.build_phase2(inst, &winning);
                    // Seed Phase II from the Phase I allocation: both models
                    // allocate b then a first, so the variable prefix is shared.
                    // (No basis: the row sets differ, so only the point maps.)
                    let ncols = base.model.num_vars();
                    let warm = Some(WarmStart::from_point(PrimalDual {
                        x: sol1.x[..ncols].to_vec(),
                        y: Vec::new(),
                    }));
                    Phase2Cache { winning: winning.clone(), base, plan, warm }
                }
            };
            let cache = self.phase2.insert(warm_cache);
            for (fi, f) in inst.flows.iter().enumerate() {
                cache.base.model.set_bounds(cache.base.b[fi], 0.0, f.demand_gbps);
            }
            let sol2 =
                arrow_lp::solve_with(&cache.base.model, &self.arrow.solver, cache.warm.as_ref());
            assert!(sol2.status.is_usable(), "ARROW Phase II LP failed: {:?}", sol2.status);
            cache.warm = sol2.warm_start();
            let alloc = extract_alloc(inst, &cache.base, &sol2, "ARROW");
            let plan = cache.plan.clone();
            (sol2, alloc, plan)
        };
        let mut output = SchemeOutput { alloc, restoration: Some(plan) };
        output.alloc.solve_seconds = sol1.stats.solve_seconds + sol2.stats.solve_seconds;
        ArrowOutcome {
            output,
            winning,
            phase1_seconds: sol1.stats.solve_seconds,
            phase2_seconds: sol2.stats.solve_seconds,
            phase1_stats: sol1.stats,
            phase2_stats: sol2.stats,
        }
    }
}

/// ARROW-Naive: Phase II with one optical-layer-optimal ticket (§6).
#[derive(Debug, Clone)]
pub struct ArrowNaive {
    /// The single restoration candidate per scenario (from the RWA).
    pub tickets: Vec<RestorationTicket>,
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl TeScheme for ArrowNaive {
    fn name(&self) -> String {
        "ARROW-Naive".into()
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        let arrow = Arrow {
            tickets: TicketSet::full(self.tickets.iter().map(|t| vec![t.clone()]).collect()),
            alpha: 0.1,
            solver: self.solver.clone(),
        };
        let winning = vec![0; inst.scenarios.len()];
        let (mut output, secs) = arrow.phase2(inst, &winning);
        output.alloc.scheme = self.name();
        output.alloc.solve_seconds = secs;
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::ffc::Ffc;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn instance(scale: f64, max_scenarios: usize) -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios, ..Default::default() });
        build_instance(
            &wan,
            &tms[0].scaled(scale),
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: true,
                ..Default::default()
            },
        )
    }

    /// Tickets granting full restoration of every failed link.
    fn full_tickets(inst: &TeInstance) -> TicketSet {
        TicketSet::full(
            inst.scenarios
                .iter()
                .map(|s| {
                    vec![RestorationTicket {
                        restored: s
                            .failed_links
                            .iter()
                            .map(|&l| (l, inst.wan.link(l).capacity_gbps))
                            .collect(),
                    }]
                })
                .collect(),
        )
    }

    /// Tickets restoring nothing.
    fn empty_tickets(inst: &TeInstance) -> TicketSet {
        TicketSet::none(inst.scenarios.len())
    }

    #[test]
    fn full_restoration_matches_maxflow() {
        // If every failure is fully restorable, failures are invisible and
        // ARROW should admit exactly what the failure-oblivious LP admits.
        let inst = instance(4.0, 8);
        let mf = super::super::maxflow::MaxFlow::default().solve(&inst);
        let arrow = Arrow::new(full_tickets(&inst)).solve(&inst);
        let (t_mf, t_ar) = (mf.alloc.throughput(&inst), arrow.alloc.throughput(&inst));
        assert!(
            (t_mf - t_ar).abs() < 2e-3,
            "full restoration should equal MaxFlow: {t_ar} vs {t_mf}"
        );
    }

    #[test]
    fn no_restoration_sandwiched_by_ffc_and_maxflow() {
        let inst = instance(4.0, 8);
        let arrow = Arrow::new(empty_tickets(&inst)).solve(&inst);
        let mf = super::super::maxflow::MaxFlow::default().solve(&inst);
        let t = arrow.alloc.throughput(&inst);
        assert!(t <= mf.alloc.throughput(&inst) + 1e-6);
        // With zero tickets ARROW still protects the enumerated scenarios,
        // so it cannot beat MaxFlow but must stay positive.
        assert!(t > 0.0);
    }

    #[test]
    fn more_restoration_never_hurts() {
        let inst = instance(4.0, 8);
        let none = Arrow::new(empty_tickets(&inst)).solve(&inst).alloc.throughput(&inst);
        let full = Arrow::new(full_tickets(&inst)).solve(&inst).alloc.throughput(&inst);
        assert!(full >= none - 1e-6, "full {full} < none {none}");
    }

    #[test]
    fn winning_ticket_tracks_demand() {
        // Reconstruction of Fig. 7: one scenario, two failed links, three
        // tickets; the demand profile makes ticket "(100, 400)" the winner.
        let inst = instance(1.0, 4);
        // Find a scenario with ≥1 failed link to attach tickets to.
        let q0 = &inst.scenarios[0];
        assert!(!q0.failed_links.is_empty());
        let link = q0.failed_links[0];
        let cap = inst.wan.link(link).capacity_gbps;
        let mut per_scenario: Vec<Vec<RestorationTicket>> = inst
            .scenarios
            .iter()
            .map(|s| {
                vec![RestorationTicket {
                    restored: s.failed_links.iter().map(|&l| (l, 0.0)).collect(),
                }]
            })
            .collect();
        // Scenario 0 gets two candidates: nothing vs full for `link`.
        per_scenario[0] = vec![
            RestorationTicket { restored: vec![(link, 0.0)] },
            RestorationTicket { restored: vec![(link, cap)] },
        ];
        let arrow = Arrow::new(TicketSet::full(per_scenario));
        let outcome = arrow.solve_detailed(&inst.scaled(4.0));
        // The full-restoration candidate must win scenario 0.
        assert_eq!(outcome.winning[0], 1, "full-restoration ticket should win");
    }

    #[test]
    fn naive_equals_arrow_with_single_ticket() {
        let inst = instance(3.0, 6);
        let tickets: Vec<RestorationTicket> = inst
            .scenarios
            .iter()
            .map(|s| RestorationTicket {
                restored: s
                    .failed_links
                    .iter()
                    .map(|&l| (l, 0.5 * inst.wan.link(l).capacity_gbps))
                    .collect(),
            })
            .collect();
        let naive =
            ArrowNaive { tickets: tickets.clone(), solver: Default::default() }.solve(&inst);
        let arrow = Arrow::new(TicketSet::full(tickets.into_iter().map(|t| vec![t]).collect()))
            .solve(&inst);
        assert!(
            (naive.alloc.throughput(&inst) - arrow.alloc.throughput(&inst)).abs() < 1e-4,
            "single-ticket ARROW must equal ARROW-Naive"
        );
    }

    #[test]
    fn arrow_beats_ffc_under_load() {
        // The headline effect: restoration awareness admits more demand
        // than failure-aware TE that treats cuts as fatal.
        let inst = instance(5.0, 8);
        let arrow = Arrow::new(full_tickets(&inst)).solve(&inst);
        let ffc = Ffc::k1().solve(&inst);
        let (t_a, t_f) = (arrow.alloc.throughput(&inst), ffc.alloc.throughput(&inst));
        assert!(t_a > t_f, "ARROW {t_a} should beat FFC-1 {t_f} under load");
    }

    #[test]
    fn restoration_plan_is_returned_per_scenario() {
        let inst = instance(2.0, 5);
        let out = Arrow::new(full_tickets(&inst)).solve(&inst);
        let plan = out.restoration.expect("ARROW returns a plan");
        assert_eq!(plan.len(), inst.scenarios.len());
        for (q, ticket) in inst.scenarios.iter().zip(&plan) {
            for &(l, _) in &ticket.restored {
                assert!(q.failed_links.contains(&l), "plan restores a non-failed link");
            }
        }
    }

    /// Tickets restoring half of each failed link's capacity, plus an
    /// empty candidate — gives Phase I a real choice to make.
    fn half_or_nothing_tickets(inst: &TeInstance) -> TicketSet {
        TicketSet::full(
            inst.scenarios
                .iter()
                .map(|s| {
                    vec![
                        RestorationTicket {
                            restored: s
                                .failed_links
                                .iter()
                                .map(|&l| (l, 0.5 * inst.wan.link(l).capacity_gbps))
                                .collect(),
                        },
                        RestorationTicket {
                            restored: s.failed_links.iter().map(|&l| (l, 0.0)).collect(),
                        },
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn online_first_solve_matches_cold_exactly() {
        // The first ArrowOnline solve has no warm state: it must agree
        // with the one-shot path on winners and allocation.
        let inst = instance(4.0, 6);
        let arrow = Arrow::new(half_or_nothing_tickets(&inst));
        let cold = arrow.solve_detailed(&inst);
        let mut online = ArrowOnline::new(arrow, &inst);
        let first = online.solve(&inst);
        assert_eq!(first.winning, cold.winning, "winning tickets must match cold");
        let (ta, tb) = (cold.output.alloc.throughput(&inst), first.output.alloc.throughput(&inst));
        assert!((ta - tb).abs() < 1e-9, "throughput {tb} != cold {ta}");
        assert_eq!(first.phase1_stats.warm, arrow_lp::WarmEvent::Cold);
    }

    #[test]
    fn online_warm_resolve_matches_cold_across_demand_sweep() {
        // B4 Phase II warm-start regression: re-solving shifted demand
        // matrices warm must reproduce the cold winners and objective.
        let inst = instance(4.0, 6);
        let arrow = Arrow::new(half_or_nothing_tickets(&inst));
        let mut online = ArrowOnline::new(arrow.clone(), &inst);
        for scale in [1.0, 1.25, 0.8] {
            let shifted = inst.scaled(scale);
            let warm = online.solve(&shifted);
            let cold = arrow.solve_detailed(&shifted);
            assert_eq!(warm.winning, cold.winning, "scale {scale}: winners diverged");
            let (tw, tc) =
                (warm.output.alloc.throughput(&shifted), cold.output.alloc.throughput(&shifted));
            assert!(
                (tw - tc).abs() <= 1e-6 * (1.0 + tc.abs()),
                "scale {scale}: warm {tw} vs cold {tc}"
            );
        }
        // After the first interval every Phase I solve starts warm.
        let again = online.solve(&inst.scaled(1.1));
        assert_ne!(again.phase1_stats.warm, arrow_lp::WarmEvent::Cold);
        assert_ne!(again.phase2_stats.warm, arrow_lp::WarmEvent::Cold);
    }

    #[test]
    fn online_ticket_update_patches_in_place() {
        // Same supports, different capacities: update_tickets must steer
        // later solves exactly like a fresh solver with the new set.
        let inst = instance(4.0, 4);
        let base = half_or_nothing_tickets(&inst);
        let mut richer = base.clone();
        for per in &mut richer.per_scenario {
            for (_, r) in &mut per[0].restored {
                *r *= 2.0; // half -> full restoration
            }
        }
        let mut online = ArrowOnline::new(Arrow::new(base), &inst);
        let _ = online.solve(&inst);
        online.update_tickets(richer.clone());
        let patched = online.solve(&inst);
        let fresh = Arrow::new(richer).solve_detailed(&inst);
        assert_eq!(patched.winning, fresh.winning);
        let (tp, tf) =
            (patched.output.alloc.throughput(&inst), fresh.output.alloc.throughput(&inst));
        assert!((tp - tf).abs() <= 1e-6 * (1.0 + tf.abs()), "patched {tp} vs fresh {tf}");
    }

    #[test]
    #[should_panic(expected = "structure changed")]
    fn online_rejects_mismatched_instance() {
        let inst = instance(1.0, 4);
        let mut online = ArrowOnline::new(Arrow::new(empty_tickets(&inst)), &inst);
        let other = instance(1.0, 3); // fewer scenarios
        let _ = online.solve(&other);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_ticket_set_panics() {
        let inst = instance(1.0, 5);
        let bad = TicketSet::none(inst.scenarios.len() + 1);
        let _ = Arrow::new(bad).phase1(&inst);
    }

    #[test]
    fn ticket_support_dedup_is_semantically_safe() {
        // Two tickets with identical support but different capacities must
        // both be selectable; dedup only merges constraint (4) rows.
        let inst = instance(4.0, 4);
        let q0 = &inst.scenarios[0];
        let link = q0.failed_links[0];
        let cap = inst.wan.link(link).capacity_gbps;
        let mut per_scenario: Vec<Vec<RestorationTicket>> =
            inst.scenarios.iter().map(|_| vec![RestorationTicket::empty()]).collect();
        per_scenario[0] = vec![
            RestorationTicket { restored: vec![(link, 0.25 * cap)] },
            RestorationTicket { restored: vec![(link, cap)] }, // same support
        ];
        let outcome = Arrow::new(TicketSet::full(per_scenario)).solve_detailed(&inst);
        assert_eq!(outcome.winning[0], 1, "larger-capacity ticket should win");
    }
}
