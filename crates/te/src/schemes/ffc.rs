//! Forward Fault Correction (FFC) [63], extended to fiber cuts.
//!
//! FFC guarantees zero loss under any `k` simultaneous failures by
//! reserving enough headroom: for every failure combination, the surviving
//! tunnels of each flow must still cover its admitted bandwidth `b_f`.
//! Following §6, the failure units here are *fibers* (all IP links on a cut
//! fiber fail together), and `k = 1` / `k = 2` give FFC-1 / FFC-2.
//!
//! Constraint sets are deduplicated per flow by the set of tunnels each
//! combination kills: two combinations killing the same tunnels of a flow
//! impose the same inequality. Because allocations are fixed (no
//! re-routing), post-failure link loads never exceed healthy loads, so the
//! base capacity constraints suffice.

use super::{base_model, extract_alloc, SchemeOutput, TeScheme};
use crate::tunnels::TeInstance;
use arrow_lp::{LinExpr, Sense, SolverConfig};
use arrow_optical::FiberId;

/// The FFC-k scheme.
#[derive(Debug, Clone)]
pub struct Ffc {
    /// Protection level: guaranteed loss-free for up to `k` fiber cuts.
    pub k: usize,
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl Ffc {
    /// FFC protecting against any single fiber cut.
    pub fn k1() -> Self {
        Ffc { k: 1, solver: SolverConfig::default() }
    }

    /// FFC protecting against any double fiber cut.
    pub fn k2() -> Self {
        Ffc { k: 2, solver: SolverConfig::default() }
    }

    /// Enumerates all fiber-cut combinations of size 1..=k.
    fn combinations(&self, num_fibers: usize) -> Vec<Vec<FiberId>> {
        let mut combos: Vec<Vec<FiberId>> = (0..num_fibers).map(|f| vec![FiberId(f)]).collect();
        if self.k >= 2 {
            for f in 0..num_fibers {
                for g in f + 1..num_fibers {
                    combos.push(vec![FiberId(f), FiberId(g)]);
                }
            }
        }
        assert!(self.k <= 2, "FFC-k implemented for k ∈ {{1, 2}} (as evaluated in the paper)");
        combos
    }
}

impl TeScheme for Ffc {
    fn name(&self) -> String {
        format!("FFC-{}", self.k)
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        let mut base = base_model(inst);
        let combos = self.combinations(inst.wan.optical.num_fibers());
        // Per flow, the distinct "dead tunnel sets" across all combinations.
        for (fi, flow) in inst.flows.iter().enumerate() {
            let mut seen: std::collections::BTreeSet<u64> = Default::default();
            for combo in &combos {
                let failed = inst.wan.links_failed_by(combo);
                if failed.is_empty() {
                    continue;
                }
                let mut mask: u64 = 0;
                for (slot, &t) in flow.tunnels.iter().enumerate() {
                    if inst.tunnels[t.0].hops.iter().any(|h| failed.contains(&h.link)) {
                        mask |= 1 << slot;
                    }
                }
                if mask == 0 || !seen.insert(mask) {
                    continue; // no tunnel dies, or an identical set was added
                }
                if mask.count_ones() as usize == flow.tunnels.len() {
                    // No tunnel can survive this combination: the flow is
                    // best-effort here (forcing b_f = 0 would zero the flow
                    // for all time; the loss shows up during playback).
                    continue;
                }
                // Σ_{surviving t} a_{f,t} ≥ b_f
                let mut e = LinExpr::new();
                for (slot, &t) in flow.tunnels.iter().enumerate() {
                    if mask & (1 << slot) == 0 {
                        e.add_term(base.a[t.0], 1.0);
                    }
                }
                e.add_term(base.b[fi], -1.0);
                base.model.add_con(e, Sense::Ge, 0.0, format!("ffc_f{fi}_m{mask:x}"));
            }
        }
        let sol = arrow_lp::solve(&base.model, &self.solver);
        assert!(sol.status.is_usable(), "FFC LP infeasible?! status {:?}", sol.status);
        SchemeOutput { alloc: extract_alloc(inst, &base, &sol, &self.name()), restoration: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn instance(scale: f64) -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig::default());
        build_instance(
            &wan,
            &tms[0].scaled(scale),
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: true,
                ..Default::default()
            },
        )
    }

    /// FFC's core promise: after any single fiber cut, surviving tunnel
    /// allocations still cover b_f.
    #[test]
    fn ffc1_guarantee_holds_for_every_single_cut() {
        let inst = instance(3.0);
        let out = Ffc::k1().solve(&inst);
        for f in 0..inst.wan.optical.num_fibers() {
            let failed = inst.wan.links_failed_by(&[FiberId(f)]);
            for (fi, flow) in inst.flows.iter().enumerate() {
                let surviving: f64 = flow
                    .tunnels
                    .iter()
                    .filter(|&&t| !inst.tunnels[t.0].hops.iter().any(|h| failed.contains(&h.link)))
                    .map(|&t| out.alloc.a[t.0])
                    .sum();
                assert!(
                    surviving >= out.alloc.b[fi] - 1e-4,
                    "flow {fi}: surviving {surviving} < b {}",
                    out.alloc.b[fi]
                );
            }
        }
    }

    #[test]
    fn ffc2_admits_no_more_than_ffc1() {
        let inst = instance(3.0);
        let t1 = Ffc::k1().solve(&inst).alloc.throughput(&inst);
        let t2 = Ffc::k2().solve(&inst).alloc.throughput(&inst);
        assert!(t2 <= t1 + 1e-6, "FFC-2 ({t2}) cannot beat FFC-1 ({t1})");
        assert!(t2 > 0.0);
    }

    #[test]
    fn ffc_is_no_better_than_maxflow() {
        let inst = instance(3.0);
        let mf = super::super::maxflow::MaxFlow::default().solve(&inst);
        let f1 = Ffc::k1().solve(&inst);
        assert!(
            f1.alloc.throughput(&inst) <= mf.alloc.throughput(&inst) + 1e-6,
            "protection cannot increase throughput"
        );
    }

    #[test]
    fn names() {
        assert_eq!(Ffc::k1().name(), "FFC-1");
        assert_eq!(Ffc::k2().name(), "FFC-2");
    }
}
