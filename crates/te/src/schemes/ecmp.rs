//! ECMP baseline [21]: equal traffic on every tunnel, no optimization.
//!
//! ECMP is failure-oblivious and capacity-oblivious: it admits the full
//! demand and splits it evenly across the flow's tunnels. Congestion and
//! failures surface as loss during playback (`crate::eval`), exactly as in
//! the paper where ECMP "does not provide any guarantees with respect to
//! failures".

use super::{SchemeOutput, TeScheme};
use crate::alloc::TeAllocation;
use crate::tunnels::TeInstance;

/// The ECMP scheme.
#[derive(Debug, Clone, Default)]
pub struct Ecmp;

impl TeScheme for Ecmp {
    fn name(&self) -> String {
        "ECMP".into()
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        let mut a = vec![0.0; inst.tunnels.len()];
        let mut b = vec![0.0; inst.flows.len()];
        for (i, f) in inst.flows.iter().enumerate() {
            b[i] = f.demand_gbps;
            let share = f.demand_gbps / f.tunnels.len().max(1) as f64;
            for &t in &f.tunnels {
                a[t.0] = share;
            }
        }
        SchemeOutput {
            alloc: TeAllocation { b, a, scheme: self.name(), solve_seconds: 0.0 },
            restoration: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    #[test]
    fn equal_split_adds_up() {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig::default());
        let inst = build_instance(
            &wan,
            &tms[0],
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: false,
                ..Default::default()
            },
        );
        let out = Ecmp.solve(&inst);
        for (i, f) in inst.flows.iter().enumerate() {
            assert_eq!(out.alloc.b[i], f.demand_gbps);
            let total: f64 = f.tunnels.iter().map(|&t| out.alloc.a[t.0]).sum();
            assert!((total - f.demand_gbps).abs() < 1e-9);
            let first = out.alloc.a[f.tunnels[0].0];
            for &t in &f.tunnels {
                assert!((out.alloc.a[t.0] - first).abs() < 1e-12, "unequal split");
            }
        }
        assert!(out.restoration.is_none());
    }
}
