//! Failure-oblivious throughput-maximal TE.
//!
//! Solves the standard constraints (1)–(3) with `max Σ b_f` and nothing
//! else. This is the LP used to *normalize* demand scales (§6 starts from a
//! state where 100% of demand is satisfiable) and doubles as the paper's
//! class of "failure-oblivious TE algorithms that assign traffic
//! respecting link capacity" [42].

use super::{base_model, extract_alloc, SchemeOutput, TeScheme};
use crate::tunnels::TeInstance;
use arrow_lp::SolverConfig;

/// The throughput-maximal failure-oblivious scheme.
#[derive(Debug, Clone, Default)]
pub struct MaxFlow {
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl TeScheme for MaxFlow {
    fn name(&self) -> String {
        "MaxFlow".into()
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        let base = base_model(inst);
        let sol = arrow_lp::solve(&base.model, &self.solver);
        assert!(
            sol.status.is_usable(),
            "MaxFlow LP must be solvable (feasible at zero): {:?}",
            sol.status
        );
        SchemeOutput { alloc: extract_alloc(inst, &base, &sol, "MaxFlow"), restoration: None }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::alloc::TeAllocation;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    /// Builds a test instance at `scale` times the §6-normalized base load
    /// (the largest uniform demand scale MaxFlow fully satisfies). Anchoring
    /// on the normalized point keeps these tests meaningful for any RNG
    /// stream behind the gravity matrices; the raw draw is not guaranteed to
    /// fit the network at scale 1.0.
    fn instance(scale: f64) -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig::default());
        let raw = build_instance(
            &wan,
            &tms[0],
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: false,
                ..Default::default()
            },
        );
        raw.scaled(scale * crate::eval::normalize_demand_scale(&raw))
    }

    #[test]
    fn satisfies_all_demand_at_moderate_load() {
        let inst = instance(1.0);
        let out = MaxFlow::default().solve(&inst);
        let thr = out.alloc.throughput(&inst);
        assert!(thr > 0.99, "throughput {thr} at base load");
    }

    #[test]
    fn admits_less_when_overloaded() {
        let inst = instance(20.0);
        let out = MaxFlow::default().solve(&inst);
        let thr = out.alloc.throughput(&inst);
        assert!(thr < 1.0, "throughput {thr} should drop at 20x load");
        assert!(thr > 0.0);
    }

    #[test]
    fn respects_capacities() {
        let inst = instance(20.0);
        let out = MaxFlow::default().solve(&inst);
        assert_capacity_feasible(&inst, &out.alloc);
    }

    /// Shared helper: verifies directed link loads stay within capacity.
    pub(crate) fn assert_capacity_feasible(inst: &TeInstance, alloc: &TeAllocation) {
        for key in inst.used_dir_links() {
            let load: f64 = inst
                .tunnels
                .iter()
                .enumerate()
                .filter(|(_, t)| t.hops.iter().any(|h| h.link == key.0 && h.forward == key.1))
                .map(|(i, _)| alloc.a[i])
                .sum();
            let cap = inst.wan.link(key.0).capacity_gbps;
            assert!(load <= cap * (1.0 + 1e-5) + 1e-6, "link {:?} load {load} > cap {cap}", key);
        }
    }
}
