//! TE schemes: the paper's comparison set (§6).
//!
//! * [`ecmp`] — equal split over tunnels, failure-oblivious baseline [21].
//! * [`maxflow`] — throughput-maximal LP, failure-oblivious.
//! * [`ffc`] — Forward Fault Correction [63]: zero loss under any `k`
//!   simultaneous fiber cuts.
//! * [`teavar`] — TeaVaR [17]: CVaR_β hedging over probabilistic scenarios.
//! * [`arrow`] — the paper's contribution: restoration-aware two-phase TE
//!   over LotteryTickets, plus ARROW-Naive.
//! * [`joint`] — the intractable joint IP/optical formulation (Appendix
//!   A.4/A.5): size accounting for Table 8 and an exact reference solvable
//!   only on toy instances.
//!
//! Every scheme implements [`TeScheme`], producing a [`SchemeOutput`]: the
//! allocation plus (for restoration-aware schemes) the restoration plan the
//! playback engine applies per scenario.

pub mod arrow;
pub mod ecmp;
pub mod ffc;
pub mod joint;
pub mod maxflow;
pub mod teavar;

use crate::alloc::TeAllocation;
use crate::restoration::RestorationTicket;
use crate::tunnels::{DirLink, TeInstance};
use arrow_lp::{LinExpr, Model, Objective, Sense, VarId};

/// Output of one TE solve.
#[derive(Debug, Clone)]
pub struct SchemeOutput {
    /// The bandwidth allocation.
    pub alloc: TeAllocation,
    /// Restoration plan per scenario (aligned with `inst.scenarios`), when
    /// the scheme is restoration-aware; `None` means fiber cuts are fatal.
    pub restoration: Option<Vec<RestorationTicket>>,
}

/// A traffic-engineering scheme.
pub trait TeScheme {
    /// Display name (used in reports and EXPERIMENTS.md tables).
    fn name(&self) -> String;
    /// Computes allocations for the instance.
    fn solve(&self, inst: &TeInstance) -> SchemeOutput;
}

/// Shared LP skeleton: variables `b_f ∈ [0, d_f]`, `a_{f,t} ≥ 0`, the
/// standard constraints (1)–(3) of Table 2, and the `max Σ b_f` objective.
#[derive(Debug, Clone)]
pub(crate) struct BaseModel {
    pub model: Model,
    /// `b_f` variables, indexed by flow.
    pub b: Vec<VarId>,
    /// `a_{f,t}` variables, indexed by tunnel.
    pub a: Vec<VarId>,
}

pub(crate) fn base_model(inst: &TeInstance) -> BaseModel {
    let mut model = Model::new();
    let b: Vec<VarId> = inst
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| model.add_var(0.0, f.demand_gbps, format!("b_f{i}")))
        .collect();
    let a: Vec<VarId> =
        (0..inst.tunnels.len()).map(|t| model.add_nonneg(format!("a_t{t}"))).collect();
    // (1) Σ_{t ∈ T_f} a_{f,t} ≥ b_f
    for (i, f) in inst.flows.iter().enumerate() {
        let mut e = LinExpr::sum_vars(f.tunnels.iter().map(|&t| a[t.0]));
        e.add_term(b[i], -1.0);
        model.add_con(e, Sense::Ge, 0.0, format!("cover_f{i}"));
    }
    // (2) per directed link: Σ a_{f,t} L[t,e] ≤ c_e
    for key in inst.used_dir_links() {
        let DirLink(link, fwd) = key;
        let users: Vec<VarId> = inst
            .tunnels
            .iter()
            .enumerate()
            .filter(|(_, t)| t.hops.iter().any(|h| h.link == link && h.forward == fwd))
            .map(|(i, _)| a[i])
            .collect();
        let cap = inst.wan.link(link).capacity_gbps;
        model.add_con(
            LinExpr::sum_vars(users),
            Sense::Le,
            cap,
            format!("cap_e{}_{}", link.0, if fwd { "fwd" } else { "rev" }),
        );
    }
    // Objective: maximize network throughput.
    model.set_objective(LinExpr::sum_vars(b.iter().copied()), Objective::Maximize);
    BaseModel { model, b, a }
}

/// Extracts an allocation from a solved base model.
pub(crate) fn extract_alloc(
    inst: &TeInstance,
    base: &BaseModel,
    sol: &arrow_lp::Solution,
    scheme: &str,
) -> TeAllocation {
    TeAllocation {
        b: base.b.iter().map(|&v| sol.value(v).max(0.0)).collect(),
        a: base.a.iter().map(|&v| sol.value(v).max(0.0)).collect(),
        scheme: scheme.to_string(),
        solve_seconds: sol.stats.solve_seconds,
    }
    .repaired(inst)
    .clamped(inst)
}

impl TeAllocation {
    /// Clamps `b_f` to demand (guards against solver tolerance overshoot).
    pub(crate) fn clamped(mut self, inst: &TeInstance) -> Self {
        for (i, f) in inst.flows.iter().enumerate() {
            self.b[i] = self.b[i].min(f.demand_gbps);
        }
        self
    }

    /// Restores capacity feasibility after an approximate solve (the
    /// first-order backend converges to a tolerance): if any directed link
    /// is oversubscribed, every allocation is scaled down uniformly by the
    /// worst overload factor — which preserves all covering constraints.
    pub(crate) fn repaired(mut self, inst: &TeInstance) -> Self {
        let mut rho: f64 = 1.0;
        for key in inst.used_dir_links() {
            let DirLink(link, fwd) = key;
            let load: f64 = inst
                .tunnels
                .iter()
                .enumerate()
                .filter(|(_, t)| t.hops.iter().any(|h| h.link == link && h.forward == fwd))
                .map(|(i, _)| self.a[i])
                .sum();
            let cap = inst.wan.link(link).capacity_gbps;
            if cap > 0.0 {
                rho = rho.max(load / cap);
            }
        }
        if rho > 1.0 + 1e-9 {
            for v in self.a.iter_mut().chain(self.b.iter_mut()) {
                *v /= rho;
            }
        }
        self
    }
}
