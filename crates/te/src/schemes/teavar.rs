//! TeaVaR [17]: risk-aware TE via Conditional Value-at-Risk.
//!
//! Instead of FFC's absolute guarantees, TeaVaR hedges against
//! *probabilistic* failure scenarios: it minimizes the CVaR at availability
//! target β of the per-scenario demand-loss fraction, subject to the
//! standard capacity constraints. The classic Rockafellar–Uryasev
//! linearization is used:
//!
//! ```text
//! minimize   α + 1/(1-β) Σ_q p_q s_q      (CVaR_β of loss)
//! s.t.       s_q ≥ loss_q − α,  s_q ≥ 0
//!            loss_q = 1 − Σ_f delivered_{f,q} / Σ_f d_f
//!            delivered_{f,q} ≤ Σ_{t ∈ T_f^q} a_{f,t}   (surviving tunnels)
//!            delivered_{f,q} ≤ d_f
//!            link capacities (healthy)                  (loads never grow)
//! ```
//!
//! A small throughput bonus breaks ties among CVaR-optimal allocations so
//! capacity is not left idle. Scenario probabilities are normalized over
//! the enumerated set (healthy + failures above the cutoff), mirroring the
//! paper's "only consider highly-probable scenarios".

use super::{SchemeOutput, TeScheme};
use crate::alloc::TeAllocation;
use crate::tunnels::{DirLink, TeInstance};
use arrow_lp::{LinExpr, Model, Objective, Sense, SolverConfig, VarId};

/// The TeaVaR scheme.
#[derive(Debug, Clone)]
pub struct TeaVar {
    /// Availability target β (paper simulations use 0.999).
    pub beta: f64,
    /// Probability of the healthy scenario (complement of the failure
    /// scenarios' mass); computed from the instance if `None`.
    pub healthy_probability: Option<f64>,
    /// LP solver settings.
    pub solver: SolverConfig,
}

impl Default for TeaVar {
    fn default() -> Self {
        TeaVar { beta: 0.999, healthy_probability: None, solver: SolverConfig::default() }
    }
}

impl TeScheme for TeaVar {
    fn name(&self) -> String {
        "TeaVaR".into()
    }

    fn solve(&self, inst: &TeInstance) -> SchemeOutput {
        let total_demand = inst.total_demand().max(1e-9);
        let mut model = Model::new();
        let a: Vec<VarId> =
            (0..inst.tunnels.len()).map(|t| model.add_nonneg(format!("a_t{t}"))).collect();
        // Healthy capacity constraints.
        for key in inst.used_dir_links() {
            let DirLink(link, fwd) = key;
            let users: Vec<VarId> = inst
                .tunnels
                .iter()
                .enumerate()
                .filter(|(_, t)| t.hops.iter().any(|h| h.link == link && h.forward == fwd))
                .map(|(i, _)| a[i])
                .collect();
            model.add_con(
                LinExpr::sum_vars(users),
                Sense::Le,
                inst.wan.link(link).capacity_gbps,
                format!("cap_{}_{}", link.0, fwd),
            );
        }
        // Scenario list: healthy + failure scenarios, probabilities
        // normalized over the enumerated mass.
        let failure_mass: f64 = inst.scenarios.iter().map(|s| s.probability).sum();
        let healthy_p = self.healthy_probability.unwrap_or((1.0 - failure_mass).max(0.0));
        let mass = (healthy_p + failure_mass).max(1e-12);
        let alpha = model.add_var(-1.0, 1.0, "alpha");
        let mut cvar_expr = LinExpr::term(alpha, 1.0);
        let mut bonus = LinExpr::new();
        // Healthy delivered vars (reused by every scenario for flows the
        // scenario does not touch — their surviving-tunnel bound is
        // identical, which keeps the LP small).
        let mut healthy_delivered: Vec<VarId> = Vec::new();
        {
            for (fi, flow) in inst.flows.iter().enumerate() {
                let d = model.add_var(0.0, flow.demand_gbps, format!("del_f{fi}_h"));
                let mut cover = LinExpr::term(d, -1.0);
                for &t in &flow.tunnels {
                    cover.add_term(a[t.0], 1.0);
                }
                model.add_con(cover, Sense::Ge, 0.0, format!("del_cov_f{fi}_h"));
                healthy_delivered.push(d);
            }
        }
        for (qi, scen) in std::iter::once(None).chain(inst.scenarios.iter().map(Some)).enumerate() {
            let p = match scen {
                None => healthy_p / mass,
                Some(s) => s.probability / mass,
            };
            let s_q = model.add_nonneg(format!("s_q{qi}"));
            cvar_expr.add_term(s_q, p / (1.0 - self.beta));
            // loss_q = 1 - Σ delivered / D  =>  s_q ≥ loss_q - α becomes
            // s_q + Σ delivered / D + α ≥ 1.
            let mut loss_con = LinExpr::term(s_q, 1.0).add(alpha, 1.0);
            for (fi, flow) in inst.flows.iter().enumerate() {
                let affected_scen =
                    scen.filter(|s| flow.tunnels.iter().any(|&t| !inst.tunnel_survives(t, s)));
                let d = if let Some(scen) = affected_scen {
                    let d = model.add_var(0.0, flow.demand_gbps, format!("del_f{fi}_q{qi}"));
                    // delivered ≤ surviving tunnel allocations.
                    let mut cover = LinExpr::term(d, -1.0);
                    for &t in &flow.tunnels {
                        if inst.tunnel_survives(t, scen) {
                            cover.add_term(a[t.0], 1.0);
                        }
                    }
                    model.add_con(cover, Sense::Ge, 0.0, format!("del_cov_f{fi}_q{qi}"));
                    d
                } else {
                    healthy_delivered[fi]
                };
                loss_con.add_term(d, 1.0 / total_demand);
                bonus.add_term(d, p * 1e-4 / total_demand);
            }
            model.add_con(loss_con, Sense::Ge, 1.0, format!("cvar_q{qi}"));
        }
        // minimize CVaR − tiny·throughput  ==  maximize −CVaR + bonus
        let mut obj = bonus;
        for (v, c) in cvar_expr.terms {
            obj.add_term(v, -c);
        }
        model.set_objective(obj, Objective::Maximize);
        let sol = arrow_lp::solve(&model, &self.solver);
        assert!(sol.status.is_usable(), "TeaVaR LP failed: {:?}", sol.status);
        let alloc = TeAllocation {
            b: healthy_delivered.iter().map(|&v| sol.value(v).max(0.0)).collect(),
            a: a.iter().map(|&v| sol.value(v).max(0.0)).collect(),
            scheme: self.name(),
            solve_seconds: sol.stats.solve_seconds,
        }
        .repaired(inst)
        .clamped(inst);
        SchemeOutput { alloc, restoration: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::maxflow::MaxFlow;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn instance(scale: f64) -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 12, ..Default::default() });
        build_instance(
            &wan,
            &tms[0].scaled(scale),
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn respects_capacity_and_demand() {
        let inst = instance(2.0);
        let out = TeaVar::default().solve(&inst);
        for (i, f) in inst.flows.iter().enumerate() {
            assert!(out.alloc.b[i] <= f.demand_gbps + 1e-6);
        }
        crate::schemes::maxflow::tests::assert_capacity_feasible(&inst, &out.alloc);
    }

    #[test]
    fn hedges_compared_to_maxflow() {
        // Under load, TeaVaR sacrifices some admitted bandwidth for
        // failure-scenario coverage; it can never beat MaxFlow's healthy
        // throughput.
        let inst = instance(4.0);
        let tv = TeaVar::default().solve(&inst);
        let mf = MaxFlow::default().solve(&inst);
        assert!(
            tv.alloc.throughput(&inst) <= mf.alloc.throughput(&inst) + 1e-4,
            "TeaVaR {} vs MaxFlow {}",
            tv.alloc.throughput(&inst),
            mf.alloc.throughput(&inst)
        );
        assert!(tv.alloc.throughput(&inst) > 0.05);
    }

    #[test]
    fn light_load_fully_admitted() {
        let inst = instance(0.5);
        let out = TeaVar::default().solve(&inst);
        let thr = out.alloc.throughput(&inst);
        assert!(thr > 0.95, "under light load TeaVaR should admit ~all demand, got {thr}");
    }
}
