//! The intractable joint IP/optical formulation (Appendices A.4 & A.5).
//!
//! Two artifacts from the paper are reproduced here:
//!
//! 1. **Formulation size accounting** (Table 8): the number of binary
//!    variables, continuous variables, and constraints the optimal joint
//!    IP/optical TE (Table 7) would require for a given instance. The
//!    counts follow Table 7's index sets — `ξ_{φ,w}^{e,k,q}` over
//!    (scenario, failed link, candidate path, fiber-on-path, wavelength
//!    slot) and `λ_e^{k,q}` integers — and demonstrate *why* ARROW's
//!    LotteryTicket abstraction exists.
//!
//! 2. **Binary ILP ticket selection** (Table 9): the exact
//!    one-ticket-per-scenario selection via big-M binaries. Solvable only
//!    on small instances; used in tests to confirm that the two-phase LP's
//!    winning tickets are optimal or near-optimal (the Theorem 3.1
//!    assumption).

use crate::restoration::TicketSet;
use crate::tunnels::TeInstance;
use arrow_lp::{LinExpr, Objective, Sense, SolverConfig, VarId};
use arrow_optical::k_shortest_paths;

/// Size of the joint IP/optical formulation for one instance (Table 8).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JointSize {
    /// Binary wavelength-assignment variables `ξ_{φ,w}^{e,k,q}`.
    pub binary_vars: u128,
    /// Continuous variables (`a_{f,t}`, `b_f`, `r_e^q`) plus integers `λ`.
    pub continuous_vars: u128,
    /// Constraint rows (18)–(27).
    pub constraints: u128,
}

/// Counts the joint formulation's size for `inst` with `k` candidate
/// restoration paths per failed link.
///
/// Counting rules (Table 7 index sets):
/// * `ξ` — for each scenario `q`, failed link `e`, path `k' ≤ k`, every
///   fiber `φ` on that path, every slot `w`: one binary.
/// * `λ_e^{k,q}` — one integer per (q, e, path).
/// * constraints (23): per (q, fiber-on-some-path, w); (24): per
///   (q, e, k', φ∈path); (25): per (q, e, k', w, adjacent fiber pair);
///   (26)+(27): per (q, e); plus the TE rows (18)–(22).
pub fn joint_formulation_size(inst: &TeInstance, k: usize) -> JointSize {
    let slots = inst.wan.optical.num_slots() as u128;
    let mut size = JointSize::default();
    // TE rows (18)-(20).
    size.continuous_vars += (inst.tunnels.len() + inst.flows.len()) as u128;
    size.constraints += (inst.flows.len() + inst.used_dir_links().len()) as u128;
    for scen in &inst.scenarios {
        // (21): per affected flow; (22): per failed link.
        size.constraints += inst.flows.len() as u128 + scen.failed_links.len() as u128;
        for &link in &scen.failed_links {
            let l = inst.wan.link(link);
            let (src, dst) = (inst.wan.site_roadm[l.a.0], inst.wan.site_roadm[l.b.0]);
            let paths =
                k_shortest_paths(&inst.wan.optical, src, dst, k, &scen.cut_fibers, f64::INFINITY);
            for p in &paths {
                let flen = p.fibers.len() as u128;
                size.binary_vars += flen * slots; // ξ over (φ ∈ path, w)
                size.continuous_vars += 1; // λ_e^{k,q}
                size.constraints += flen; // (24)
                size.constraints += flen.saturating_sub(1) * slots; // (25)
            }
            size.continuous_vars += 1; // r_e^q
            size.constraints += 2; // (26), (27)
        }
        // (23): per (fiber, slot) — bounded by the whole fiber plant.
        size.constraints += inst.wan.optical.num_fibers() as u128 * slots;
    }
    size
}

/// Exact LotteryTicket selection as a binary ILP (Table 9).
///
/// Returns `(objective, winning ticket per scenario)`. Only call on small
/// instances — the model has one binary per (scenario, ticket) and big-M
/// constraints per (flow, scenario, ticket).
pub fn binary_ticket_selection(
    inst: &TeInstance,
    tickets: &TicketSet,
    solver: &SolverConfig,
) -> Option<(f64, Vec<usize>)> {
    use crate::schemes::base_model;
    let mut base = base_model(inst);
    let big_m: f64 = inst
        .flows
        .iter()
        .map(|f| f.demand_gbps)
        .fold(0.0, f64::max)
        .max(inst.wan.links.iter().map(|l| l.capacity_gbps).fold(0.0, f64::max))
        * 4.0;
    let mut selectors: Vec<Vec<VarId>> = Vec::new();
    for (qi, scen) in inst.scenarios.iter().enumerate() {
        let mut xs = Vec::new();
        for (zi, ticket) in tickets.for_scenario(qi).iter().enumerate() {
            let x = base.model.add_binary(format!("x_q{qi}_z{zi}"));
            xs.push(x);
            let y: Vec<crate::tunnels::TunnelId> = (0..inst.tunnels.len())
                .map(crate::tunnels::TunnelId)
                .filter(|&t| inst.tunnel_restorable(t, scen, &|l| ticket.restored_gbps(l)))
                .collect();
            // (31): Σ_{t∈Y∪T^q} a ≥ b_f − M(1−x)
            for (fi, flow) in inst.flows.iter().enumerate() {
                let affected = flow.tunnels.iter().any(|&t| !inst.tunnel_survives(t, scen));
                if !affected {
                    continue;
                }
                let covered: Vec<_> = flow
                    .tunnels
                    .iter()
                    .filter(|&&t| inst.tunnel_survives(t, scen) || y.contains(&t))
                    .collect();
                if covered.is_empty() {
                    continue; // best-effort flow (mirrors the LP two-phase)
                }
                let mut e = LinExpr::term(base.b[fi], -1.0).add(x, -big_m);
                for &&t in &covered {
                    e.add_term(base.a[t.0], 1.0);
                }
                base.model.add_con(e, Sense::Ge, -big_m, format!("b31_f{fi}_q{qi}_z{zi}"));
            }
            // (32): restorable-tunnel load ≤ r + M(1−x), per direction.
            for &(link, r) in &ticket.restored {
                for fwd in [true, false] {
                    let users: Vec<VarId> = y
                        .iter()
                        .filter(|&&t| {
                            inst.tunnels[t.0]
                                .hops
                                .iter()
                                .any(|h| h.link == link && h.forward == fwd)
                        })
                        .map(|&t| base.a[t.0])
                        .collect();
                    if users.is_empty() {
                        continue;
                    }
                    let e = LinExpr::sum_vars(users).add(x, big_m);
                    base.model.add_con(
                        e,
                        Sense::Le,
                        r + big_m,
                        format!("b32_e{}_{fwd}_q{qi}_z{zi}", link.0),
                    );
                }
            }
        }
        // (33): exactly one ticket per scenario.
        base.model.add_con(
            LinExpr::sum_vars(xs.iter().copied()),
            Sense::Eq,
            1.0,
            format!("b33_q{qi}"),
        );
        selectors.push(xs);
    }
    base.model.set_objective(LinExpr::sum_vars(base.b.iter().copied()), Objective::Maximize);
    let sol = arrow_lp::solve(&base.model, solver);
    if !sol.status.is_optimal() {
        return None;
    }
    let winning = selectors
        .iter()
        .map(|xs| xs.iter().position(|&x| sol.value(x) > 0.5).unwrap_or(0))
        .collect();
    Some((sol.objective, winning))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restoration::RestorationTicket;
    use crate::schemes::arrow::Arrow;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    fn tiny_instance() -> TeInstance {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures =
            generate_failures(&wan, &FailureConfig { max_scenarios: 2, ..Default::default() });
        build_instance(
            &wan,
            &tms[0].scaled(4.0),
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 3,
                prefer_fiber_disjoint: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn joint_size_grows_with_scenarios_and_slots() {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let f_small =
            generate_failures(&wan, &FailureConfig { max_scenarios: 3, ..Default::default() });
        let f_big =
            generate_failures(&wan, &FailureConfig { max_scenarios: 12, ..Default::default() });
        let i_small =
            build_instance(&wan, &tms[0], f_small.failure_scenarios(), &Default::default());
        let i_big = build_instance(&wan, &tms[0], f_big.failure_scenarios(), &Default::default());
        let s_small = joint_formulation_size(&i_small, 3);
        let s_big = joint_formulation_size(&i_big, 3);
        assert!(s_big.binary_vars > s_small.binary_vars);
        assert!(s_big.constraints > s_small.constraints);
        // Even the small B4 instance needs many thousands of binaries —
        // the Table 8 "intractable" story.
        assert!(s_small.binary_vars > 1_000, "binaries: {}", s_small.binary_vars);
    }

    #[test]
    fn binary_ilp_agrees_with_two_phase_winner() {
        let inst = tiny_instance();
        // Two tickets per scenario: restore-nothing vs restore-everything.
        let tickets = TicketSet::full(
            inst.scenarios
                .iter()
                .map(|s| {
                    vec![
                        RestorationTicket {
                            restored: s.failed_links.iter().map(|&l| (l, 0.0)).collect(),
                        },
                        RestorationTicket {
                            restored: s
                                .failed_links
                                .iter()
                                .map(|&l| (l, inst.wan.link(l).capacity_gbps))
                                .collect(),
                        },
                    ]
                })
                .collect(),
        );
        let (ilp_obj, ilp_winning) =
            binary_ticket_selection(&inst, &tickets, &SolverConfig::default())
                .expect("tiny ILP must solve");
        let outcome = Arrow::new(tickets).solve_detailed(&inst);
        // The exact ILP picks full restoration everywhere; the LP two-phase
        // must match both the selection and (approximately) the objective.
        assert_eq!(ilp_winning, outcome.winning);
        let lp_obj = outcome.output.alloc.total_admitted();
        assert!(
            (ilp_obj - lp_obj).abs() / ilp_obj.max(1.0) < 1e-3,
            "ILP {ilp_obj} vs two-phase {lp_obj}"
        );
    }
}
