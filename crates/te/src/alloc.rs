//! TE allocations: the common output of every scheme.

use crate::tunnels::{FlowId, TeInstance, TunnelId};
use serde::{Deserialize, Serialize};

/// Bandwidth allocation produced by a TE scheme.
///
/// `b_f` is the admitted bandwidth per flow; `a_{f,t}` the per-tunnel
/// allocation. Splitting ratios `ω_{f,t} = a_{f,t} / Σ_t a_{f,t}` are what
/// gets installed on routers (§3.3 "Phase II output").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeAllocation {
    /// Admitted bandwidth per flow (Gbps), indexed by [`FlowId`].
    pub b: Vec<f64>,
    /// Per-tunnel allocation (Gbps), indexed by [`TunnelId`].
    pub a: Vec<f64>,
    /// Name of the scheme that produced this (for reports).
    pub scheme: String,
    /// LP solve seconds consumed producing the allocation.
    pub solve_seconds: f64,
}

impl TeAllocation {
    /// Allocation of tunnel `t`.
    pub fn tunnel(&self, t: TunnelId) -> f64 {
        self.a[t.0]
    }

    /// Admitted bandwidth of flow `f`.
    pub fn flow(&self, f: FlowId) -> f64 {
        self.b[f.0]
    }

    /// Splitting ratios for flow `f` over its tunnels, summing to 1.
    ///
    /// Zero-allocation tunnels get weight `ε = 1e-4` before normalization
    /// (the paper's footnote 6: avoids division by zero and keeps a live
    /// path through every tunnel).
    pub fn splitting_ratios(&self, inst: &TeInstance, f: FlowId) -> Vec<(TunnelId, f64)> {
        let eps = 1e-4;
        let tunnels = inst.flow_tunnels(f);
        let weights: Vec<f64> = tunnels.iter().map(|&t| self.a[t.0].max(eps)).collect();
        let total: f64 = weights.iter().sum();
        tunnels.iter().zip(weights).map(|(&t, w)| (t, w / total)).collect()
    }

    /// Total admitted bandwidth `Σ_f b_f`.
    pub fn total_admitted(&self) -> f64 {
        self.b.iter().sum()
    }

    /// The throughput metric of §6.2: `Σ_f b_f / Σ_f d_f`.
    pub fn throughput(&self, inst: &TeInstance) -> f64 {
        let d = inst.total_demand();
        if d <= 0.0 {
            1.0
        } else {
            self.total_admitted() / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tunnels::{build_instance, TunnelConfig};
    use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};

    #[test]
    fn splitting_ratios_sum_to_one() {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig::default());
        let inst = build_instance(
            &wan,
            &tms[0],
            failures.failure_scenarios(),
            &TunnelConfig {
                tunnels_per_flow: 4,
                prefer_fiber_disjoint: false,
                ..Default::default()
            },
        );
        let alloc = TeAllocation {
            b: vec![1.0; inst.flows.len()],
            a: vec![0.0; inst.tunnels.len()],
            scheme: "test".into(),
            solve_seconds: 0.0,
        };
        let ratios = alloc.splitting_ratios(&inst, FlowId(0));
        let sum: f64 = ratios.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // All-zero allocations give equal ratios.
        let first = ratios[0].1;
        assert!(ratios.iter().all(|&(_, w)| (w - first).abs() < 1e-12));
    }

    #[test]
    fn throughput_ratio() {
        let wan = b4(17);
        let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
        let failures = generate_failures(&wan, &FailureConfig::default());
        let inst = build_instance(&wan, &tms[0], failures.failure_scenarios(), &Default::default());
        let half: Vec<f64> = inst.flows.iter().map(|f| f.demand_gbps / 2.0).collect();
        let alloc = TeAllocation {
            b: half,
            a: vec![0.0; inst.tunnels.len()],
            scheme: "test".into(),
            solve_seconds: 0.0,
        };
        assert!((alloc.throughput(&inst) - 0.5).abs() < 1e-9);
    }
}
