//! Fixture: nondeterminism flowing into a digest-producing sink.
//!
//! `TicketSet::digest` reaches a `HashMap` construction through
//! `collect_ids` (a taint finding); the RNG in `seeded` goes through
//! `derive_seed` and is clean. Never compiled — parsed by the test suite
//! under a synthetic product-lib path.

pub struct TicketSet;

impl TicketSet {
    pub fn digest(&self) -> u64 {
        let a = collect_ids().iter().fold(0, |acc, &(k, v)| acc ^ k ^ v);
        a ^ seeded(a)
    }
}

fn collect_ids() -> Vec<(u64, u64)> {
    let mut m = std::collections::HashMap::new();
    m.insert(1u64, 2u64);
    m.into_iter().collect()
}

fn seeded(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 7));
    rng.next_u64()
}
