//! Fixture: a deliberate panic chain for the interprocedural tests.
//!
//! `Planner::plan_epoch` → `Planner::select_winning` → `paths::disjoint`
//! → `paths::pick` → `.unwrap()`. Never compiled — parsed by the test
//! suite under a synthetic product-lib path.

pub struct Planner;

impl Planner {
    pub fn plan_epoch(&self) -> u32 {
        self.select_winning()
    }

    fn select_winning(&self) -> u32 {
        paths::disjoint(3)
    }
}

pub mod paths {
    pub fn disjoint(k: u32) -> u32 {
        pick(k)
    }

    fn pick(k: u32) -> u32 {
        let v: Vec<u32> = (0..k).collect();
        v.first().copied().unwrap()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_outside_the_graph() {
        let x: Option<u8> = None;
        assert_eq!(x.unwrap_or(0), super::paths::disjoint(1) as u8 - 1);
    }
}
