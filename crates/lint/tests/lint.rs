//! arrow-lint integration tests: lexer edge cases (each asserted to
//! produce zero false-positive diagnostics), rule firing, pragma
//! semantics, and baseline ratchet behaviour.

use arrow_lint::baseline::{compare, Baseline};
use arrow_lint::lexer::{lex, test_line_ranges, TokKind};
use arrow_lint::{check_source, classify, FileKind};
use std::collections::BTreeMap;

/// Lint a snippet as if it were lib code in a determinism-critical crate,
/// where every rule is in scope.
fn lint_core(src: &str) -> Vec<String> {
    check_source("crates/core/src/snippet.rs", src)
        .into_iter()
        .map(|v| format!("{}:{}", v.rule, v.line))
        .collect()
}

// ---------------------------------------------------------------- lexer

#[test]
fn raw_strings_are_opaque() {
    // Rule tokens inside r#".."# must not fire; the trailing real use must.
    let src = r##"
fn f() {
    let s = r#"HashMap .partial_cmp( Instant "nested quote" panic!"#;
    let t = r"also .unwrap() opaque";
    let u = std::collections::HashMap::new();
}
"##;
    let hits = lint_core(src);
    assert_eq!(hits, vec!["nondeterministic-iteration:5"], "{hits:?}");
}

#[test]
fn raw_string_hash_depth_is_respected() {
    // The "# inside the r##"…"## body does not terminate the literal.
    let src = r###"
fn f() {
    let s = r##"ends with "# not here: HashMap"##;
}
"###;
    assert!(lint_core(src).is_empty());
}

#[test]
fn nested_block_comments_are_opaque() {
    let src = "
fn f() {
    /* outer /* inner HashMap .partial_cmp( */ still comment panic! */
    let x = 1;
}
";
    assert!(lint_core(src).is_empty());
}

#[test]
fn lifetime_vs_char_literal() {
    // 'a as a lifetime must not swallow the rest of the line; 'a' as a
    // char literal must not be parsed as a lifetime + stray quote.
    let src = "
struct S<'a> { x: &'a str }
fn f(c: char) -> bool {
    c == 'a' || c == '\\'' || c == '\\u{1F600}'
}
fn g<'long_lifetime>(v: &'long_lifetime [f64]) -> usize { v.len() }
";
    assert!(lint_core(src).is_empty());
    let toks = lex(src);
    let lifetimes: Vec<&str> =
        toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
    assert_eq!(lifetimes, vec!["a", "a", "long_lifetime", "long_lifetime"]);
    let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
    assert_eq!(chars, 3);
}

#[test]
fn comment_markers_inside_string_literals() {
    // A "//" inside a string is not a comment: the HashMap after it on
    // the same line is real code and must be reported exactly once.
    let src = "
fn f() {
    let url = \"https://example.com/path\"; let m: HashMap<u8, u8> = Default::default();
    let s = \"/* not a comment\"; let n = 1;
}
";
    let hits = lint_core(src);
    assert_eq!(hits, vec!["nondeterministic-iteration:3"], "{hits:?}");
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let src = r#"
fn f() {
    let s = "quote \" then HashMap still inside";
    let c = '\'';
    let b = b"bytes with \" HashMap";
}
"#;
    assert!(lint_core(src).is_empty());
}

#[test]
fn raw_identifiers_lex_as_identifiers() {
    let src = "fn f() { let r#fn = 1; let _ = r#fn + 1; }";
    assert!(lint_core(src).is_empty());
    let toks = lex(src);
    assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "fn" && t.col > 10));
}

#[test]
fn test_region_detection_spans_the_mod() {
    let src = "
fn lib_code() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _: HashMap<u8, u8> = HashMap::new(); }
}
";
    let ranges = test_line_ranges(&lex(src));
    assert_eq!(ranges.len(), 1);
    assert!(ranges[0].0 == 4 && ranges[0].1 >= 9, "{ranges:?}");
    // And the rule respects it: HashMap inside #[cfg(test)] is fine.
    assert!(lint_core(src).is_empty());
}

// ---------------------------------------------------------------- rules

#[test]
fn float_partial_order_fires_everywhere_even_in_tests() {
    let src = "
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let mut v = vec![1.0]; v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }
}
";
    let hits = lint_core(src);
    assert_eq!(hits, vec!["float-partial-order:5"], "{hits:?}");
    // total_cmp is the sanctioned replacement and is silent.
    let ok = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }";
    assert!(lint_core(ok).is_empty());
}

#[test]
fn partial_cmp_definition_is_not_a_call() {
    // Implementing PartialOrd mentions partial_cmp as a fn name, not a
    // `.partial_cmp(` call — no diagnostic.
    let src = "
impl PartialOrd for S {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }
}
";
    assert!(lint_core(src).is_empty());
}

#[test]
fn panic_path_rule_fires_on_unwrap_expect_and_macros() {
    let src = "
pub fn f(x: Option<u8>) -> u8 { x.unwrap() }
pub fn g(x: Option<u8>) -> u8 { x.expect(\"msg\") }
pub fn h() { panic!(\"boom\"); }
pub fn i() { todo!() }
";
    let hits = lint_core(src);
    assert_eq!(
        hits,
        vec![
            "panic-on-input-path:2",
            "panic-on-input-path:3",
            "panic-on-input-path:4",
            "panic-on-input-path:5"
        ],
        "{hits:?}"
    );
}

#[test]
fn wall_clock_rule_scoping() {
    let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }";
    // Fires in core…
    assert!(check_source("crates/core/src/x.rs", src)
        .iter()
        .all(|v| v.rule == "wall-clock-in-core"));
    assert!(!check_source("crates/core/src/x.rs", src).is_empty());
    // …but obs owns timing and bench is a dev tool.
    assert!(check_source("crates/obs/src/x.rs", src).is_empty());
    assert!(check_source("crates/bench/src/x.rs", src).is_empty());
}

#[test]
fn hash_rule_only_in_determinism_crates_and_lib_code() {
    let src = "pub fn f() { let _ = std::collections::HashSet::<u8>::new(); }";
    assert!(!check_source("crates/te/src/x.rs", src).is_empty());
    // topology feeds the scenario universe and sim the soak digests; the
    // daemon's plans are byte-compared. All are determinism-critical.
    assert!(!check_source("crates/topology/src/x.rs", src).is_empty());
    assert!(!check_source("crates/sim/src/x.rs", src).is_empty());
    assert!(!check_source("src/daemon/mod.rs", src).is_empty());
    // obs is egress-only telemetry; the root CLI shim is not.
    assert!(check_source("crates/obs/src/x.rs", src).is_empty());
    assert!(check_source("src/bin/arrow.rs", src).is_empty());
    // Integration tests and benches of determinism crates are exempt.
    assert!(check_source("crates/te/tests/x.rs", src).is_empty());
    assert!(check_source("crates/bench/benches/x.rs", src).is_empty());
}

#[test]
fn classification() {
    assert_eq!(classify("crates/lp/src/simplex.rs"), ("lp".into(), FileKind::Lib));
    assert_eq!(classify("crates/lp/tests/t.rs"), ("lp".into(), FileKind::Test));
    assert_eq!(classify("crates/bench/src/lib.rs"), ("bench".into(), FileKind::Bench));
    assert_eq!(classify("examples/sweep.rs"), ("".into(), FileKind::Example));
    assert_eq!(classify("src/lib.rs"), ("".into(), FileKind::Lib));
}

// -------------------------------------------------------------- pragmas

#[test]
fn justified_pragma_suppresses_same_line_and_next_line() {
    let trailing = "
pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // arrow-lint: allow(panic-on-input-path) — x is produced two lines up and is always Some
";
    assert!(lint_core(trailing).is_empty());
    let own_line = "
pub fn f(x: Option<u8>) -> u8 {
    // arrow-lint: allow(panic-on-input-path) — checked by caller contract
    x.unwrap()
}
";
    assert!(lint_core(own_line).is_empty());
}

#[test]
fn pragma_without_justification_is_rejected() {
    let src = "
pub fn f(x: Option<u8>) -> u8 {
    // arrow-lint: allow(panic-on-input-path)
    x.unwrap()
}
";
    let hits = lint_core(src);
    // The bare pragma is itself a violation AND fails to suppress.
    assert!(hits.contains(&"bad-pragma:3".to_string()), "{hits:?}");
    assert!(hits.contains(&"panic-on-input-path:4".to_string()), "{hits:?}");
}

#[test]
fn pragma_with_unknown_rule_is_rejected() {
    let src = "fn f() {} // arrow-lint: allow(no-such-rule) — because";
    let hits = lint_core(src);
    assert_eq!(hits, vec!["bad-pragma:1"], "{hits:?}");
}

#[test]
fn pragma_only_suppresses_its_named_rule() {
    let src = "
pub fn f(v: &mut [f64], x: Option<u8>) -> u8 {
    // arrow-lint: allow(float-partial-order) — wrong rule for the line below
    x.unwrap()
}
";
    let hits = lint_core(src);
    assert_eq!(hits, vec!["panic-on-input-path:4"], "{hits:?}");
}

#[test]
fn file_pragma_suppresses_the_whole_file() {
    let src = "
// arrow-lint: allow-file(panic-on-input-path) — fixture module; every panic is exercised by tests
pub fn f(x: Option<u8>) -> u8 { x.unwrap() }
pub fn g() { panic!(\"boom\") }
pub fn h(x: Option<u8>) -> u8 { x.expect(\"far from the pragma\") }
";
    assert!(lint_core(src).is_empty());
}

#[test]
fn file_pragma_only_suppresses_its_named_rule() {
    let src = "
// arrow-lint: allow-file(panic-on-input-path) — panics are fine here
pub fn f(x: Option<u8>) -> u8 { let _ = std::collections::HashMap::<u8, u8>::new(); x.unwrap() }
";
    let hits = lint_core(src);
    assert_eq!(hits, vec!["nondeterministic-iteration:3"], "{hits:?}");
}

#[test]
fn file_pragma_after_code_is_rejected() {
    let src = "
pub fn f() {}
// arrow-lint: allow-file(panic-on-input-path) — too late, code precedes it
pub fn g(x: Option<u8>) -> u8 { x.unwrap() }
";
    let hits = lint_core(src);
    assert!(hits.contains(&"bad-pragma:3".to_string()), "{hits:?}");
    assert!(hits.contains(&"panic-on-input-path:4".to_string()), "{hits:?}");
}

#[test]
fn file_pragma_unknown_rule_is_rejected() {
    let src = "// arrow-lint: allow-file(no-such-rule) — because\nfn f() {}";
    let hits = lint_core(src);
    assert_eq!(hits, vec!["bad-pragma:1"], "{hits:?}");
}

#[test]
fn file_pragma_without_justification_is_rejected() {
    let src = "
// arrow-lint: allow-file(panic-on-input-path)
pub fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
    let hits = lint_core(src);
    // The bare file pragma is itself a violation AND fails to suppress.
    assert!(hits.contains(&"bad-pragma:2".to_string()), "{hits:?}");
    assert!(hits.contains(&"panic-on-input-path:3".to_string()), "{hits:?}");
}

#[test]
fn alternate_separators_are_accepted() {
    for sep in ["—", "--", ":"] {
        let src = format!(
            "pub fn f(x: Option<u8>) -> u8 {{ x.unwrap() }} \
             // arrow-lint: allow(panic-on-input-path) {sep} invariant holds"
        );
        assert!(lint_core(&src).is_empty(), "separator {sep:?} rejected");
    }
}

// ------------------------------------------------------------- baseline

#[test]
fn baseline_round_trip_and_ratchet() {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    counts.insert(("panic-on-input-path".into(), "crates/lp/src/a.rs".into()), 3);
    counts.insert(("wall-clock-in-core".into(), "crates/core/src/b.rs".into()), 1);
    let base = Baseline::from_counts(&counts);
    let parsed = Baseline::parse(&base.serialize()).expect("round trip");
    assert_eq!(parsed.entries, base.entries);

    // Exact match: clean.
    assert!(compare(&parsed, &counts).is_clean());

    // One more violation: regression.
    let mut worse = counts.clone();
    *worse.get_mut(&("panic-on-input-path".into(), "crates/lp/src/a.rs".into())).expect("key") = 4;
    let r = compare(&parsed, &worse);
    assert_eq!(r.regressions.len(), 1);
    assert!(r.stale.is_empty());

    // One fixed: the ratchet demands the baseline be tightened.
    let mut better = counts.clone();
    better.remove(&("wall-clock-in-core".into(), "crates/core/src/b.rs".into()));
    let r = compare(&parsed, &better);
    assert!(r.regressions.is_empty());
    assert_eq!(r.stale.len(), 1);
}

#[test]
fn baseline_rejects_garbage() {
    assert!(Baseline::parse("only-two\tfields").is_err());
    assert!(Baseline::parse("rule\tpath\tnot-a-number").is_err());
    assert!(Baseline::parse("# comment\n\n").expect("comments ok").entries.is_empty());
}
