//! Interprocedural analysis integration tests: parser item tree,
//! call-graph resolution, panic-reachability chains, determinism taint,
//! `--explain` rendering — all over the fixture mini-crate — plus the
//! linter's self-check on its own sources.

use arrow_lint::{
    check_source, determinism_taint, explain_chain, in_product_graph, module_path_of,
    panic_reachability, parse_file, render_chain, CallGraph, ParsedFile,
};
use std::collections::BTreeMap;

const PANICS_SRC: &str = include_str!("fixtures/mini_panics.rs");
const TAINT_SRC: &str = include_str!("fixtures/mini_taint.rs");

/// The fixture sources parsed under synthetic product-lib paths (their
/// real paths live under `tests/`, which `in_product_graph` excludes).
fn fixture() -> Vec<ParsedFile> {
    vec![
        parse_file("crates/mini/src/lib.rs", PANICS_SRC),
        parse_file("crates/mini/src/taint.rs", TAINT_SRC),
    ]
}

fn graph(files: &[ParsedFile]) -> (CallGraph, BTreeMap<&str, &ParsedFile>) {
    let refs: Vec<&ParsedFile> = files.iter().collect();
    let by_path: BTreeMap<&str, &ParsedFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    (CallGraph::build(&refs), by_path)
}

// ---------------------------------------------------------------- parser

#[test]
fn module_paths_follow_workspace_layout() {
    assert_eq!(module_path_of("crates/te/src/schemes/arrow.rs"), vec!["te", "schemes", "arrow"]);
    assert_eq!(module_path_of("crates/lp/src/lib.rs"), vec!["lp"]);
    assert_eq!(module_path_of("src/daemon/mod.rs"), vec!["arrow", "daemon"]);
    assert_eq!(module_path_of("src/bin/arrow.rs"), vec!["arrow", "bin", "arrow"]);
}

#[test]
fn parser_recovers_the_item_tree() {
    let files = fixture();
    let golden: Vec<(String, Option<String>, bool)> =
        files[0].fns.iter().map(|f| (f.qual.clone(), f.owner.clone(), f.is_test)).collect();
    let want = [
        ("mini::Planner::plan_epoch", Some("Planner"), false),
        ("mini::Planner::select_winning", Some("Planner"), false),
        ("mini::paths::disjoint", None, false),
        ("mini::paths::pick", None, false),
        ("mini::tests::test_code_is_outside_the_graph", None, true),
    ];
    assert_eq!(golden.len(), want.len(), "{golden:?}");
    for ((qual, owner, is_test), (wq, wo, wt)) in golden.iter().zip(want) {
        assert_eq!(qual, wq);
        assert_eq!(owner.as_deref(), wo);
        assert_eq!(*is_test, wt, "{wq}");
    }
    // Bodies are real token ranges, not empty placeholders.
    assert!(files[0].fns.iter().all(|f| f.body.1 > f.body.0));
}

// ------------------------------------------------------------ call graph

#[test]
fn graph_excludes_test_fns_and_resolves_specs() {
    let files = fixture();
    let (g, _) = graph(&files);
    assert!(g.resolve_spec("tests::test_code_is_outside_the_graph").is_empty());
    assert_eq!(g.resolve_spec("Planner::plan_epoch").len(), 1);
    assert_eq!(g.resolve_spec("paths::pick").len(), 1);
    // An entry resolves through any qual suffix, not just owner::name.
    assert_eq!(g.resolve_spec("mini::paths::pick"), g.resolve_spec("paths::pick"));
}

#[test]
fn edges_cover_method_path_and_free_calls() {
    let files = fixture();
    let (g, _) = graph(&files);
    let edge = |from: &str, to: &str| {
        let f = g.resolve_spec(from)[0];
        let t = g.resolve_spec(to)[0];
        g.edges[f].iter().any(|e| e.to == t)
    };
    assert!(edge("Planner::plan_epoch", "Planner::select_winning"), "method call");
    assert!(edge("Planner::select_winning", "paths::disjoint"), "module-path call");
    assert!(edge("paths::disjoint", "paths::pick"), "free call");
    // External qualifiers (std::…, Vec::…) resolve to nothing.
    let pick = g.resolve_spec("paths::pick")[0];
    assert!(g.edges[pick].is_empty());
}

#[test]
fn dot_export_marks_panicking_nodes() {
    let files = fixture();
    let (g, _) = graph(&files);
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph callgraph {"), "{dot}");
    assert!(dot.contains("label=\"mini::paths::pick\", color=red"), "{dot}");
    assert!(dot.contains("label=\"mini::taint::collect_ids\", color=orange"), "{dot}");
}

// ----------------------------------------------------- panic reachability

#[test]
fn panic_chain_is_reported_with_full_path() {
    let files = fixture();
    let (g, by_path) = graph(&files);
    let findings = panic_reachability(&g, &by_path, &["Planner::plan_epoch".to_string()]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "panic-reachability");
    assert_eq!(f.file, "crates/mini/src/lib.rs");
    assert_eq!(f.site.what, "unwrap");
    assert_eq!(
        render_chain(&g, f),
        "plan_epoch → Planner::select_winning → paths::disjoint → paths::pick → unwrap"
    );
    let explained = explain_chain(&g, f);
    assert!(explained.contains("reachable from `Planner::plan_epoch`"), "{explained}");
    // Every frame carries a clickable file:line anchor.
    assert_eq!(explained.matches("crates/mini/src/lib.rs:").count(), 5, "{explained}");
}

#[test]
fn unreachable_panics_stay_silent() {
    let files = fixture();
    let (g, by_path) = graph(&files);
    // pick panics, but nothing in the taint file reaches it.
    let findings = panic_reachability(&g, &by_path, &["TicketSet::digest".to_string()]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn pragma_justifies_a_reachable_panic() {
    let src = PANICS_SRC.replace(
        ".unwrap()",
        ".unwrap() // arrow-lint: allow(panic-reachability) — fixture invariant: k >= 1",
    );
    let files = vec![parse_file("crates/mini/src/lib.rs", src.as_str())];
    let (g, by_path) = graph(&files);
    let findings = panic_reachability(&g, &by_path, &["Planner::plan_epoch".to_string()]);
    assert!(findings.is_empty(), "{findings:?}");
}

// ----------------------------------------------------- determinism taint

#[test]
fn hash_iteration_taints_the_digest_sink() {
    let files = fixture();
    let (g, by_path) = graph(&files);
    let findings = determinism_taint(&g, &by_path, &["TicketSet::digest".to_string()]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "determinism-taint");
    assert_eq!(f.file, "crates/mini/src/taint.rs");
    assert_eq!(f.site.what, "HashMap");
    assert_eq!(render_chain(&g, f), "digest → taint::collect_ids → HashMap");
}

#[test]
fn derive_seed_rng_is_not_a_source() {
    let files = fixture();
    let (g, _) = graph(&files);
    // `seeded` constructs an RNG, but the seed routes through derive_seed
    // on the same line, so it carries no source site.
    let seeded = g.resolve_spec("taint::seeded")[0];
    assert!(g.nodes[seeded].source_sites.is_empty(), "{:?}", g.nodes[seeded].source_sites);
}

// ------------------------------------------------------------ graph scope

#[test]
fn product_graph_scope() {
    assert!(in_product_graph("crates/core/src/controller.rs"));
    assert!(in_product_graph("src/daemon/mod.rs"));
    assert!(!in_product_graph("crates/lint/src/main.rs"), "dev tool");
    assert!(!in_product_graph("crates/bench/src/lib.rs"), "dev tool");
    assert!(!in_product_graph("crates/te/tests/determinism.rs"), "test target");
    assert!(!in_product_graph("examples/sweep.rs"), "example");
}

// -------------------------------------------------------------- self-check

#[test]
fn linter_self_check_is_clean() {
    let src_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("lint src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).expect("utf-8 name").to_string();
        let src = std::fs::read_to_string(&path).expect("readable source");
        let violations = check_source(&format!("crates/lint/src/{name}"), &src);
        assert!(violations.is_empty(), "crates/lint/src/{name}: {violations:?}");
        checked += 1;
    }
    assert!(checked >= 8, "expected the full lint crate, saw {checked} files");
}
