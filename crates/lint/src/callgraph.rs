//! Conservative workspace call graph.
//!
//! Nodes are the [`FnDef`]s the parser found; edges come from three call
//! shapes in body token streams:
//!
//! * **free calls** `foo(` — resolved to every workspace free fn named
//!   `foo` (imports are not tracked, so all crates are candidates);
//! * **method calls** `.foo(` (turbofish allowed) — resolved to every
//!   `impl`/`trait` fn named `foo` anywhere in the workspace;
//! * **path calls** `Qual::foo(` — resolved through the qualifier: an
//!   `impl` self type, a module segment, or a crate name. An *unknown*
//!   qualifier (e.g. `Vec::new`) resolves to nothing — it names external
//!   code.
//!
//! This is name-based class-hierarchy-style resolution: edges
//! over-approximate the real graph (two unrelated `solve` methods are
//! merged) and never under-approximate it on the modelled shapes, which
//! is the right polarity for proving panic *absence* along entry paths.
//!
//! Each node also carries its direct **panic sites** (`.unwrap()`,
//! `.expect()`, `panic!`-family macros) and **determinism sources**
//! (`HashMap`/`HashSet`, `Instant`/`SystemTime`, RNG construction not
//! routed through `derive_seed`) so the analyses in [`crate::analysis`]
//! can walk the graph once and judge what each function can reach.

use crate::lexer::{TokKind, Token};
use crate::parser::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Keywords that look like `ident (` in expression position but are not
/// calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "else", "let", "in", "as", "move", "ref",
    "mut", "fn", "impl", "pub", "use", "where", "unsafe", "async", "await", "dyn", "box", "yield",
    "const", "static", "type", "enum", "struct", "trait", "mod", "crate", "self", "Self", "super",
    "break", "continue", "Some", "Ok", "Err", "None",
];

/// A direct panic or determinism-source site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found: `unwrap`, `expect`, `panic!`, `HashMap`,
    /// `Instant`, `seed_from_u64`, …
    pub what: String,
}

/// One node of the call graph: a function plus its direct sites.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Bare name.
    pub simple: String,
    /// `impl`/`trait` owner, if a method.
    pub owner: Option<String>,
    /// Fully qualified `crate::module::Owner::name`.
    pub qual: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Direct panic sites (unwrap/expect/panic!-family).
    pub panic_sites: Vec<Site>,
    /// Direct determinism-source sites.
    pub source_sites: Vec<Site>,
}

/// A call edge, kept with the call-site line for `--explain` output.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, in file order.
    pub nodes: Vec<FnNode>,
    /// Outgoing edges per node, sorted by callee index, deduped.
    pub edges: Vec<Vec<Edge>>,
}

/// One unresolved call observed in a body.
#[derive(Debug)]
enum CallShape {
    Free(String),
    Method(String),
    Path(String, String),
}

impl CallGraph {
    /// Builds the graph from parsed files. Test fns are excluded —
    /// nothing in product code can call into `#[cfg(test)]` items.
    pub fn build(files: &[&ParsedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut bodies: Vec<(usize, usize, usize)> = Vec::new(); // (file idx, body start, body end)
        for (fi, pf) in files.iter().enumerate() {
            for f in &pf.fns {
                if f.is_test {
                    continue;
                }
                nodes.push(FnNode {
                    simple: f.simple.clone(),
                    owner: f.owner.clone(),
                    qual: f.qual.clone(),
                    file: pf.rel_path.clone(),
                    line: f.line,
                    panic_sites: Vec::new(),
                    source_sites: Vec::new(),
                });
                bodies.push((fi, f.body.0, f.body.1));
            }
        }

        // Name indices for resolution (owned keys: the node table is
        // mutated below while these maps are consulted).
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut module_segs: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            match &n.owner {
                Some(o) => {
                    method_by_name.entry(n.simple.clone()).or_default().push(id);
                    by_owner.entry((o.clone(), n.simple.clone())).or_default().push(id);
                }
                None => free_by_name.entry(n.simple.clone()).or_default().push(id),
            }
        }
        for (id, (fi, _, _)) in bodies.iter().enumerate() {
            // Every module-path segment (crate included) qualifies the fn.
            for f in &files[*fi].fns {
                if f.qual == nodes[id].qual {
                    for seg in &f.modules {
                        module_segs.entry(seg.clone()).or_default().push(id);
                    }
                    break;
                }
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (id, &(fi, start, end)) in bodies.iter().enumerate() {
            let pf = files[fi];
            let (calls, panics, sources) = scan_body(&pf.code, start, end);
            nodes[id].panic_sites = panics;
            nodes[id].source_sites = sources;
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for (shape, line) in calls {
                let targets: Vec<usize> = match &shape {
                    CallShape::Free(name) => free_by_name.get(name).cloned().unwrap_or_default(),
                    CallShape::Method(name) => {
                        method_by_name.get(name).cloned().unwrap_or_default()
                    }
                    CallShape::Path(qual, name) => {
                        let qual = if qual == "Self" || qual == "self" {
                            nodes[id].owner.clone().unwrap_or_default()
                        } else {
                            qual.clone()
                        };
                        if let Some(ids) = by_owner.get(&(qual.clone(), name.clone())) {
                            ids.clone()
                        } else if let Some(in_mod) = module_segs.get(&qual) {
                            in_mod
                                .iter()
                                .copied()
                                .filter(|&t| nodes[t].simple == *name && nodes[t].owner.is_none())
                                .collect()
                        } else {
                            Vec::new() // external qualifier (Vec::new, std::…)
                        }
                    }
                };
                for t in targets {
                    if seen.insert(t) {
                        edges[id].push(Edge { to: t, line });
                    }
                }
            }
            edges[id].sort_by_key(|e| e.to);
        }
        CallGraph { nodes, edges }
    }

    /// Node indices whose qualified name ends with the `::`-separated
    /// segments of `spec` (e.g. `ArrowController::plan_epoch` or
    /// `solver::solve_batch`).
    pub fn resolve_spec(&self, spec: &str) -> Vec<usize> {
        let want: Vec<&str> = spec.split("::").collect();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let segs: Vec<&str> = n.qual.split("::").collect();
                segs.len() >= want.len() && segs[segs.len() - want.len()..] == want[..]
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Graphviz rendering of the whole graph (one node per fn, short
    /// labels, deterministic order) for the CI artifact.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let color = if !n.panic_sites.is_empty() {
                ", color=red"
            } else if !n.source_sites.is_empty() {
                ", color=orange"
            } else {
                ""
            };
            out.push_str(&format!("  n{} [label=\"{}\"{}];\n", i, n.qual, color));
        }
        for (from, outs) in self.edges.iter().enumerate() {
            for e in outs {
                out.push_str(&format!("  n{} -> n{};\n", from, e.to));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Walks one body range, returning calls, panic sites, and determinism
/// sources. Nested `fn` bodies are skipped — they are separate nodes.
fn scan_body(
    code: &[Token],
    start: usize,
    end: usize,
) -> (Vec<(CallShape, u32)>, Vec<Site>, Vec<Site>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let mut sources = Vec::new();

    // Lines in this body that route a seed through the blessed derivation
    // helpers; RNG construction on those lines is deterministic by
    // construction.
    let derived_lines: BTreeSet<u32> = code[start..end]
        .iter()
        .filter(|t| t.is_ident("derive_seed") || t.is_ident("fractional_seed"))
        .map(|t| t.line)
        .collect();

    let mut i = start;
    while i < end {
        let t = &code[i];
        // Skip nested fn bodies (they are separate graph nodes).
        if t.is_ident("fn") && i + 1 < end && code[i + 1].kind == TokKind::Ident {
            let mut j = i + 2;
            while j < end && !code[j].is_punct('{') && !code[j].is_punct(';') {
                j += 1;
            }
            if j < end && code[j].is_punct('{') {
                let mut depth = 0usize;
                while j < end {
                    if code[j].is_punct('{') {
                        depth += 1;
                    } else if code[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Macro invocation: panic!-family is a panic site; every other
        // macro is transparent (its argument tokens still get scanned).
        if i + 1 < end && code[i + 1].is_punct('!') {
            if ["panic", "todo", "unimplemented", "unreachable"].iter().any(|m| t.is_ident(m)) {
                panics.push(Site { line: t.line, col: t.col, what: format!("{}!", t.text) });
            }
            i += 2;
            continue;
        }
        // Determinism sources by bare identifier.
        match t.text.as_str() {
            "HashMap" | "HashSet" | "Instant" | "SystemTime" | "thread_rng" | "from_entropy" => {
                sources.push(Site { line: t.line, col: t.col, what: t.text.clone() });
            }
            "seed_from_u64" | "from_seed" if !derived_lines.contains(&t.line) => {
                sources.push(Site { line: t.line, col: t.col, what: t.text.clone() });
            }
            _ => {}
        }
        // Call shapes: `name(`, `.name(`, `Qual::name(`, with an optional
        // turbofish between the name and the parenthesis.
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j + 2 < end
            && code[j].is_punct(':')
            && code[j + 1].is_punct(':')
            && code[j + 2].is_punct('<')
        {
            // Turbofish `name::<…>(` — skip to the matching `>`.
            let mut depth = 0isize;
            j += 2;
            while j < end {
                if code[j].is_punct('<') {
                    depth += 1;
                } else if code[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j < end && code[j].is_punct('(') {
            let prev_dot = i >= 1 && code[i - 1].is_punct('.');
            let prev_path = i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':');
            if prev_dot {
                if t.is_ident("unwrap") || t.is_ident("expect") {
                    panics.push(Site { line: t.line, col: t.col, what: t.text.clone() });
                } else {
                    calls.push((CallShape::Method(t.text.clone()), t.line));
                }
            } else if prev_path {
                // Qualifier is the ident before the `::` (skip a closing
                // turbofish `>` — `<Foo as T>::f` stays unresolved).
                if i >= 3 && code[i - 3].kind == TokKind::Ident {
                    calls.push((CallShape::Path(code[i - 3].text.clone(), t.text.clone()), t.line));
                }
            } else {
                calls.push((CallShape::Free(t.text.clone()), t.line));
            }
        }
        i += 1;
    }
    (calls, panics, sources)
}
