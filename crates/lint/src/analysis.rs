//! Interprocedural analyses over the workspace call graph.
//!
//! **panic-reachability** — from configured entry points (the controller
//! epoch path, the batched solver, the daemon loop), prove that no call
//! path reaches `unwrap`/`expect`/`panic!`-family code in product
//! libraries. A single reachable `unwrap` under
//! `ArrowController::plan_epoch` kills `arrow serve` mid-epoch instead of
//! failing one request, so this is the backstop the §5 five-minute epoch
//! contract leans on. Violations carry the full call chain
//! (`plan_epoch → select_winning → tunnels::disjoint → unwrap`), printed
//! frame-by-frame under `--explain`.
//!
//! **determinism-taint** — sources of nondeterminism (`HashMap`/`HashSet`
//! iteration order, `Instant`/`SystemTime` reads, RNG construction not
//! routed through `derive_seed`) must not be reachable from sink
//! functions that produce digests, `ScenarioId`s, tickets, or plans —
//! the artifacts the byte-identical sharding and soak tests fingerprint.
//!
//! Both analyses honour pragmas: a site justified for the flow rule *or*
//! for its per-file base rule (`panic-on-input-path`,
//! `nondeterministic-iteration`, `wall-clock-in-core`) is accepted debt
//! with a written rationale and does not open a violation.

use crate::callgraph::{CallGraph, Site};
use crate::parser::ParsedFile;
use crate::rules::Violation;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Default panic-reachability entry points (suffix-matched against
/// qualified names; extend with `--entry`).
pub const DEFAULT_ENTRIES: &[&str] = &[
    "ArrowController::plan_epoch",
    "ArrowController::plan",
    "ArrowController::plan_warm",
    "solver::solve_batch",
    "daemon::serve",
    "lottery::generate_tickets",
];

/// Default determinism-taint sinks: producers of digests, `ScenarioId`s,
/// tickets, and plans (suffix-matched; extend with `--sink`).
pub const DEFAULT_SINKS: &[&str] = &[
    "ScenarioId::of_cut",
    "TicketSet::digest",
    "TicketSet::merge",
    "Model::structure_digest",
    "lottery::generate_tickets",
    "telemetry::generate_tickets",
    "failures::compile_universe",
    "ArrowController::plan",
    "ArrowController::plan_warm",
    "ArrowController::plan_epoch",
];

/// Whether a workspace-relative path participates in the call graph:
/// product library code only — dev tools (`crates/lint`, `crates/bench`)
/// and test/bench/example targets are not linked into the controller.
pub fn in_product_graph(rel_path: &str) -> bool {
    if rel_path.starts_with("crates/lint/") || rel_path.starts_with("crates/bench/") {
        return false;
    }
    let (_, kind) = crate::rules::classify(rel_path);
    kind == crate::rules::FileKind::Lib
}

/// The crate directory name a path belongs to (`arrow` for the root
/// package).
fn crate_of(rel_path: &str) -> &str {
    rel_path.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("arrow")
}

/// One interprocedural finding: a site plus the call chain that reaches
/// it from an entry or sink.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `panic-reachability` or `determinism-taint`.
    pub rule: &'static str,
    /// File containing the offending site.
    pub file: String,
    /// The offending site.
    pub site: Site,
    /// Node indices from the entry/sink (first) to the containing fn
    /// (last).
    pub chain: Vec<usize>,
    /// The entry/sink spec that anchored the chain.
    pub anchor: String,
}

/// Short human frame for a node: `Owner::name` for methods,
/// `module::name` otherwise.
pub fn frame_label(g: &CallGraph, id: usize) -> String {
    let n = &g.nodes[id];
    let segs: Vec<&str> = n.qual.split("::").collect();
    if segs.len() >= 2 {
        format!("{}::{}", segs[segs.len() - 2], segs[segs.len() - 1])
    } else {
        n.simple.clone()
    }
}

/// Compact one-line chain: `plan_epoch → select_winning →
/// tunnels::disjoint → unwrap`.
pub fn render_chain(g: &CallGraph, f: &Finding) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, &id) in f.chain.iter().enumerate() {
        if k == 0 {
            parts.push(g.nodes[id].simple.clone());
        } else {
            parts.push(frame_label(g, id));
        }
    }
    parts.push(f.site.what.clone());
    parts.join(" → ")
}

/// Frame-by-frame `--explain` rendering with file:line anchors.
pub fn explain_chain(g: &CallGraph, f: &Finding) -> String {
    let mut out = String::new();
    out.push_str(&format!("[{}] `{}` reachable from `{}`:\n", f.rule, f.site.what, f.anchor));
    for &id in &f.chain {
        let n = &g.nodes[id];
        out.push_str(&format!("    {}:{}  {}\n", n.file, n.line, n.qual));
    }
    out.push_str(&format!("    {}:{}  {}\n", f.file, f.site.line, f.site.what));
    out
}

/// Pragma lookup: is `line` of `file` covered by a pragma for any rule in
/// `rules`?
fn justified(files: &BTreeMap<&str, &ParsedFile>, file: &str, line: u32, rules: &[&str]) -> bool {
    files.get(file).is_some_and(|pf| {
        pf.pragmas
            .iter()
            .any(|p| rules.contains(&p.rule.as_str()) && line >= p.from_line && line <= p.to_line)
    })
}

/// Breadth-first walk from `roots`, recording the parent of each node the
/// first time it is reached (shortest chains, deterministic order).
fn bfs(g: &CallGraph, roots: &[usize]) -> Vec<Option<usize>> {
    // parent[i] = Some(caller) once reached; roots are their own parents.
    let mut parent: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut queue = VecDeque::new();
    for &r in roots {
        if parent[r].is_none() {
            parent[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &g.edges[u] {
            if parent[e.to].is_none() {
                parent[e.to] = Some(u);
                queue.push_back(e.to);
            }
        }
    }
    parent
}

/// Reconstructs the chain root → … → `node` from a BFS parent array.
fn chain_to(parent: &[Option<usize>], node: usize) -> Vec<usize> {
    let mut chain = vec![node];
    let mut at = node;
    while let Some(p) = parent[at] {
        if p == at {
            break;
        }
        chain.push(p);
        at = p;
    }
    chain.reverse();
    chain
}

/// Panic-reachability: every `unwrap`/`expect`/`panic!`-family site
/// reachable from an entry spec, minus pragma-justified sites.
pub fn panic_reachability(
    g: &CallGraph,
    files: &BTreeMap<&str, &ParsedFile>,
    entries: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen_sites: BTreeMap<(String, u32, u32), ()> = BTreeMap::new();
    for spec in entries {
        let roots = g.resolve_spec(spec);
        if roots.is_empty() {
            continue;
        }
        let parent = bfs(g, &roots);
        for (id, n) in g.nodes.iter().enumerate() {
            if parent[id].is_none() {
                continue;
            }
            for site in &n.panic_sites {
                let key = (n.file.clone(), site.line, site.col);
                if seen_sites.contains_key(&key) {
                    continue;
                }
                if justified(
                    files,
                    &n.file,
                    site.line,
                    &["panic-reachability", "panic-on-input-path"],
                ) {
                    continue;
                }
                seen_sites.insert(key, ());
                findings.push(Finding {
                    rule: "panic-reachability",
                    file: n.file.clone(),
                    site: site.clone(),
                    chain: chain_to(&parent, id),
                    anchor: spec.clone(),
                });
            }
        }
    }
    findings
}

/// Determinism-taint: every nondeterminism source reachable from a sink
/// spec, minus pragma-justified sites and exempt crates (`obs` is
/// egress-only telemetry; wall clocks are legal where
/// `wall-clock-in-core` already exempts them).
pub fn determinism_taint(
    g: &CallGraph,
    files: &BTreeMap<&str, &ParsedFile>,
    sinks: &[String],
) -> Vec<Finding> {
    let wall_clock_exempt = ["obs", "bench", "lint"];
    let mut findings = Vec::new();
    let mut seen_sites: BTreeMap<(String, u32, u32), ()> = BTreeMap::new();
    for spec in sinks {
        let roots = g.resolve_spec(spec);
        if roots.is_empty() {
            continue;
        }
        let parent = bfs(g, &roots);
        for (id, n) in g.nodes.iter().enumerate() {
            if parent[id].is_none() {
                continue;
            }
            let krate = crate_of(&n.file);
            for site in &n.source_sites {
                let base_rule = match site.what.as_str() {
                    "HashMap" | "HashSet" => {
                        if krate == "obs" {
                            continue;
                        }
                        "nondeterministic-iteration"
                    }
                    "Instant" | "SystemTime" => {
                        if wall_clock_exempt.contains(&krate) {
                            continue;
                        }
                        "wall-clock-in-core"
                    }
                    _ => "determinism-taint", // RNG construction
                };
                let key = (n.file.clone(), site.line, site.col);
                if seen_sites.contains_key(&key) {
                    continue;
                }
                if justified(files, &n.file, site.line, &["determinism-taint", base_rule]) {
                    continue;
                }
                seen_sites.insert(key, ());
                findings.push(Finding {
                    rule: "determinism-taint",
                    file: n.file.clone(),
                    site: site.clone(),
                    chain: chain_to(&parent, id),
                    anchor: spec.clone(),
                });
            }
        }
    }
    findings
}

/// Converts a finding into the per-file [`Violation`] shape the baseline
/// ratchet and reports understand.
pub fn to_violation(g: &CallGraph, f: &Finding) -> (String, Violation) {
    let msg = format!(
        "{} from `{}`: {}",
        if f.rule == "panic-reachability" { "panic path" } else { "nondeterminism flow" },
        f.anchor,
        render_chain(g, f)
    );
    (f.file.clone(), Violation { rule: f.rule, line: f.site.line, col: f.site.col, msg })
}
