//! A hand-written Rust lexer — just enough structure for token-level
//! linting without false positives.
//!
//! The rules only need identifiers, punctuation and comment text, but to
//! report *zero* false positives the lexer must get the hard parts of
//! Rust's lexical grammar right: raw strings (`r#".."#` with any hash
//! depth), byte/C strings, nested block comments (`/* /* */ */`), raw
//! identifiers (`r#fn`), and the `'a` lifetime vs `'a'` char-literal
//! ambiguity. Everything inside a string or comment is opaque to the
//! rules; comments are kept as tokens so the pragma scanner can read
//! them.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, …
    Str,
    /// A character or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation byte (`.`, `(`, `!`, …).
    Punct,
    /// A line or block comment; `text` is the body without delimiters.
    Comment,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included per class).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl<'a> Lexer<'a> {
    fn peek(&self, k: usize) -> u8 {
        self.b.get(self.i + k).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.b[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }

    /// Consumes an identifier run and returns its text.
    fn ident(&mut self) -> String {
        let start = self.i;
        while !self.at_end() && is_ident_continue(self.peek(0)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.b[start..self.i]).into_owned()
    }

    /// Consumes a `"…"` body (opening quote already consumed) honouring
    /// backslash escapes.
    fn quoted_string(&mut self) {
        while !self.at_end() {
            match self.bump() {
                b'\\' if !self.at_end() => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body after the `r`/`br`/`cr` prefix: zero or
    /// more `#`, a `"`, then anything until `"` followed by the same
    /// number of `#`. Returns `false` when this is not actually a raw
    /// string (i.e. a raw identifier like `r#fn`).
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(hashes) != b'"' {
            return false; // raw identifier, e.g. r#fn
        }
        for _ in 0..=hashes {
            self.bump(); // the #s and the opening quote
        }
        while !self.at_end() {
            if self.bump() == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        true
    }

    /// Consumes a numeric literal (integers, floats, exponents, radix
    /// prefixes, underscores, suffixes like `f64`).
    fn number(&mut self) {
        while !self.at_end() && is_ident_continue(self.peek(0)) {
            let c = self.bump();
            // `1e-3` / `1E+9`: the sign belongs to the literal.
            if (c == b'e' || c == b'E')
                && (self.peek(0) == b'+' || self.peek(0) == b'-')
                && self.peek(1).is_ascii_digit()
            {
                self.bump();
            }
        }
        // A fractional part only if `.` is followed by a digit — `1.max()`
        // style method calls keep the dot as punctuation.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            self.number();
        }
    }
}

/// Lexes `src` into a token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { b: src.as_bytes(), i: 0, line: 1, col: 1 };
    let mut toks: Vec<Token> = Vec::new();
    while !lx.at_end() {
        let c = lx.peek(0);
        if c.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        // Line comment (//, ///, //!).
        if c == b'/' && lx.peek(1) == b'/' {
            lx.bump();
            lx.bump();
            let start = lx.i;
            while !lx.at_end() && lx.peek(0) != b'\n' {
                lx.bump();
            }
            let text = String::from_utf8_lossy(&lx.b[start..lx.i]).into_owned();
            toks.push(Token { kind: TokKind::Comment, text, line, col });
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && lx.peek(1) == b'*' {
            lx.bump();
            lx.bump();
            let start = lx.i;
            let mut depth = 1usize;
            let mut end = lx.i;
            while !lx.at_end() && depth > 0 {
                if lx.peek(0) == b'/' && lx.peek(1) == b'*' {
                    lx.bump();
                    lx.bump();
                    depth += 1;
                } else if lx.peek(0) == b'*' && lx.peek(1) == b'/' {
                    depth -= 1;
                    end = lx.i;
                    lx.bump();
                    lx.bump();
                } else {
                    lx.bump();
                }
            }
            let text = String::from_utf8_lossy(&lx.b[start..end.max(start)]).into_owned();
            toks.push(Token { kind: TokKind::Comment, text, line, col });
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            lx.bump();
            lx.quoted_string();
            toks.push(Token { kind: TokKind::Str, text: String::new(), line, col });
            continue;
        }
        // Lifetime vs char literal.
        if c == b'\'' {
            if lx.peek(1) == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{1F600}'.
                lx.bump();
                while !lx.at_end() {
                    match lx.bump() {
                        b'\\' if !lx.at_end() => {
                            lx.bump();
                        }
                        b'\'' => break,
                        _ => {}
                    }
                }
                toks.push(Token { kind: TokKind::Char, text: String::new(), line, col });
            } else if lx.peek(2) == b'\'' && lx.peek(1) != b'\'' {
                // 'x' — a one-byte char literal ('a' beats lifetime 'a).
                lx.bump();
                lx.bump();
                lx.bump();
                toks.push(Token { kind: TokKind::Char, text: String::new(), line, col });
            } else if is_ident_start(lx.peek(1)) {
                // 'a, 'static — a lifetime, not an unterminated char.
                lx.bump();
                let name = lx.ident();
                toks.push(Token { kind: TokKind::Lifetime, text: name, line, col });
            } else {
                // Multi-byte char literal like 'é', or stray quote.
                lx.bump();
                let mut consumed = 0;
                while !lx.at_end() && consumed < 6 && lx.peek(0) != b'\'' {
                    lx.bump();
                    consumed += 1;
                }
                if lx.peek(0) == b'\'' {
                    lx.bump();
                }
                toks.push(Token { kind: TokKind::Char, text: String::new(), line, col });
            }
            continue;
        }
        // Identifier, keyword, or a string-literal prefix (r"", b"", …).
        if is_ident_start(c) {
            let word = lx.ident();
            let raw_prefix = matches!(word.as_str(), "r" | "br" | "cr");
            let byte_prefix = matches!(word.as_str(), "b" | "c");
            if raw_prefix && (lx.peek(0) == b'"' || lx.peek(0) == b'#') {
                if lx.raw_string() {
                    toks.push(Token { kind: TokKind::Str, text: String::new(), line, col });
                } else {
                    // `r#ident` — a raw identifier.
                    lx.bump(); // '#'
                    let name = lx.ident();
                    toks.push(Token { kind: TokKind::Ident, text: name, line, col });
                }
                continue;
            }
            if byte_prefix && lx.peek(0) == b'"' {
                lx.bump();
                lx.quoted_string();
                toks.push(Token { kind: TokKind::Str, text: String::new(), line, col });
                continue;
            }
            if word == "b" && lx.peek(0) == b'\'' {
                // Byte literal b'x' / b'\n'.
                lx.bump();
                while !lx.at_end() {
                    match lx.bump() {
                        b'\\' if !lx.at_end() => {
                            lx.bump();
                        }
                        b'\'' => break,
                        _ => {}
                    }
                }
                toks.push(Token { kind: TokKind::Char, text: String::new(), line, col });
                continue;
            }
            toks.push(Token { kind: TokKind::Ident, text: word, line, col });
            continue;
        }
        if c.is_ascii_digit() {
            lx.number();
            toks.push(Token { kind: TokKind::Num, text: String::new(), line, col });
            continue;
        }
        // Anything else (including non-ASCII bytes outside strings) is a
        // single punctuation byte.
        lx.bump();
        toks.push(Token { kind: TokKind::Punct, text: (c as char).to_string(), line, col });
    }
    toks
}

/// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// The scan finds the attribute, skips any further attributes, then
/// extends the range to the end of the annotated item: the matching `}` of
/// its first brace block, or the first top-level `;` for bodyless items.
pub fn test_line_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Parse one attribute `#[ … ]` and classify it.
        let attr_start_line = code[i].line;
        let mut j = i + 2;
        let mut depth = 1usize; // inside [ ]
        let mut is_test_attr = false;
        if j < code.len() && (code[j].is_ident("test") || code[j].is_ident("cfg")) {
            let head_is_cfg = code[j].is_ident("cfg");
            if code[j].is_ident("test") && j + 1 < code.len() && code[j + 1].is_punct(']') {
                is_test_attr = true;
            }
            if head_is_cfg {
                // #[cfg(test)] or #[cfg(all(test, …))] — any `test` ident
                // inside the cfg predicate counts.
                let mut k = j + 1;
                let mut d = 1usize;
                while k < code.len() && d > 0 {
                    if code[k].is_punct('[') {
                        d += 1;
                    } else if code[k].is_punct(']') {
                        d -= 1;
                    } else if code[k].is_ident("test") {
                        is_test_attr = true;
                    }
                    k += 1;
                }
            }
        }
        // Advance j to just past this attribute's closing ]
        while j < code.len() && depth > 0 {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < code.len() && code[j].is_punct('#') && code[j + 1].is_punct('[') {
            let mut d = 0usize;
            j += 1;
            loop {
                if j >= code.len() {
                    break;
                }
                if code[j].is_punct('[') {
                    d += 1;
                } else if code[j].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Extend to the end of the item.
        let mut end_line = attr_start_line;
        while j < code.len() {
            if code[j].is_punct(';') {
                end_line = code[j].line;
                j += 1;
                break;
            }
            if code[j].is_punct('{') {
                let mut d = 1usize;
                j += 1;
                while j < code.len() && d > 0 {
                    if code[j].is_punct('{') {
                        d += 1;
                    } else if code[j].is_punct('}') {
                        d -= 1;
                    }
                    end_line = code[j].line;
                    j += 1;
                }
                break;
            }
            end_line = code[j].line;
            j += 1;
        }
        ranges.push((attr_start_line, end_line));
        i = j;
    }
    ranges
}
