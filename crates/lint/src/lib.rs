//! `arrow-lint` — project-specific static analysis for the ARROW
//! workspace.
//!
//! A std-only, dependency-free lexer + rule registry that mechanizes the
//! invariants this codebase's correctness story rests on (each learned
//! from a real incident — see DESIGN.md "Static analysis"):
//!
//! 1. **nondeterministic-iteration** — no `HashMap`/`HashSet` in crates
//!    that feed LP row construction or ticket generation.
//! 2. **float-partial-order** — no `.partial_cmp()` on floats; use
//!    `total_cmp`.
//! 3. **panic-on-input-path** — no `unwrap`/`expect`/`panic!` family in
//!    library code (existing debt is baselined and ratchets down).
//! 4. **wall-clock-in-core** — no `Instant`/`SystemTime` outside `obs`
//!    and `bench`.
//!
//! Suppression: `// arrow-lint: allow(rule) — justification` (the
//! justification is mandatory; the linter rejects bare allows).

pub mod baseline;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod walk;

pub use baseline::{compare, Baseline, RatchetReport};
pub use rules::{check_file, classify, FileInput, FileKind, Violation, RULES};

/// Convenience for tests: lint a source string under a given path.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let (crate_name, kind) = classify(rel_path);
    check_file(&FileInput { rel_path, crate_name: &crate_name, kind, src })
}
