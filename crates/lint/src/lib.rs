//! `arrow-lint` — project-specific static analysis for the ARROW
//! workspace.
//!
//! A std-only, dependency-free lexer + rule registry that mechanizes the
//! invariants this codebase's correctness story rests on (each learned
//! from a real incident — see DESIGN.md "Static analysis"):
//!
//! 1. **nondeterministic-iteration** — no `HashMap`/`HashSet` in crates
//!    that feed LP row construction or ticket generation.
//! 2. **float-partial-order** — no `.partial_cmp()` on floats; use
//!    `total_cmp`.
//! 3. **panic-on-input-path** — no `unwrap`/`expect`/`panic!` family in
//!    library code (existing debt is baselined and ratchets down).
//! 4. **wall-clock-in-core** — no `Instant`/`SystemTime` outside `obs`
//!    and `bench`.
//!
//! On top of the per-file rules, two *interprocedural* analyses walk a
//! conservative workspace call graph ([`parser`] → [`callgraph`] →
//! [`analysis`]):
//!
//! 5. **panic-reachability** — no call path from a controller entry point
//!    (`ArrowController::plan_epoch`, `solver::solve_batch`, the daemon
//!    loop) reaches `unwrap`/`expect`/`panic!` in product code; violations
//!    report the full call chain.
//! 6. **determinism-taint** — nondeterminism sources (hash iteration,
//!    wall clocks, RNG outside `derive_seed`) must not be reachable from
//!    functions producing digests, `ScenarioId`s, tickets, or plans.
//!
//! Suppression: `// arrow-lint: allow(rule) — justification` for one
//! line, `// arrow-lint: allow-file(rule) — justification` at the top of
//! a file for the whole file (the justification is mandatory; the linter
//! rejects bare allows).

pub mod analysis;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod pragma;
pub mod rules;
pub mod walk;

pub use analysis::{
    determinism_taint, explain_chain, in_product_graph, panic_reachability, render_chain,
    to_violation, Finding, DEFAULT_ENTRIES, DEFAULT_SINKS,
};
pub use baseline::{compare, Baseline, RatchetReport};
pub use callgraph::{CallGraph, Edge, FnNode, Site};
pub use parser::{module_path_of, parse_file, FnDef, ParsedFile};
pub use rules::{check_file, classify, FileInput, FileKind, Violation, RULES};

/// Convenience for tests: lint a source string under a given path.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let (crate_name, kind) = classify(rel_path);
    check_file(&FileInput { rel_path, crate_name: &crate_name, kind, src })
}
