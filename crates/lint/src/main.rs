//! The `arrow-lint` command-line driver.
//!
//! ```text
//! arrow-lint [--root DIR] [--check] [--json FILE] [--update-baseline]
//!            [--baseline FILE] [--list-rules] [--explain] [--dot FILE]
//!            [--entry SPEC]... [--sink SPEC]...
//! ```
//!
//! Default mode prints diagnostics and a summary (always exit 0).
//! `--check` is the CI gate: exit 1 on any unbaselined violation, bad
//! pragma, or baseline drift in either direction (the ratchet only
//! tightens). `--update-baseline` rewrites the baseline from the tree.
//!
//! The interprocedural analyses (panic-reachability, determinism-taint)
//! always run; `--explain` prints each flow violation's full call chain
//! frame-by-frame with file:line anchors, `--dot FILE` writes the
//! workspace call graph as Graphviz, and `--entry`/`--sink` add entry
//! points / taint sinks on top of the built-in defaults (suffix-matched
//! qualified names such as `ArrowController::plan_epoch`).

use arrow_lint::analysis::{
    determinism_taint, explain_chain, in_product_graph, panic_reachability, to_violation,
    DEFAULT_ENTRIES, DEFAULT_SINKS,
};
use arrow_lint::baseline::{compare, Baseline};
use arrow_lint::callgraph::CallGraph;
use arrow_lint::parser::{parse_file, ParsedFile};
use arrow_lint::rules::{check_file, classify, FileInput, Violation, RULES};
use arrow_lint::walk::{find_root, rel_str, rust_files};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.tsv";

struct Options {
    root: Option<PathBuf>,
    check: bool,
    json: Option<PathBuf>,
    update_baseline: bool,
    baseline: Option<PathBuf>,
    list_rules: bool,
    explain: bool,
    dot: Option<PathBuf>,
    entries: Vec<String>,
    sinks: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        check: false,
        json: None,
        update_baseline: false,
        baseline: None,
        list_rules: false,
        explain: false,
        dot: None,
        entries: Vec::new(),
        sinks: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--update-baseline" => opts.update_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--explain" => opts.explain = true,
            "--root" => opts.root = Some(next_value(&mut args, "--root")?.into()),
            "--json" => opts.json = Some(next_value(&mut args, "--json")?.into()),
            "--baseline" => opts.baseline = Some(next_value(&mut args, "--baseline")?.into()),
            "--dot" => opts.dot = Some(next_value(&mut args, "--dot")?.into()),
            "--entry" => opts.entries.push(next_value(&mut args, "--entry")?),
            "--sink" => opts.sinks.push(next_value(&mut args, "--sink")?),
            "--help" | "-h" => {
                println!(
                    "arrow-lint: project-specific static analysis\n\n\
                     USAGE: arrow-lint [--root DIR] [--check] [--json FILE]\n\
                            [--update-baseline] [--baseline FILE] [--list-rules]\n\
                            [--explain] [--dot FILE] [--entry SPEC]... [--sink SPEC]..."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("arrow-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for (name, rationale) in RULES {
            println!("{name}\n    {rationale}");
        }
        return ExitCode::SUCCESS;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = opts.root.clone().or_else(|| find_root(&cwd)) else {
        eprintln!("arrow-lint: no workspace root found (no ancestor Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| root.join(BASELINE_FILE));

    // Lint every file; parse product-library files for the call graph.
    let mut violations: Vec<(String, Violation)> = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let files = rust_files(&root);
    for rel in &files {
        let rel_s = rel_str(rel);
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("arrow-lint: cannot read {rel_s}: {e}");
                return ExitCode::from(2);
            }
        };
        let (crate_name, kind) = classify(&rel_s);
        let input = FileInput { rel_path: &rel_s, crate_name: &crate_name, kind, src: &src };
        for v in check_file(&input) {
            violations.push((rel_s.clone(), v));
        }
        if in_product_graph(&rel_s) {
            parsed.push(parse_file(&rel_s, &src));
        }
    }

    // Interprocedural analyses over the product call graph.
    let parsed_refs: Vec<&ParsedFile> = parsed.iter().collect();
    let graph = CallGraph::build(&parsed_refs);
    let by_path: BTreeMap<&str, &ParsedFile> =
        parsed.iter().map(|p| (p.rel_path.as_str(), p)).collect();
    let mut entries: Vec<String> = DEFAULT_ENTRIES.iter().map(|s| s.to_string()).collect();
    entries.extend(opts.entries.iter().cloned());
    let mut sinks: Vec<String> = DEFAULT_SINKS.iter().map(|s| s.to_string()).collect();
    sinks.extend(opts.sinks.iter().cloned());
    let mut findings = panic_reachability(&graph, &by_path, &entries);
    findings.extend(determinism_taint(&graph, &by_path, &sinks));
    if opts.explain {
        for f in &findings {
            print!("{}", explain_chain(&graph, f));
        }
    }
    for f in &findings {
        violations.push(to_violation(&graph, f));
    }
    if let Some(dot_path) = &opts.dot {
        if let Err(e) = std::fs::write(dot_path, graph.to_dot()) {
            eprintln!("arrow-lint: cannot write {}: {e}", dot_path.display());
            return ExitCode::from(2);
        }
    }

    // Aggregate per (rule, path). Bad pragmas are never baselinable.
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut bad_pragmas = 0usize;
    for (path, v) in &violations {
        if v.rule == "bad-pragma" {
            bad_pragmas += 1;
        } else {
            *counts.entry((v.rule.to_string(), path.clone())).or_insert(0) += 1;
        }
    }

    if opts.update_baseline {
        let text = Baseline::from_counts(&counts).serialize();
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("arrow-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "arrow-lint: baseline updated ({} entries)",
            counts.values().filter(|&&c| c > 0).count()
        );
        if bad_pragmas > 0 {
            eprintln!("arrow-lint: {bad_pragmas} bad pragma(s) remain — they cannot be baselined");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("arrow-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };
    let ratchet = compare(&baseline, &counts);

    // A violation is "baselined" when its (rule, path) group is within
    // the accepted count; a group over budget reports every member.
    let over_budget = |rule: &str, path: &str| {
        ratchet.regressions.iter().any(|(r, p, _, _)| r == rule && p == path)
    };
    let mut unbaselined = 0usize;
    let mut rule_totals: BTreeMap<&str, (usize, usize)> = BTreeMap::new(); // (new, baselined)
    for (path, v) in &violations {
        let is_new = v.rule == "bad-pragma" || over_budget(v.rule, path);
        let slot = rule_totals.entry(v.rule).or_insert((0, 0));
        if is_new {
            slot.0 += 1;
            unbaselined += 1;
            println!("{path}:{}:{}: [{}] {}", v.line, v.col, v.rule, v.msg);
        } else {
            slot.1 += 1;
            if !opts.check {
                println!("{path}:{}:{}: [{}] (baselined) {}", v.line, v.col, v.rule, v.msg);
            }
        }
    }
    for (rule, path, cur, base) in &ratchet.stale {
        println!(
            "stale baseline: [{rule}] {path} has {cur} violation(s) but {base} baselined — \
             run `cargo run -p arrow-lint -- --update-baseline` to tighten the ratchet"
        );
    }

    // JSON report.
    if let Some(json_path) = &opts.json {
        let mut items = Vec::new();
        for (path, v) in &violations {
            let baselined = v.rule != "bad-pragma" && !over_budget(v.rule, path);
            items.push(format!(
                "    {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"baselined\":{},\"message\":\"{}\"}}",
                json_escape(v.rule),
                json_escape(path),
                v.line,
                v.col,
                baselined,
                json_escape(&v.msg)
            ));
        }
        let summary: Vec<String> = rule_totals
            .iter()
            .map(|(rule, (new, base))| {
                format!("    {{\"rule\":\"{rule}\",\"new\":{new},\"baselined\":{base}}}")
            })
            .collect();
        let clean = unbaselined == 0 && ratchet.is_clean();
        let json = format!(
            "{{\n  \"files_checked\": {},\n  \"clean\": {},\n  \"stale_baseline_entries\": {},\n  \"summary\": [\n{}\n  ],\n  \"violations\": [\n{}\n  ]\n}}\n",
            files.len(),
            clean,
            ratchet.stale.len(),
            summary.join(",\n"),
            items.join(",\n")
        );
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("arrow-lint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    let baselined_total: usize = rule_totals.values().map(|(_, b)| *b).sum();
    let edge_count: usize = graph.edges.iter().map(Vec::len).sum();
    println!(
        "arrow-lint: call graph {} fn(s), {} edge(s); {} entry / {} sink spec(s), {} flow finding(s)",
        graph.nodes.len(),
        edge_count,
        entries.len(),
        sinks.len(),
        findings.len(),
    );
    println!(
        "arrow-lint: {} file(s), {} unbaselined violation(s), {} baselined, {} stale baseline entr{}",
        files.len(),
        unbaselined,
        baselined_total,
        ratchet.stale.len(),
        if ratchet.stale.len() == 1 { "y" } else { "ies" },
    );

    if opts.check && (unbaselined > 0 || !ratchet.is_clean()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
