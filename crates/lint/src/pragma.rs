//! Suppression pragmas.
//!
//! Syntax (one rule per pragma, justification mandatory):
//!
//! ```text
//! // arrow-lint: allow(rule-name) — why this site is safe
//! // arrow-lint: allow-file(rule-name) — why this whole file is safe
//! ```
//!
//! The separator may be an em-dash (`—`), `--`, or `:`. A line pragma
//! written on its own line covers the next line that contains code; a
//! trailing pragma covers its own line. A file pragma must appear at the
//! top of the file — before any code token — and covers every line. A
//! pragma with an unknown rule name, a missing/empty justification, or an
//! `allow-file` written after code has started is itself a violation
//! (`bad-pragma`) and cannot be suppressed.

use crate::lexer::{TokKind, Token};
use crate::rules::{Violation, RULES};

/// A parsed, valid suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule this pragma silences.
    pub rule: String,
    /// First covered line (inclusive).
    pub from_line: u32,
    /// Last covered line (inclusive).
    pub to_line: u32,
}

/// Scans comment tokens for pragmas. Returns the valid pragmas plus
/// `bad-pragma` violations for malformed ones. `code` is the token stream
/// with comments stripped (used to find the line a pragma covers).
pub fn collect_pragmas(toks: &[Token], code: &[&Token]) -> (Vec<Pragma>, Vec<Violation>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for t in toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        let body = t.text.trim().trim_start_matches(['/', '!']).trim();
        let Some(rest) = body.strip_prefix("arrow-lint:") else { continue };
        match parse_allow(rest.trim()) {
            Ok((rule, FileScope::Whole)) => {
                // allow-file is only honoured at the top of the file.
                let code_before = code.iter().any(|c| (c.line, c.col) < (t.line, t.col));
                if code_before {
                    bad.push(Violation {
                        rule: "bad-pragma",
                        line: t.line,
                        col: t.col,
                        msg: format!(
                            "allow-file({rule}) must appear at the top of the file, \
                             before any code"
                        ),
                    });
                } else {
                    pragmas.push(Pragma { rule, from_line: 1, to_line: u32::MAX });
                }
            }
            Ok((rule, FileScope::Line)) => {
                let has_code_before =
                    code.iter().any(|c| c.line == t.line && (c.line, c.col) < (t.line, t.col));
                let (from, to) = if has_code_before {
                    (t.line, t.line)
                } else {
                    // Own-line pragma: cover the next line holding code.
                    let next = code.iter().map(|c| c.line).find(|&l| l > t.line).unwrap_or(t.line);
                    (next, next)
                };
                pragmas.push(Pragma { rule, from_line: from, to_line: to });
            }
            Err(msg) => bad.push(Violation { rule: "bad-pragma", line: t.line, col: t.col, msg }),
        }
    }
    (pragmas, bad)
}

/// Whether a pragma covers one line or the whole file.
enum FileScope {
    Line,
    Whole,
}

/// Parses `allow(rule) <sep> justification` or `allow-file(rule) <sep>
/// justification`; returns the rule name and scope.
fn parse_allow(s: &str) -> Result<(String, FileScope), String> {
    let (rest, scope) = if let Some(r) = s.strip_prefix("allow-file(") {
        (r, FileScope::Whole)
    } else if let Some(r) = s.strip_prefix("allow(") {
        (r, FileScope::Line)
    } else {
        return Err(format!(
            "unrecognized arrow-lint pragma `{s}`; expected `allow(rule) — why` \
             or `allow-file(rule) — why`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err("unterminated `allow(` in arrow-lint pragma".into());
    };
    let rule = rest[..close].trim();
    if !RULES.iter().any(|(name, _)| *name == rule) {
        let known: Vec<&str> = RULES.iter().map(|(n, _)| *n).collect();
        return Err(format!("unknown rule `{rule}` in pragma; known rules: {}", known.join(", ")));
    }
    let after = rest[close + 1..].trim_start();
    let justification = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix(':'))
        .map(str::trim)
        .unwrap_or("");
    if justification.is_empty() {
        return Err(format!(
            "pragma allow({rule}) lacks a justification; write \
             `arrow-lint: allow({rule}) — <why this site is safe>`"
        ));
    }
    Ok((rule.to_string(), scope))
}
