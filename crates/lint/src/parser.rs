//! Item-tree parser on top of the lexer.
//!
//! The interprocedural analyses need *structure* the token stream alone
//! does not give: which function a token belongs to, the function's
//! module path, and the `impl` block (if any) that owns it. This module
//! recovers exactly that much of the Rust grammar — module nesting
//! (`mod name { … }`), `impl Type` / `impl Trait for Type` blocks,
//! `trait` blocks with default bodies, and `fn` items with brace-matched
//! bodies — and nothing more. Expressions inside bodies stay a flat token
//! range; the call-graph extractor walks them later.
//!
//! The parser is deliberately conservative: anything it cannot classify
//! it skips token-by-token, so a construct it does not model (macro
//! definitions, struct literals, const blocks) can never misattribute a
//! function boundary, only hide calls — the safe direction for an
//! analysis whose job is to prove *absence* of panics on the modelled
//! paths.

use crate::lexer::{lex, test_line_ranges, TokKind, Token};
use crate::pragma::{collect_pragmas, Pragma};
use crate::rules::Violation;

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name (`plan_epoch`).
    pub simple: String,
    /// `impl`/`trait` self type when the fn is a method (`ArrowController`).
    pub owner: Option<String>,
    /// Fully qualified path: `crate::module::Owner::name` segments joined
    /// with `::` (e.g. `core::controller::ArrowController::plan_epoch`).
    pub qual: String,
    /// Module path segments (crate name first).
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Half-open range into [`ParsedFile::code`] covering the body tokens
    /// (excluding the outer braces). Empty for bodyless declarations.
    pub body: (usize, usize),
    /// Whether the fn sits inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
}

/// A parsed source file: its functions plus everything the workspace
/// analyses need to judge them (code tokens, pragmas, pragma errors).
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Code tokens (comments stripped); `FnDef::body` indexes into this.
    pub code: Vec<Token>,
    /// Functions found in the file, in source order.
    pub fns: Vec<FnDef>,
    /// Valid suppression pragmas (line- and file-scoped).
    pub pragmas: Vec<Pragma>,
    /// `bad-pragma` diagnostics (malformed pragmas are never silent).
    pub pragma_errors: Vec<Violation>,
}

/// Derives the module path (crate name first) from a workspace-relative
/// file path: `crates/te/src/schemes/arrow.rs` → `["te", "schemes",
/// "arrow"]`, `src/daemon/mod.rs` → `["arrow", "daemon"]` (the root
/// package is `arrow`), `lib.rs`/`main.rs`/`mod.rs` add no segment.
pub fn module_path_of(rel_path: &str) -> Vec<String> {
    let (crate_name, rest) = match rel_path.strip_prefix("crates/") {
        Some(r) => {
            let mut it = r.splitn(2, '/');
            let name = it.next().unwrap_or("");
            (name.to_string(), it.next().unwrap_or(""))
        }
        None => ("arrow".to_string(), rel_path),
    };
    let mut path = vec![crate_name];
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    for seg in rest.split('/') {
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if seg.is_empty() || seg == "lib" || seg == "main" || seg == "mod" || seg == "src" {
            continue;
        }
        path.push(seg.to_string());
    }
    path
}

/// Parses one file into its item tree.
pub fn parse_file(rel_path: &str, src: &str) -> ParsedFile {
    let toks = lex(src);
    let test_ranges = test_line_ranges(&toks);
    let code: Vec<Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).cloned().collect();
    let code_refs: Vec<&Token> = code.iter().collect();
    let (pragmas, pragma_errors) = collect_pragmas(&toks, &code_refs);

    let mut fns = Vec::new();
    let mut modules = module_path_of(rel_path);
    parse_scope(&code, 0, code.len(), &mut modules, None, &test_ranges, &mut fns);
    ParsedFile { rel_path: rel_path.to_string(), code, fns, pragmas, pragma_errors }
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Index of the token *after* the `}` matching an opening `{` at `open`.
fn matching_brace(code: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if code[i].is_punct('{') {
            depth += 1;
        } else if code[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Recursive item scan over `code[i..end]`.
fn parse_scope(
    code: &[Token],
    mut i: usize,
    end: usize,
    modules: &mut Vec<String>,
    owner: Option<&str>,
    test_ranges: &[(u32, u32)],
    out: &mut Vec<FnDef>,
) {
    let is_ident_at = |k: usize| k < end && code[k].kind == TokKind::Ident;
    while i < end {
        let t = &code[i];
        // mod name { … } — recurse with the module pushed.
        if t.is_ident("mod") && is_ident_at(i + 1) {
            // `mod name;` declarations have no inline body.
            let mut j = i + 2;
            if j < end && code[j].is_punct('{') {
                let close = matching_brace(code, j, end);
                modules.push(code[i + 1].text.clone());
                parse_scope(code, j + 1, close - 1, modules, None, test_ranges, out);
                modules.pop();
                i = close;
                continue;
            }
            // Attributes like #[cfg(test)] mod tests; — skip the `;`.
            while j < end && !code[j].is_punct(';') {
                j += 1;
            }
            i = j + 1;
            continue;
        }
        // macro_rules! name { … } — opaque; its body is not item code.
        if t.is_ident("macro_rules") && i + 1 < end && code[i + 1].is_punct('!') {
            let mut j = i + 2;
            while j < end && !code[j].is_punct('{') {
                j += 1;
            }
            i = matching_brace(code, j, end);
            continue;
        }
        // impl … { } / trait Name { } — recurse with the owner set.
        if t.is_ident("impl") || t.is_ident("trait") {
            let header_end = {
                let mut j = i + 1;
                while j < end && !code[j].is_punct('{') && !code[j].is_punct(';') {
                    j += 1;
                }
                j
            };
            if header_end < end && code[header_end].is_punct('{') {
                let close = matching_brace(code, header_end, end);
                let name = if t.is_ident("trait") {
                    code.get(i + 1).filter(|n| n.kind == TokKind::Ident).map(|n| n.text.clone())
                } else {
                    impl_self_type(&code[i + 1..header_end])
                };
                parse_scope(
                    code,
                    header_end + 1,
                    close - 1,
                    modules,
                    name.as_deref(),
                    test_ranges,
                    out,
                );
                i = close;
                continue;
            }
            i = header_end + 1;
            continue;
        }
        // fn name … { body } — record, then recurse for nested items.
        if t.is_ident("fn") && is_ident_at(i + 1) {
            let name = code[i + 1].text.clone();
            let line = t.line;
            let mut j = i + 2;
            while j < end && !code[j].is_punct('{') && !code[j].is_punct(';') {
                j += 1;
            }
            if j < end && code[j].is_punct('{') {
                let close = matching_brace(code, j, end);
                let body = (j + 1, close.saturating_sub(1));
                let mut qual_segments: Vec<&str> = modules.iter().map(String::as_str).collect();
                if let Some(o) = owner {
                    qual_segments.push(o);
                }
                qual_segments.push(&name);
                let qual = qual_segments.join("::");
                out.push(FnDef {
                    simple: name.clone(),
                    owner: owner.map(str::to_string),
                    qual,
                    modules: modules.clone(),
                    line,
                    body,
                    is_test: in_ranges(test_ranges, line),
                });
                // Nested fns become their own defs; the call extractor
                // skips their ranges when walking the parent body.
                parse_scope(code, j + 1, close - 1, modules, None, test_ranges, out);
                i = close;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// The self-type name of an `impl` header (tokens between `impl` and `{`):
/// the last path segment of the type after `for` (trait impls) or after
/// the impl generics (inherent impls), stopping at `<` or `where`.
fn impl_self_type(header: &[Token]) -> Option<String> {
    // Skip leading generics: impl<T: Bound<U>> …
    let mut i = 0usize;
    if i < header.len() && header[i].is_punct('<') {
        let mut depth = 0isize;
        while i < header.len() {
            if header[i].is_punct('<') {
                depth += 1;
            } else if header[i].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // If a top-level `for` exists the self type follows it.
    let mut start = i;
    let mut depth = 0isize;
    for (k, t) in header.iter().enumerate().skip(i) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            start = k + 1;
        } else if depth == 0 && t.is_ident("where") {
            break;
        }
    }
    // Last ident of the leading path, before any `<` or `where`.
    let mut last: Option<String> = None;
    let mut k = start;
    while k < header.len() {
        let t = &header[k];
        if t.kind == TokKind::Ident && t.text != "where" && t.text != "dyn" {
            last = Some(t.text.clone());
            // A path continues through `::`; anything else ends the type.
            if k + 2 < header.len() && header[k + 1].is_punct(':') && header[k + 2].is_punct(':') {
                k += 3;
                continue;
            }
            break;
        }
        if t.is_punct('&') || t.is_punct('(') {
            // `impl Trait for &Foo` / tuple impls — keep scanning.
            k += 1;
            continue;
        }
        break;
    }
    last
}
