//! The rule registry: four project invariants, each born from a real
//! incident (see DESIGN.md "Static analysis").

use crate::lexer::{lex, test_line_ranges, TokKind, Token};
use crate::pragma::{collect_pragmas, Pragma};

/// Crates whose output feeds LP row construction, ticket generation, the
/// scenario universe, or the daemon's digest-compared plans — hash-seeded
/// iteration order there breaks byte-identical artifacts.
const DETERMINISM_CRATES: &[&str] = &["lp", "optical", "core", "te", "sim", "topology"];

/// Root-package paths under the same determinism contract as
/// [`DETERMINISM_CRATES`] (the daemon's soak digests are byte-compared).
const DETERMINISM_PATHS: &[&str] = &["src/daemon"];

/// Product library crates whose public API must not panic on user input
/// (`lint` is held to its own standard — the self-check test enforces it).
const NO_PANIC_CRATES: &[&str] = &["lp", "optical", "topology", "te", "core", "sim", "obs", "lint"];

/// Crates allowed to read wall clocks (`obs` owns timing; `bench` and the
/// linter itself are dev tools).
const WALL_CLOCK_EXEMPT: &[&str] = &["obs", "bench", "lint"];

/// Machine name, one-line rationale — the registry the CLI lists and the
/// pragma parser validates against.
pub const RULES: &[(&str, &str)] = &[
    (
        "nondeterministic-iteration",
        "no HashMap/HashSet in crates feeding LP rows or tickets (lp, optical, core, te): \
         hash-seeded iteration order varies per process and worker thread",
    ),
    (
        "float-partial-order",
        "no .partial_cmp() on floats: NaN panics the unwrap or breaks the comparator \
         contract; use f64::total_cmp",
    ),
    (
        "panic-on-input-path",
        "no unwrap/expect/panic!/todo!/unimplemented!/unreachable! in library code: \
         public APIs return Result instead of panicking on user input",
    ),
    (
        "wall-clock-in-core",
        "no Instant/SystemTime outside obs and bench: wall-clock reads in solver or \
         controller code break warm-start replay determinism",
    ),
    (
        "panic-reachability",
        "no call path from a controller entry point (plan_epoch, solve_batch, daemon \
         serve) may reach unwrap/expect/panic! in product code: a reachable panic kills \
         the long-lived daemon mid-epoch instead of failing one request",
    ),
    (
        "determinism-taint",
        "hash-order iteration, wall clocks, and RNG construction outside derive_seed \
         must not flow into functions producing digests, ScenarioIds, tickets, or \
         plans: byte-identical artifacts are the determinism contract",
    ),
];

/// Where a file lives, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Crate `src/` — library (or binary) code shipped to users.
    Lib,
    /// Integration tests (`tests/` directories).
    Test,
    /// Benchmarks (`benches/` directories or the bench crate).
    Bench,
    /// Examples (`examples/` directories).
    Example,
}

/// One rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule machine name (one of [`RULES`]).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub msg: String,
}

/// Per-file lint context.
pub struct FileInput<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Crate directory name under `crates/` (empty for the root package).
    pub crate_name: &'a str,
    /// File classification.
    pub kind: FileKind,
    /// Source text.
    pub src: &'a str,
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> (String, FileKind) {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_string();
    let kind = if rel_path.contains("/benches/") || crate_name == "bench" {
        FileKind::Bench
    } else if rel_path.contains("/tests/") || rel_path.starts_with("tests/") {
        FileKind::Test
    } else if rel_path.contains("/examples/") || rel_path.starts_with("examples/") {
        FileKind::Example
    } else {
        FileKind::Lib
    };
    (crate_name, kind)
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Runs every rule on one file. Returns surviving violations (pragma
/// suppressions already applied) — including `bad-pragma` diagnostics for
/// malformed or justification-less pragmas, which cannot be suppressed.
pub fn check_file(input: &FileInput) -> Vec<Violation> {
    let toks = lex(input.src);
    let test_ranges = test_line_ranges(&toks);
    let code: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let (pragmas, mut out) = collect_pragmas(&toks, &code);

    let is_lib_code = |line: u32| input.kind == FileKind::Lib && !in_ranges(&test_ranges, line);

    // Rule 1: nondeterministic-iteration.
    if DETERMINISM_CRATES.contains(&input.crate_name)
        || DETERMINISM_PATHS.iter().any(|p| input.rel_path.starts_with(p))
    {
        let scope = if input.crate_name.is_empty() { "src/daemon" } else { input.crate_name };
        for t in &code {
            if (t.is_ident("HashMap") || t.is_ident("HashSet")) && is_lib_code(t.line) {
                out.push(Violation {
                    rule: "nondeterministic-iteration",
                    line: t.line,
                    col: t.col,
                    msg: format!(
                        "{} in determinism-critical code `{}`: hash-seeded iteration \
                         order varies per process/thread and LP rows + tickets must be \
                         byte-identical; use BTreeMap/BTreeSet or a sorted Vec",
                        t.text, scope
                    ),
                });
            }
        }
    }

    // Rule 2: float-partial-order — applies everywhere, tests included (a
    // NaN-panicking comparator in a test is still a flaky test).
    for w in code.windows(3) {
        if w[0].is_punct('.') && w[1].is_ident("partial_cmp") && w[2].is_punct('(') {
            out.push(Violation {
                rule: "float-partial-order",
                line: w[1].line,
                col: w[1].col,
                msg: ".partial_cmp() is a partial order: NaN panics the usual .unwrap() \
                      and silently breaks sort comparator contracts; use f64::total_cmp \
                      (or derive Ord on non-float keys)"
                    .into(),
            });
        }
    }

    // Rule 3: panic-on-input-path.
    if NO_PANIC_CRATES.contains(&input.crate_name) {
        for w in code.windows(3) {
            if w[0].is_punct('.')
                && (w[1].is_ident("unwrap") || w[1].is_ident("expect"))
                && w[2].is_punct('(')
                && is_lib_code(w[1].line)
            {
                out.push(Violation {
                    rule: "panic-on-input-path",
                    line: w[1].line,
                    col: w[1].col,
                    msg: format!(
                        ".{}() can panic in library code; prefer returning an error, \
                         a default, or prove the invariant with a justified pragma",
                        w[1].text
                    ),
                });
            }
        }
        for w in code.windows(2) {
            let macro_name =
                ["panic", "todo", "unimplemented", "unreachable"].iter().find(|m| w[0].is_ident(m));
            if let Some(m) = macro_name {
                if w[1].is_punct('!') && is_lib_code(w[0].line) {
                    out.push(Violation {
                        rule: "panic-on-input-path",
                        line: w[0].line,
                        col: w[0].col,
                        msg: format!(
                            "{m}! in library code; public APIs must not panic on user \
                             input — return an error or justify with a pragma"
                        ),
                    });
                }
            }
        }
    }

    // Rule 4: wall-clock-in-core.
    if !WALL_CLOCK_EXEMPT.contains(&input.crate_name) {
        for t in &code {
            if (t.is_ident("Instant") || t.is_ident("SystemTime")) && is_lib_code(t.line) {
                out.push(Violation {
                    rule: "wall-clock-in-core",
                    line: t.line,
                    col: t.col,
                    msg: format!(
                        "{} read outside obs/bench: wall-clock in solver or controller \
                         code breaks warm-start replay determinism; route timing through \
                         arrow-obs spans or justify with a pragma",
                        t.text
                    ),
                });
            }
        }
    }

    out.retain(|v| v.rule == "bad-pragma" || !suppressed(&pragmas, v));
    out.sort_by_key(|v| (v.line, v.col));
    out
}

fn suppressed(pragmas: &[Pragma], v: &Violation) -> bool {
    pragmas.iter().any(|p| p.rule == v.rule && v.line >= p.from_line && v.line <= p.to_line)
}
