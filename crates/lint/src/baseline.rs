//! The baseline ratchet.
//!
//! `lint-baseline.tsv` (checked in at the workspace root) records the
//! accepted debt as `rule<TAB>path<TAB>count` lines. `--check` fails when
//! a `(rule, file)` pair exceeds its baselined count (debt never grows)
//! *and* when it undershoots it (fixing a violation must shrink the
//! baseline in the same commit, so the ratchet only ever tightens).
//! `--update-baseline` rewrites the file from the current tree.

use std::collections::BTreeMap;

/// Accepted violation counts keyed by `(rule, path)`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// `(rule, workspace-relative path) -> accepted count`.
    pub entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parses the TSV format; `#` starts a comment line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (rule, path, count) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(c)) => (r, p, c),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected rule<TAB>path<TAB>count",
                        n + 1
                    ))
                }
            };
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", n + 1))?;
            entries.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Baseline { entries })
    }

    /// Serializes back to the TSV format (sorted, hence diff-stable).
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# arrow-lint accepted debt: rule<TAB>path<TAB>count\n\
             # Ratchet: counts may only go down. Regenerate with\n\
             #   cargo run -p arrow-lint -- --update-baseline\n",
        );
        for ((rule, path), count) in &self.entries {
            out.push_str(&format!("{rule}\t{path}\t{count}\n"));
        }
        out
    }

    /// Builds a baseline from current per-`(rule, path)` counts.
    pub fn from_counts(counts: &BTreeMap<(String, String), usize>) -> Baseline {
        Baseline {
            entries: counts.iter().filter(|(_, &c)| c > 0).map(|(k, &c)| (k.clone(), c)).collect(),
        }
    }
}

/// Outcome of comparing the current tree against the baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// `(rule, path, current, baselined)` where current > baselined.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// `(rule, path, current, baselined)` where current < baselined.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl RatchetReport {
    /// Whether the tree matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

/// Compares current counts to the baseline.
pub fn compare(baseline: &Baseline, counts: &BTreeMap<(String, String), usize>) -> RatchetReport {
    let mut report = RatchetReport::default();
    let mut keys: Vec<&(String, String)> = counts.keys().chain(baseline.entries.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let cur = counts.get(key).copied().unwrap_or(0);
        let base = baseline.entries.get(key).copied().unwrap_or(0);
        if cur > base {
            report.regressions.push((key.0.clone(), key.1.clone(), cur, base));
        } else if cur < base {
            report.stale.push((key.0.clone(), key.1.clone(), cur, base));
        }
    }
    report
}
