//! Workspace file discovery.
//!
//! Walks the workspace root for `.rs` files, skipping `target/` (build
//! output), `compat/` (vendored offline stand-ins for external crates —
//! not our code), and hidden directories. Results are sorted so every run
//! and every machine reports violations in the same order.

use std::fs;
use std::path::{Path, PathBuf};

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All lintable `.rs` files under `root`, workspace-relative, sorted.
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "compat" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_path_buf());
                }
            }
        }
    }
    out.sort();
    out
}

/// Normalizes a path to forward slashes for stable report keys.
pub fn rel_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
