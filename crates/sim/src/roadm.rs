//! ROADM reconfiguration model (Appendix A.6).
//!
//! Restoring wavelengths onto a surrogate path requires reconfiguring the
//! wavelength-selective switches of every ROADM on that path (plus their
//! ASE noise sources, when noise loading is in use). ARROW reconfigures
//! ROADMs in two parallel groups: all **add/drop** ROADMs (the failed
//! lightpaths' endpoints) first, then all **intermediate** pass-through
//! ROADMs — so the ROADM stage costs two group-latencies regardless of how
//! many devices are touched.

use arrow_optical::{FiberPath, OpticalNetwork, RoadmId};
use std::collections::BTreeSet;

/// ROADM-stage timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct RoadmParams {
    /// Seconds to reconfigure one ROADM's WSS (and its noise source).
    pub config_seconds: f64,
    /// Control-plane overhead to detect the cut and fetch the
    /// pre-computed restoration plan (ARROW installs plans proactively).
    pub detection_seconds: f64,
    /// Controller dispatch overhead.
    pub dispatch_seconds: f64,
}

impl Default for RoadmParams {
    fn default() -> Self {
        RoadmParams { config_seconds: 4.0, detection_seconds: 2.0, dispatch_seconds: 1.0 }
    }
}

/// The ROADMs a restoration touches, split into the two parallel groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoadmGroups {
    /// Source/destination sites of the restored lightpaths.
    pub add_drop: Vec<RoadmId>,
    /// Pass-through sites on the surrogate paths (excluding add/drop).
    pub intermediate: Vec<RoadmId>,
}

/// Collects the ROADM groups for a set of restored routes
/// `(src, dst, surrogate path)`.
pub fn roadm_groups(net: &OpticalNetwork, routes: &[(RoadmId, RoadmId, FiberPath)]) -> RoadmGroups {
    let mut add_drop: BTreeSet<RoadmId> = BTreeSet::new();
    let mut intermediate: BTreeSet<RoadmId> = BTreeSet::new();
    for (src, dst, path) in routes {
        add_drop.insert(*src);
        add_drop.insert(*dst);
        let mut at = *src;
        for (i, &f) in path.fibers.iter().enumerate() {
            at = net.fiber(f).other_end(at);
            if i + 1 < path.fibers.len() {
                intermediate.insert(at);
            }
        }
    }
    // BTreeSet iterates in sorted order, so both groups come out sorted.
    let inter: Vec<RoadmId> = intermediate.difference(&add_drop).copied().collect();
    let ad: Vec<RoadmId> = add_drop.into_iter().collect();
    RoadmGroups { add_drop: ad, intermediate: inter }
}

impl RoadmGroups {
    /// Seconds until all ROADMs are reconfigured: the two groups run
    /// sequentially, each group's members in parallel (Appendix A.6).
    pub fn reconfig_seconds(&self, p: &RoadmParams) -> f64 {
        let g1 = if self.add_drop.is_empty() { 0.0 } else { p.config_seconds };
        let g2 = if self.intermediate.is_empty() { 0.0 } else { p.config_seconds };
        g1 + g2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_net() -> (OpticalNetwork, Vec<RoadmId>, Vec<arrow_optical::FiberId>) {
        let mut net = OpticalNetwork::new(8);
        let r = net.add_roadms(4);
        let f = vec![
            net.add_fiber(r[0], r[1], 100.0).unwrap(),
            net.add_fiber(r[1], r[2], 100.0).unwrap(),
            net.add_fiber(r[2], r[3], 100.0).unwrap(),
        ];
        (net, r, f)
    }

    #[test]
    fn groups_split_correctly() {
        let (net, r, f) = line_net();
        let path = FiberPath { fibers: vec![f[0], f[1], f[2]], length_km: 300.0 };
        let g = roadm_groups(&net, &[(r[0], r[3], path)]);
        assert_eq!(g.add_drop, vec![r[0], r[3]]);
        assert_eq!(g.intermediate, vec![r[1], r[2]]);
    }

    #[test]
    fn add_drop_dominates_intermediate_role() {
        let (net, r, f) = line_net();
        // Two routes: r0->r3 via all, and r1->r2 direct; r1/r2 become
        // add/drop and must not double-count as intermediate.
        let p1 = FiberPath { fibers: vec![f[0], f[1], f[2]], length_km: 300.0 };
        let p2 = FiberPath { fibers: vec![f[1]], length_km: 100.0 };
        let g = roadm_groups(&net, &[(r[0], r[3], p1), (r[1], r[2], p2)]);
        assert_eq!(g.add_drop.len(), 4);
        assert!(g.intermediate.is_empty());
    }

    #[test]
    fn two_group_latency_is_constant_in_device_count() {
        let (net, r, f) = line_net();
        let p = RoadmParams::default();
        let one =
            roadm_groups(&net, &[(r[0], r[1], FiberPath { fibers: vec![f[0]], length_km: 100.0 })]);
        let many = roadm_groups(
            &net,
            &[(r[0], r[3], FiberPath { fibers: vec![f[0], f[1], f[2]], length_km: 300.0 })],
        );
        // No intermediates in `one` => a single group latency.
        assert_eq!(one.reconfig_seconds(&p), p.config_seconds);
        assert_eq!(many.reconfig_seconds(&p), 2.0 * p.config_seconds);
    }
}
