//! # arrow-sim — discrete-event optical reconfiguration simulator
//!
//! The substitute for the paper's physical testbed (§5): an event-driven
//! model of what happens between a fiber cut and restored IP capacity.
//! Amplifier chains re-converge sequentially with observe–analyze–act
//! loops (Appendix A.7, Fig. 20); ROADMs reconfigure in two parallel
//! groups (Appendix A.6); ASE noise loading (§4) keeps every channel lit
//! so the amplifier stage vanishes. The Fig. 10 testbed (4 ROADMs, 34
//! amplifiers, 2,160 km) is built in [`testbed`] and reproduces the
//! Fig. 11/12 trial: 2.8 Tbps restored in ~8 s with noise loading vs
//! ~17 min without.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplifier;
pub mod event;
pub mod feed;
pub mod noise;
pub mod roadm;
pub mod testbed;

pub use amplifier::{AmplifierChain, AmplifierParams};
pub use event::{EventQueue, SimTime};
pub use feed::{EventFeed, FeedConfig, FeedEvent};
pub use noise::{ChannelState, NoiseController, NoiseLoadedFiber, Swap};
pub use roadm::{roadm_groups, RoadmGroups, RoadmParams};
pub use testbed::{build_testbed, restoration_trial, Testbed, TimelinePoint, TrialResult};
