//! The production-level testbed of §5 (Fig. 10) and its restoration trial
//! (Figs. 11 & 12).
//!
//! Four ROADM sites in a ring (A, B, C, D), ~2,160 km of fiber, 34
//! amplifier sites. Sixteen 200 Gbps wavelengths form four IP links:
//! `A↔B` (0.4 Tbps, direct), `A↔C` (1.2 Tbps, express via D over fiber
//! CD), `B↔D` (1.2 Tbps, express via C over fiber CD), and `C↔D`
//! (0.4 Tbps, direct) — so cutting fiber CD takes down 14 wavelengths /
//! 2.8 Tbps across three IP links, exactly the Fig. 11 trial.
//!
//! The end-to-end restoration is simulated event-by-event: cut detection →
//! plan dispatch (ARROW pre-computes plans) → parallel ROADM group
//! reconfiguration → (legacy only) sequential amplifier convergence along
//! each surrogate path. With ASE noise loading the amplifier stage
//! disappears, reproducing the paper's ~8 s vs ~17 min comparison
//! (Fig. 12, a 127× gap).

use crate::amplifier::{AmplifierChain, AmplifierParams};
use crate::event::{EventQueue, SimTime};
use crate::roadm::{roadm_groups, RoadmParams};
use arrow_optical::rwa::{greedy_assign, RwaConfig};
use arrow_optical::{FiberId, Lightpath, OpticalError, OpticalNetwork, RoadmId};

/// The testbed: optical network plus amplifier chains per fiber.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The four-site optical network with its 16 provisioned wavelengths.
    pub net: OpticalNetwork,
    /// Site ids in order A, B, C, D.
    pub sites: [RoadmId; 4],
    /// Fiber ids in order AB, AC, BD, CD.
    pub fibers: [FiberId; 4],
    /// Amplifier chain per fiber (indexable by fiber id).
    pub amps: Vec<AmplifierChain>,
}

/// Builds the Fig. 10 testbed.
///
/// The construction is fixed, but it still flows through the same
/// validated [`OpticalNetwork::provision`] path as user-supplied
/// topologies, so inconsistencies (a slot collision introduced while
/// editing the wavelength plan) surface as a typed [`OpticalError`]
/// instead of a panic.
pub fn build_testbed() -> Result<Testbed, OpticalError> {
    let mut net = OpticalNetwork::new(16);
    let a = net.add_roadm();
    let b = net.add_roadm();
    let c = net.add_roadm();
    let d = net.add_roadm();
    let f_ab = net.add_fiber(a, b, 540.0)?;
    let f_ac = net.add_fiber(a, c, 540.0)?;
    let f_bd = net.add_fiber(b, d, 540.0)?;
    let f_cd = net.add_fiber(c, d, 540.0)?;
    // A↔B: 2 × 200G direct (λ1, λ2).
    net.provision(Lightpath {
        src: a,
        dst: b,
        path: vec![f_ab],
        slots: vec![0, 1],
        gbps_per_wavelength: 200.0,
    })?;
    // A↔C: 6 × 200G express via D (fibers AB? no — via B/D would collide);
    // routed A–B–D–C so it rides fiber CD (per the Fig. 11 cut impact).
    net.provision(Lightpath {
        src: a,
        dst: c,
        path: vec![f_ab, f_bd, f_cd],
        slots: vec![2, 3, 4, 5, 6, 7],
        gbps_per_wavelength: 200.0,
    })?;
    // B↔D: 6 × 200G express via C: B–A–C–D riding fiber CD.
    net.provision(Lightpath {
        src: b,
        dst: d,
        path: vec![f_ab, f_ac, f_cd],
        slots: vec![8, 9, 10, 11, 12, 13],
        gbps_per_wavelength: 200.0,
    })?;
    // C↔D: 2 × 200G direct.
    net.provision(Lightpath {
        src: c,
        dst: d,
        path: vec![f_cd],
        slots: vec![14, 15],
        gbps_per_wavelength: 200.0,
    })?;
    // 34 amplifier sites over 2,160 km: 8–9 per 540 km fiber.
    let amp_params = AmplifierParams::default();
    let amps = vec![
        AmplifierChain { sites: 9, params: amp_params },
        AmplifierChain { sites: 8, params: amp_params },
        AmplifierChain { sites: 8, params: amp_params },
        AmplifierChain { sites: 9, params: amp_params },
    ];
    Ok(Testbed { net, sites: [a, b, c, d], fibers: [f_ab, f_ac, f_bd, f_cd], amps })
}

/// One step of restored capacity in the trial timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Seconds since the cut.
    pub time_s: SimTime,
    /// Cumulative restored IP capacity in Gbps.
    pub restored_gbps: f64,
}

/// Result of a restoration trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Capacity lost at the cut (Gbps).
    pub lost_gbps: f64,
    /// Restoration steps over time.
    pub timeline: Vec<TimelinePoint>,
    /// Seconds until the last restorable wavelength carries traffic.
    pub total_latency_s: SimTime,
    /// Restored capacity at the end of the trial (Gbps).
    pub restored_gbps: f64,
}

/// Simulates cutting `cut_fiber` and restoring with or without ASE noise
/// loading.
pub fn restoration_trial(
    testbed: &Testbed,
    cut_fiber: FiberId,
    noise_loading: bool,
    roadm_params: &RoadmParams,
) -> TrialResult {
    let cut = [cut_fiber];
    let lost_gbps: f64 = testbed
        .net
        .affected_lightpaths(&cut)
        .iter()
        .map(|&lp| testbed.net.lightpath(lp).capacity_gbps())
        .sum();
    // The restoration plan: exact greedy RWA (this is what ARROW installs
    // proactively; the trial replays it).
    let rwa = RwaConfig::default();
    let assigns = greedy_assign(&testbed.net, &cut, &rwa, None);
    // ROADM groups across all restored routes.
    let routes: Vec<(RoadmId, RoadmId, arrow_optical::FiberPath)> = assigns
        .iter()
        .flat_map(|a| {
            let lp = testbed.net.lightpath(a.lightpath);
            a.routes.iter().map(move |(p, _)| (lp.src, lp.dst, p.clone()))
        })
        .collect();
    let groups = roadm_groups(&testbed.net, &routes);

    #[derive(Debug)]
    enum Ev {
        Detected,
        PlanDispatched,
        RoadmsConfigured,
        /// Restored Gbps once a route carries traffic.
        RouteLive(f64),
    }
    let mut q = EventQueue::new();
    q.schedule(roadm_params.detection_seconds, Ev::Detected);
    let mut timeline = vec![TimelinePoint { time_s: 0.0, restored_gbps: 0.0 }];
    let mut restored = 0.0;
    // Flatten routes with their capacities for the event loop.
    let route_caps: Vec<(arrow_optical::FiberPath, f64)> = assigns
        .iter()
        .flat_map(|a| {
            a.routes
                .iter()
                .zip(&a.route_gbps)
                .map(|((p, slots), &g)| (p.clone(), slots.len() as f64 * g))
        })
        .collect();
    while let Some((t, ev)) = q.pop() {
        match ev {
            Ev::Detected => q.schedule(t + roadm_params.dispatch_seconds, Ev::PlanDispatched),
            Ev::PlanDispatched => {
                q.schedule(t + groups.reconfig_seconds(roadm_params), Ev::RoadmsConfigured)
            }
            Ev::RoadmsConfigured => {
                for (path, gbps) in route_caps.iter() {
                    if noise_loading {
                        // Amplifiers never see a power change: light is
                        // live as soon as the WSS switches.
                        q.schedule(t, Ev::RouteLive(*gbps));
                    } else {
                        // Legacy: every amplifier along the surrogate path
                        // must re-converge, sequentially per fiber chain.
                        let wait: f64 = path
                            .fibers
                            .iter()
                            .map(|f| testbed.amps[f.0].total_convergence_seconds())
                            .sum();
                        q.schedule(t + wait, Ev::RouteLive(*gbps));
                    }
                }
            }
            Ev::RouteLive(gbps) => {
                restored += gbps;
                timeline.push(TimelinePoint { time_s: t, restored_gbps: restored });
            }
        }
    }
    let total_latency_s = timeline.last().map(|p| p.time_s).unwrap_or(0.0);
    TrialResult { lost_gbps, timeline, total_latency_s, restored_gbps: restored }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_cd_loses_2_8_tbps_across_three_links() {
        let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
        let cut = [tb.fibers[3]];
        let affected = tb.net.affected_lightpaths(&cut);
        assert_eq!(affected.len(), 3, "A↔C, B↔D, C↔D must fail");
        let lost: f64 = affected.iter().map(|&l| tb.net.lightpath(l).capacity_gbps()).sum();
        assert_eq!(lost, 2800.0, "14 wavelengths × 200 Gbps");
    }

    #[test]
    fn amplifier_count_matches_fig10() {
        let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
        let total: usize = tb.amps.iter().map(|c| c.sites).sum();
        assert_eq!(total, 34);
        assert_eq!(tb.net.path_length_km(tb.fibers.as_ref()), 2160.0);
    }

    #[test]
    fn arrow_restores_in_seconds() {
        let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
        let r = restoration_trial(&tb, tb.fibers[3], true, &RoadmParams::default());
        assert!(r.restored_gbps > 0.0);
        assert!(
            r.total_latency_s <= 10.0,
            "ARROW latency {} s should be single-digit seconds",
            r.total_latency_s
        );
    }

    #[test]
    fn legacy_takes_minutes_and_ratio_matches_fig12() {
        let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
        let arrow = restoration_trial(&tb, tb.fibers[3], true, &RoadmParams::default());
        let legacy = restoration_trial(&tb, tb.fibers[3], false, &RoadmParams::default());
        assert!(
            legacy.total_latency_s > 600.0,
            "legacy latency {} s should be tens of minutes",
            legacy.total_latency_s
        );
        let ratio = legacy.total_latency_s / arrow.total_latency_s;
        assert!(
            (50.0..300.0).contains(&ratio),
            "latency ratio {ratio} should be of the order of the paper's 127×"
        );
        // Both restore the same capacity — noise loading changes latency,
        // not restorability.
        assert!((arrow.restored_gbps - legacy.restored_gbps).abs() < 1e-9);
    }

    #[test]
    fn timeline_is_monotone() {
        let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
        let r = restoration_trial(&tb, tb.fibers[3], false, &RoadmParams::default());
        for w in r.timeline.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
            assert!(w[1].restored_gbps >= w[0].restored_gbps);
        }
        assert!(r.restored_gbps <= r.lost_gbps + 1e-9);
    }

    #[test]
    fn restoration_capacity_is_substantial() {
        // The testbed is engineered so the CD cut is (near-)fully
        // restorable: 16-slot fibers with 14 idle slots on the detours.
        let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
        let r = restoration_trial(&tb, tb.fibers[3], true, &RoadmParams::default());
        assert!(
            r.restored_gbps >= 0.5 * r.lost_gbps,
            "restored {} of {} Gbps",
            r.restored_gbps,
            r.lost_gbps
        );
    }
}
