//! Cascaded EDFA amplifier model (Appendix A.7).
//!
//! Adding or removing wavelengths changes the power distribution a fiber's
//! amplifiers see. Legacy operation re-stabilizes each amplifier with
//! repeated *observe–analyze–act* gain-control loops; the paper's shadowed
//! production maintenance (Fig. 20) re-configured 4 wavelengths across a
//! 2,000 km path with 24 cascaded amplifier sites in 14 minutes — i.e.
//! ~35 s per amplifier, converging sequentially down the cascade (an
//! amplifier can only settle once its upstream input is stable).
//!
//! With ASE noise loading (§4) every channel is lit at all times, so a
//! reconfiguration changes *which* channels carry data but not the power
//! envelope — the cascade never has to re-converge.

use crate::event::{EventQueue, SimTime};

/// One amplifier site's convergence behaviour.
#[derive(Debug, Clone, Copy)]
pub struct AmplifierParams {
    /// Seconds of observe–analyze–act looping needed per amplifier when
    /// the channel power distribution changes (paper: ~35 s).
    pub converge_seconds: f64,
}

impl Default for AmplifierParams {
    fn default() -> Self {
        AmplifierParams { converge_seconds: 35.0 }
    }
}

/// A chain of amplifier sites along one fiber path.
#[derive(Debug, Clone)]
pub struct AmplifierChain {
    /// Number of amplifier sites in cascade order.
    pub sites: usize,
    /// Per-site behaviour.
    pub params: AmplifierParams,
}

impl AmplifierChain {
    /// A chain sized for a fiber path: one site per `span_km` of length
    /// (default spacing in long-haul plants is ~80–100 km).
    pub fn for_length(length_km: f64, span_km: f64, params: AmplifierParams) -> Self {
        assert!(span_km > 0.0);
        AmplifierChain { sites: (length_km / span_km).ceil().max(1.0) as usize, params }
    }

    /// Simulates the sequential convergence of the cascade after a power
    /// change at `start`: returns the time each site stabilizes, last
    /// entry being the end-to-end stabilization time.
    pub fn convergence_times(&self, start: SimTime) -> Vec<SimTime> {
        #[derive(Debug)]
        struct Converged(
            /// index of the amplifier site that settled
            usize,
        );
        let mut q = EventQueue::new();
        // Site 0 sees the new power immediately; each downstream site can
        // only start once its upstream neighbour has settled.
        if self.sites > 0 {
            q.schedule(start + self.params.converge_seconds, Converged(0));
        }
        let mut times = vec![0.0; self.sites];
        while let Some((t, Converged(i))) = q.pop() {
            times[i] = t;
            if i + 1 < self.sites {
                q.schedule(t + self.params.converge_seconds, Converged(i + 1));
            }
        }
        times
    }

    /// End-to-end stabilization latency after a power change (0 when the
    /// chain is empty).
    pub fn total_convergence_seconds(&self) -> f64 {
        self.sites as f64 * self.params.converge_seconds
    }

    /// The Fig. 20 staircase: normalized optical power at the chain output
    /// over time, rising one step as each amplifier settles. Returns
    /// `(time, normalized power ∈ [0, 1])` samples.
    pub fn power_staircase(&self, start: SimTime) -> Vec<(SimTime, f64)> {
        let mut out = vec![(start, 0.0)];
        for (i, t) in self.convergence_times(start).into_iter().enumerate() {
            out.push((t, (i + 1) as f64 / self.sites as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_shape_24_amps_14_minutes() {
        // The paper's shadowed maintenance: 24 amplifier sites, ~14 min.
        let chain = AmplifierChain { sites: 24, params: AmplifierParams::default() };
        let total = chain.total_convergence_seconds();
        assert!((700.0..1000.0).contains(&total), "total {total} s should be ~14 min");
        let times = chain.convergence_times(0.0);
        assert_eq!(times.len(), 24);
        // Strictly increasing cascade.
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((times[23] - total).abs() < 1e-9);
    }

    #[test]
    fn staircase_reaches_full_power() {
        let chain = AmplifierChain { sites: 4, params: AmplifierParams { converge_seconds: 10.0 } };
        let stairs = chain.power_staircase(5.0);
        assert_eq!(stairs.first().unwrap(), &(5.0, 0.0));
        assert_eq!(stairs.last().unwrap(), &(45.0, 1.0));
        assert_eq!(stairs.len(), 5);
    }

    #[test]
    fn chain_sizing_by_span() {
        let chain = AmplifierChain::for_length(540.0, 80.0, AmplifierParams::default());
        assert_eq!(chain.sites, 7);
        let tiny = AmplifierChain::for_length(10.0, 80.0, AmplifierParams::default());
        assert_eq!(tiny.sites, 1);
    }
}
