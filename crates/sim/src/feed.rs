//! The daemon's event feed: a seeded, pre-scheduled calendar of epoch
//! ticks, fiber cuts/repairs, and injected chaos bursts.
//!
//! `arrow serve` (ROADMAP item 3) is driven by the same [`EventQueue`]
//! calendar the restoration trial uses, but over controller-scale events:
//! every `epoch_interval_s` of simulated time an [`FeedEvent::EpochTick`]
//! fires with a demand-scale factor (a diurnal sinusoid times seeded
//! telemetry jitter), and a seeded Poisson-ish process sprinkles
//! single-fiber cuts (each followed by its repair) between the ticks.
//! Everything is scheduled up front from one [`rand::rngs::StdRng`], so a
//! feed is fully determined by its [`FeedConfig`] — two feeds built from
//! the same config drain to byte-identical event sequences, which the
//! chaos-determinism test asserts.
//!
//! The feed deliberately knows nothing about topologies or scenario
//! universes: it deals in fiber *indices*. The daemon's chaos module maps
//! `compile_universe` cut sets onto those indices and [`EventFeed::inject`]s
//! correlated bursts; keeping that mapping out of this crate keeps
//! `arrow-sim` free of an `arrow-topology` dependency.

use crate::event::{EventQueue, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One event delivered by the feed, in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedEvent {
    /// Start of a TE epoch. `demand_scale` multiplies the base traffic
    /// matrix: diurnal curve × seeded telemetry jitter.
    EpochTick {
        /// Zero-based epoch index.
        epoch: u64,
        /// Demand multiplier for this epoch.
        demand_scale: f64,
    },
    /// A single fiber failed; the controller re-plans immediately.
    FiberCut {
        /// Index of the failed fiber.
        fiber: usize,
    },
    /// A previously cut fiber came back.
    FiberRepair {
        /// Index of the repaired fiber.
        fiber: usize,
    },
    /// A correlated burst (injected by chaos mode): several fibers fail
    /// together and the planning stack is stalled for `stall_seconds` of
    /// wall-clock time, modelling a controller overload.
    ChaosBurst {
        /// Indices of the fibers failing together.
        fibers: Vec<usize>,
        /// Wall-clock stall to inject into the epoch's deadline window.
        stall_seconds: f64,
    },
}

impl FeedEvent {
    /// A compact, deterministic label for event-sequence logs
    /// (`tick:3@x1.084`, `cut:2`, `repair:2`, `burst:1+4@3.0s`).
    pub fn label(&self) -> String {
        match self {
            FeedEvent::EpochTick { epoch, demand_scale } => {
                format!("tick:{epoch}@x{demand_scale:.4}")
            }
            FeedEvent::FiberCut { fiber } => format!("cut:{fiber}"),
            FeedEvent::FiberRepair { fiber } => format!("repair:{fiber}"),
            FeedEvent::ChaosBurst { fibers, stall_seconds } => {
                let list = fibers.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("+");
                format!("burst:{list}@{stall_seconds:.1}s")
            }
        }
    }
}

/// Everything that determines a feed. Same config ⇒ same event sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedConfig {
    /// RNG seed for jitter and cut placement.
    pub seed: u64,
    /// Simulated seconds between epoch ticks (ARROW §5: five minutes).
    pub epoch_interval_s: f64,
    /// Number of epoch ticks to schedule; the feed's horizon is
    /// `epochs * epoch_interval_s`.
    pub epochs: u64,
    /// Fibers the cut process may pick from (0 disables random cuts).
    pub num_fibers: usize,
    /// Mean simulated seconds between random single-fiber cuts
    /// (exponential inter-arrivals; `0.0` disables the cut process).
    pub mean_cut_interval_s: f64,
    /// Simulated seconds from a cut to its repair.
    pub repair_after_s: f64,
    /// Telemetry-noise amplitude: each tick's demand scale is the diurnal
    /// curve times a uniform draw from `[1 - jitter, 1 + jitter]`.
    pub demand_jitter: f64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            seed: 42,
            epoch_interval_s: 300.0,
            epochs: 12,
            num_fibers: 0,
            mean_cut_interval_s: 0.0,
            repair_after_s: 1800.0,
            demand_jitter: 0.05,
        }
    }
}

/// The diurnal demand curve: a 24-hour sinusoid around 1.0, ±25% — the
/// same shape the online sweep replays, continuous in simulated time.
fn diurnal(t: SimTime) -> f64 {
    1.0 + 0.25 * (2.0 * std::f64::consts::PI * t / 86_400.0).sin()
}

/// A drained-in-order calendar of [`FeedEvent`]s.
pub struct EventFeed {
    queue: EventQueue<FeedEvent>,
    config: FeedConfig,
}

impl EventFeed {
    /// Schedules the whole calendar — ticks, cuts, repairs — up front
    /// from the config's seed. Non-finite or negative config values are
    /// clamped to safe ones rather than panicking the queue.
    pub fn new(config: FeedConfig) -> EventFeed {
        let mut config = config;
        if !config.epoch_interval_s.is_finite() || config.epoch_interval_s <= 0.0 {
            config.epoch_interval_s = 300.0;
        }
        if !config.mean_cut_interval_s.is_finite() || config.mean_cut_interval_s < 0.0 {
            config.mean_cut_interval_s = 0.0;
        }
        if !config.repair_after_s.is_finite() || config.repair_after_s <= 0.0 {
            config.repair_after_s = 1800.0;
        }
        if !config.demand_jitter.is_finite() || config.demand_jitter < 0.0 {
            config.demand_jitter = 0.0;
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut queue = EventQueue::new();
        let horizon = config.epochs as f64 * config.epoch_interval_s;

        // Epoch ticks: one per interval, demand = diurnal × jitter.
        for epoch in 0..config.epochs {
            let t = epoch as f64 * config.epoch_interval_s;
            let jitter = if config.demand_jitter > 0.0 {
                rng.gen_range(1.0 - config.demand_jitter..=1.0 + config.demand_jitter)
            } else {
                1.0
            };
            queue.schedule(t, FeedEvent::EpochTick { epoch, demand_scale: diurnal(t) * jitter });
        }

        // The cut process: exponential inter-arrivals, uniform fiber pick,
        // each cut repaired `repair_after_s` later (repairs may land past
        // the horizon; they are dropped — the daemon has already exited).
        if config.mean_cut_interval_s > 0.0 && config.num_fibers > 0 {
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() * config.mean_cut_interval_s;
                if t >= horizon {
                    break;
                }
                let fiber = rng.gen_range(0..config.num_fibers);
                queue.schedule(t, FeedEvent::FiberCut { fiber });
                let repair_at = t + config.repair_after_s;
                if repair_at < horizon {
                    queue.schedule(repair_at, FeedEvent::FiberRepair { fiber });
                }
            }
        }

        EventFeed { queue, config }
    }

    /// The config the feed was built from.
    pub fn config(&self) -> &FeedConfig {
        &self.config
    }

    /// Injects an extra event (chaos bursts) at simulated time `at`,
    /// clamped to the current simulated clock so a late injection cannot
    /// violate the queue's no-time-travel invariant.
    pub fn inject(&mut self, at: SimTime, event: FeedEvent) {
        let at = if at.is_finite() { at.max(self.queue.now()) } else { self.queue.now() };
        self.queue.schedule(at, event);
    }

    /// Delivers the next event, advancing simulated time. `None` once the
    /// calendar is drained.
    pub fn next_event(&mut self) -> Option<(SimTime, FeedEvent)> {
        self.queue.pop()
    }

    /// Current simulated time (time of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when the calendar is drained.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The feed's horizon in simulated seconds.
    pub fn horizon_s(&self) -> f64 {
        self.config.epochs as f64 * self.config.epoch_interval_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut feed: EventFeed) -> Vec<(SimTime, FeedEvent)> {
        let mut out = Vec::new();
        while let Some(ev) = feed.next_event() {
            out.push(ev);
        }
        out
    }

    fn churny() -> FeedConfig {
        FeedConfig {
            seed: 7,
            epochs: 20,
            num_fibers: 12,
            mean_cut_interval_s: 900.0,
            repair_after_s: 600.0,
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = drain(EventFeed::new(churny()));
        let b = drain(EventFeed::new(churny()));
        assert!(!a.is_empty());
        assert_eq!(a, b, "a feed is a pure function of its config");
        let log_a: Vec<String> = a.iter().map(|(t, e)| format!("t={t:.3} {}", e.label())).collect();
        let log_b: Vec<String> = b.iter().map(|(t, e)| format!("t={t:.3} {}", e.label())).collect();
        assert_eq!(log_a, log_b, "labelled logs are byte-identical");
    }

    #[test]
    fn different_seed_different_sequence() {
        let a = drain(EventFeed::new(churny()));
        let b = drain(EventFeed::new(FeedConfig { seed: 8, ..churny() }));
        assert_ne!(a, b);
    }

    #[test]
    fn ticks_cover_every_epoch_in_order() {
        let events = drain(EventFeed::new(churny()));
        let ticks: Vec<u64> = events
            .iter()
            .filter_map(|(_, e)| match e {
                FeedEvent::EpochTick { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        assert_eq!(ticks, (0..20).collect::<Vec<_>>());
        // Demand scales stay within diurnal ± jitter bounds.
        for (_, e) in &events {
            if let FeedEvent::EpochTick { demand_scale, .. } = e {
                assert!(
                    (0.7..=1.35).contains(demand_scale),
                    "demand scale {demand_scale} out of envelope"
                );
            }
        }
    }

    #[test]
    fn cuts_are_within_horizon_and_repaired_in_order() {
        let cfg = churny();
        let horizon = cfg.epochs as f64 * cfg.epoch_interval_s;
        let events = drain(EventFeed::new(cfg.clone()));
        let mut down: Vec<usize> = Vec::new();
        let mut cuts = 0;
        for (t, e) in &events {
            assert!(*t < horizon + cfg.repair_after_s);
            match e {
                FeedEvent::FiberCut { fiber } => {
                    cuts += 1;
                    assert!(*fiber < cfg.num_fibers);
                    down.push(*fiber);
                }
                FeedEvent::FiberRepair { fiber } => {
                    let pos = down.iter().position(|f| f == fiber);
                    assert!(pos.is_some(), "repair of a fiber that was never cut");
                    down.remove(pos.unwrap_or(0));
                }
                _ => {}
            }
        }
        assert!(cuts > 0, "a 6000s horizon at mean 900s spacing should see cuts");
    }

    #[test]
    fn time_is_nondecreasing() {
        let events = drain(EventFeed::new(churny()));
        for w in events.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn injected_bursts_are_delivered_at_their_time() {
        let mut feed = EventFeed::new(FeedConfig { epochs: 4, ..Default::default() });
        feed.inject(450.0, FeedEvent::ChaosBurst { fibers: vec![1, 4], stall_seconds: 3.0 });
        let mut seen_at = None;
        while let Some((t, e)) = feed.next_event() {
            if let FeedEvent::ChaosBurst { ref fibers, .. } = e {
                assert_eq!(fibers, &[1, 4]);
                seen_at = Some(t);
            }
        }
        assert_eq!(seen_at, Some(450.0), "burst lands mid-interval");
    }

    #[test]
    fn degenerate_configs_are_clamped_not_panicking() {
        let feed = EventFeed::new(FeedConfig {
            epoch_interval_s: f64::NAN,
            mean_cut_interval_s: -5.0,
            repair_after_s: 0.0,
            demand_jitter: f64::INFINITY,
            epochs: 2,
            num_fibers: 3,
            ..Default::default()
        });
        assert_eq!(feed.config().epoch_interval_s, 300.0);
        assert_eq!(feed.config().mean_cut_interval_s, 0.0);
        assert_eq!(feed.config().demand_jitter, 0.0);
        assert_eq!(drain(feed).len(), 2, "just the two ticks");
    }
}
