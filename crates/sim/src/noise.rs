//! ASE noise loading (§4, Fig. 9).
//!
//! With a programmable Amplified Spontaneous Emission source at each ROADM,
//! *every* wavelength slot on every fiber is always lit: some slots carry
//! router data, the rest carry shaped noise. Amplifiers therefore see a
//! constant channel count, and a reconfiguration — replacing noise with
//! data (or vice versa) locally at the ROADMs — causes no power excursion
//! and no re-convergence.
//!
//! This module tracks the data/noise state per fiber and computes the
//! *swap set* a restoration needs: which slots flip noise→data on the
//! surrogate fibers (and data→noise on the cut fiber's survivors). The
//! invariant the whole §4 argument rests on — every slot lit at all times —
//! is enforced by construction and checked in tests.

use arrow_optical::{FiberId, OpticalNetwork};

/// What a wavelength slot carries under noise loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Router traffic (a provisioned or restored wavelength).
    Data,
    /// Shaped ASE noise keeping the amplifiers' spectrum full.
    Noise,
}

/// Per-fiber channel map under noise loading.
#[derive(Debug, Clone)]
pub struct NoiseLoadedFiber {
    states: Vec<ChannelState>,
}

impl NoiseLoadedFiber {
    /// Builds the map from a fiber's current occupancy: occupied slots
    /// carry data, free slots are noise-loaded.
    pub fn from_spectrum(spectrum: &arrow_optical::SpectrumMask) -> Self {
        NoiseLoadedFiber {
            states: (0..spectrum.num_slots())
                .map(
                    |w| {
                        if spectrum.is_occupied(w) {
                            ChannelState::Data
                        } else {
                            ChannelState::Noise
                        }
                    },
                )
                .collect(),
        }
    }

    /// State of slot `w`.
    pub fn state(&self, w: usize) -> ChannelState {
        self.states[w]
    }

    /// Number of slots carrying data.
    pub fn data_count(&self) -> usize {
        self.states.iter().filter(|&&s| s == ChannelState::Data).count()
    }

    /// Total lit channels — always the full grid under noise loading.
    pub fn lit_count(&self) -> usize {
        self.states.len()
    }

    /// Flips a slot between noise and data. Returns the previous state.
    pub fn swap(&mut self, w: usize) -> ChannelState {
        let prev = self.states[w];
        self.states[w] = match prev {
            ChannelState::Data => ChannelState::Noise,
            ChannelState::Noise => ChannelState::Data,
        };
        prev
    }
}

/// One slot flip a restoration requires on one fiber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Swap {
    /// The fiber whose ROADM-local source/selector flips.
    pub fiber: FiberId,
    /// The slot being flipped.
    pub slot: usize,
    /// The new state of the slot.
    pub to: ChannelState,
}

/// The noise controller for a whole network.
#[derive(Debug, Clone)]
pub struct NoiseController {
    fibers: Vec<NoiseLoadedFiber>,
}

impl NoiseController {
    /// Snapshots the network: every free slot becomes noise-loaded.
    pub fn new(net: &OpticalNetwork) -> Self {
        NoiseController {
            fibers: net
                .fibers()
                .iter()
                .map(|f| NoiseLoadedFiber::from_spectrum(&f.spectrum))
                .collect(),
        }
    }

    /// Per-fiber channel maps.
    pub fn fiber(&self, f: FiberId) -> &NoiseLoadedFiber {
        &self.fibers[f.0]
    }

    /// Computes and applies the swap set for a restoration step: the
    /// wavelengths of `routes` (slot lists per surrogate fiber path) flip
    /// noise→data on every fiber they traverse, while the failed
    /// lightpath's slots on surviving fibers flip data→noise.
    ///
    /// Returns the swaps applied, in application order. The total lit
    /// channel count of every fiber is unchanged — the §4 invariant.
    pub fn apply_restoration(
        &mut self,
        surviving_release: &[(FiberId, Vec<usize>)],
        restored_routes: &[(Vec<FiberId>, Vec<usize>)],
    ) -> Vec<Swap> {
        let mut swaps = Vec::new();
        for (fiber, slots) in surviving_release {
            for &w in slots {
                if self.fibers[fiber.0].state(w) == ChannelState::Data {
                    self.fibers[fiber.0].swap(w);
                    swaps.push(Swap { fiber: *fiber, slot: w, to: ChannelState::Noise });
                }
            }
        }
        for (path, slots) in restored_routes {
            for &fiber in path {
                for &w in slots {
                    if self.fibers[fiber.0].state(w) == ChannelState::Noise {
                        self.fibers[fiber.0].swap(w);
                        swaps.push(Swap { fiber, slot: w, to: ChannelState::Data });
                    }
                }
            }
        }
        swaps
    }

    /// The §4 invariant: every channel of every fiber is lit (data or
    /// noise), so amplifiers never see the spectrum change. Trivially true
    /// by construction; exposed for assertions in tests and callers.
    pub fn all_channels_lit(&self) -> bool {
        self.fibers.iter().all(|f| f.lit_count() == f.states.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_optical::Lightpath;

    /// The Fig. 9 example: two 8-slot fibers; fiber 1 carries data on λ1–λ2,
    /// fiber 2 on λ3–λ6; everything else is noise.
    fn fig9() -> (OpticalNetwork, FiberId, FiberId) {
        let mut net = OpticalNetwork::new(8);
        let a = net.add_roadm();
        let b = net.add_roadm();
        let f1 = net.add_fiber(a, b, 100.0).unwrap();
        let f2 = net.add_fiber(a, b, 100.0).unwrap();
        net.provision(Lightpath {
            src: a,
            dst: b,
            path: vec![f1],
            slots: vec![0, 1],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        net.provision(Lightpath {
            src: a,
            dst: b,
            path: vec![f2],
            slots: vec![2, 3, 4, 5],
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
        (net, f1, f2)
    }

    #[test]
    fn snapshot_matches_fig9_healthy_state() {
        let (net, f1, f2) = fig9();
        let ctl = NoiseController::new(&net);
        assert_eq!(ctl.fiber(f1).data_count(), 2);
        assert_eq!(ctl.fiber(f2).data_count(), 4);
        assert_eq!(ctl.fiber(f1).state(0), ChannelState::Data);
        assert_eq!(ctl.fiber(f1).state(5), ChannelState::Noise);
        assert!(ctl.all_channels_lit());
    }

    #[test]
    fn fig9_reconfiguration_swaps_noise_for_data() {
        // Fiber 1 is cut: λ1–λ2 move onto fiber 2's noise-loaded slots 0–1.
        let (net, _f1, f2) = fig9();
        let mut ctl = NoiseController::new(&net);
        let swaps = ctl.apply_restoration(&[], &[(vec![f2], vec![0, 1])]);
        assert_eq!(swaps.len(), 2);
        assert!(swaps.iter().all(|s| s.to == ChannelState::Data && s.fiber == f2));
        assert_eq!(ctl.fiber(f2).data_count(), 6);
        // The amplifier-visible channel count never changed.
        assert!(ctl.all_channels_lit());
        assert_eq!(ctl.fiber(f2).lit_count(), 8);
    }

    #[test]
    fn surviving_slots_return_to_noise() {
        let (net, f1, f2) = fig9();
        let mut ctl = NoiseController::new(&net);
        // Pretend fiber 2 was cut: its data slots on *surviving* fiber
        // segments (here, modeled by releasing on f2 itself for the 2-node
        // toy) go back to noise while restoration lands on fiber 1.
        let swaps =
            ctl.apply_restoration(&[(f2, vec![2, 3, 4, 5])], &[(vec![f1], vec![2, 3, 4, 5])]);
        assert_eq!(swaps.len(), 8);
        assert_eq!(ctl.fiber(f2).data_count(), 0);
        assert_eq!(ctl.fiber(f1).data_count(), 6);
        assert!(ctl.all_channels_lit());
    }

    #[test]
    fn swaps_are_idempotent_per_state() {
        let (net, _f1, f2) = fig9();
        let mut ctl = NoiseController::new(&net);
        // Restoring onto an already-data slot produces no swap.
        let swaps = ctl.apply_restoration(&[], &[(vec![f2], vec![2])]);
        assert!(swaps.is_empty());
    }
}
