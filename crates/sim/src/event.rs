//! A minimal discrete-event engine.
//!
//! A binary-heap calendar queue with deterministic FIFO tie-breaking for
//! simultaneous events. Event payloads are a caller-defined type; the
//! engine only orders time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Simulation timestamp in seconds.
pub type SimTime = f64;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time (then lowest seq) pops first. total_cmp
        // keeps the heap's comparator total (schedule() rejects non-finite
        // times, but the ordering must not rely on that).
        other.time.total_cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Process-global event-loop health metrics, shared by every queue
/// instance: current depth, total pops, and the distribution of how far
/// ahead of `now` events are scheduled (the calendar horizon).
struct QueueMetrics {
    depth: arrow_obs::Gauge,
    scheduled: arrow_obs::Counter,
    popped: arrow_obs::Counter,
    horizon_seconds: arrow_obs::Histogram,
}

fn queue_metrics() -> &'static QueueMetrics {
    static METRICS: OnceLock<QueueMetrics> = OnceLock::new();
    METRICS.get_or_init(|| QueueMetrics {
        depth: arrow_obs::metrics::gauge("sim.queue.depth"),
        scheduled: arrow_obs::metrics::counter("sim.queue.scheduled"),
        popped: arrow_obs::metrics::counter("sim.queue.popped"),
        horizon_seconds: arrow_obs::metrics::histogram(
            "sim.queue.horizon.seconds",
            &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0],
        ),
    })
}

/// The event calendar.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past — a scheduling bug, not a runtime
    /// condition.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        assert!(at.is_finite(), "event time must be finite");
        self.heap.push(Entry { time: at, seq: self.seq, payload });
        self.seq += 1;
        let m = queue_metrics();
        m.scheduled.inc();
        m.depth.set(self.heap.len() as f64);
        m.horizon_seconds.observe(at - self.now);
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            let m = queue_metrics();
            m.popped.inc();
            m.depth.set(self.heap.len() as f64);
            (e.time, e.payload)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.5, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 7.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
    }
}
