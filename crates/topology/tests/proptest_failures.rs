//! Property tests for the correlated-failure scenario compiler.
//!
//! Three invariants the sharded offline stage leans on:
//!
//! * every compiled scenario carries a valid probability in `(0, 1]`, and
//!   the covered mass (healthy + failures) never exceeds certainty — for
//!   *any* seed, enumeration depth, correlation mechanism, or sampling
//!   budget;
//! * with every correlation knob off, exhaustive `k = 1` enumeration is
//!   the existing single-cut [`generate`] model, probability bits and all
//!   (the compiler is a strict superset, not a fork, of the paper's
//!   Weibull scenario model);
//! * SRLG scenarios never split a shared-risk group: a conduit fails as
//!   one event or not at all.

use std::sync::OnceLock;

use arrow_optical::FiberId;
use arrow_topology::{
    b4, compile_universe, generate_failures, FailureConfig, ScenarioSource, SrlgGroup,
    UniverseConfig, Wan,
};
use proptest::prelude::*;

fn wan() -> &'static Wan {
    static WAN: OnceLock<Wan> = OnceLock::new();
    WAN.get_or_init(|| b4(17))
}

proptest! {
    #[test]
    fn compiled_probabilities_are_in_unit_interval(
        seed in any::<u64>(),
        max_k in 1usize..=3,
        cutoff_exp in 3u32..=6,
        auto_srlg_size in 0usize..=4,
        maintenance_window in 0usize..=3,
        flapping_count in 0usize..=3,
        max_scenarios in 0usize..=32,
    ) {
        let wan = wan();
        let cfg = UniverseConfig {
            seed,
            max_k,
            cutoff: 10f64.powi(-(cutoff_exp as i32)),
            auto_srlg_size,
            auto_srlg_probability: 2e-3,
            maintenance_window,
            maintenance_probability: 1e-3,
            flapping_count,
            max_scenarios,
            ..Default::default()
        };
        let uni = compile_universe(wan, &cfg);
        for c in &uni.scenarios {
            let p = c.scenario.probability;
            prop_assert!(p > 0.0 && p <= 1.0, "scenario {} probability {p} outside (0,1]", c.id);
            prop_assert!(!c.scenario.cut_fibers.is_empty(), "empty cut compiled as a failure");
        }
        prop_assert!(uni.healthy_probability > 0.0 && uni.healthy_probability <= 1.0);
        let covered = uni.covered_probability();
        prop_assert!(covered <= 1.0, "covered probability {covered} exceeds certainty");
        prop_assert!(covered > 0.0);
        if max_scenarios > 0 {
            prop_assert!(uni.len() <= max_scenarios, "sampling budget ignored");
        }
    }

    #[test]
    fn exhaustive_k1_matches_single_cut_generate(seed in any::<u64>()) {
        let wan = wan();
        // The compiler with every correlation knob off...
        let uni = compile_universe(wan, &UniverseConfig {
            seed,
            max_k: 1,
            cutoff: 1e-3,
            ..Default::default()
        });
        // ...against the paper's single-cut Weibull model on the same seed.
        let model = generate_failures(wan, &FailureConfig {
            seed,
            cutoff: 1e-3,
            include_doubles: false,
            ..Default::default()
        });
        let singles = model.failure_scenarios();
        prop_assert_eq!(uni.len(), singles.len(), "scenario counts diverge");
        for s in singles {
            prop_assert_eq!(s.cut_fibers.len(), 1);
            let twin = uni
                .scenarios
                .iter()
                .find(|c| c.scenario.cut_fibers == s.cut_fibers);
            let twin = match twin {
                Some(t) => t,
                None => {
                    return Err(format!("cut {:?} missing from compiled universe", s.cut_fibers))
                }
            };
            prop_assert_eq!(twin.source, ScenarioSource::KCut);
            // Bitwise: the compiler evaluates the identical float
            // expression the legacy enumerator does.
            prop_assert_eq!(
                twin.scenario.probability.to_bits(),
                s.probability.to_bits(),
                "probability bits diverge for cut {:?}",
                s.cut_fibers
            );
            prop_assert_eq!(&twin.scenario.failed_links, &s.failed_links);
        }
    }

    #[test]
    fn srlg_scenarios_never_split_a_group(
        seed in any::<u64>(),
        groups in proptest::collection::vec(
            (proptest::collection::vec(0usize..19, 2..5), 1u32..=40),
            1..4,
        ),
    ) {
        let wan = wan();
        let srlg: Vec<SrlgGroup> = groups
            .iter()
            .map(|(fibers, pm)| SrlgGroup {
                fibers: fibers.iter().map(|&f| FiberId(f)).collect(),
                probability: *pm as f64 * 1e-3,
            })
            .collect();
        let cfg = UniverseConfig { seed, max_k: 2, srlg: srlg.clone(), ..Default::default() };
        let uni = compile_universe(wan, &cfg);
        // Normalize each configured group to its sorted-dedup fiber set —
        // the exact cut set its scenario must carry.
        let normalized: Vec<Vec<FiberId>> = srlg
            .iter()
            .map(|g| {
                let mut f = g.fibers.clone();
                f.sort_unstable();
                f.dedup();
                f
            })
            .collect();
        for c in uni.scenarios.iter().filter(|c| c.source == ScenarioSource::Srlg) {
            prop_assert!(
                normalized.iter().any(|g| g == &c.scenario.cut_fibers),
                "SRLG scenario {:?} is not exactly one configured group",
                c.scenario.cut_fibers
            );
        }
        // Conversely: every configured group's cut set exists somewhere in
        // the universe (possibly attributed to a higher-probability k-cut
        // twin after dedup).
        for g in &normalized {
            prop_assert!(
                uni.scenarios.iter().any(|c| &c.scenario.cut_fibers == g),
                "group {g:?} vanished from the universe"
            );
        }
    }
}
