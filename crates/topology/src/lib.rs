//! # arrow-topology — WAN topologies, demands, and failure models
//!
//! The data substrate for the ARROW evaluation (§6): the three topologies
//! of Table 4 (B4, IBM, and a generated Facebook-like WAN) with their
//! cross-layer IP↔optical mapping, gravity-model traffic matrices with
//! diurnal variation, the Weibull probabilistic fiber-cut scenario model,
//! and seeded synthetic operational telemetry matching the §2 measurement
//! aggregates (failure tickets, lost capacity, wavelength deployments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod distributions;
pub mod failures;
pub mod io;
pub mod telemetry;
pub mod traffic;
pub mod wan;

pub use builders::{b4, facebook_like, ibm, is_two_edge_connected, IpLayerConfig};
pub use failures::{
    compile_universe, generate as generate_failures, CompiledScenario, FailureConfig, FailureModel,
    FailureScenario, ScenarioId, ScenarioSource, ScenarioUniverse, SrlgGroup, UniverseConfig,
    UniverseStats,
};
pub use io::Snapshot;
pub use traffic::{gravity_matrices, TrafficConfig, TrafficMatrix};
pub use wan::{IpLink, IpLinkId, SiteId, Wan};
