//! Topology builders: B4, IBM, and the Facebook-like WAN (Table 4).
//!
//! The paper evaluates on three topologies. B4 and IBM optical layers are
//! embedded here as explicit edge lists matching Table 4's node/fiber
//! counts (the published B4 [47] and the IBM research topology used by
//! SMORE [58]; link lengths are approximate — the evaluation depends on
//! connectivity and reach classes, not exact mileage). The Facebook
//! topology is production-proprietary, so [`facebook_like`] generates a
//! deterministic synthetic WAN reproducing the published *shape*: 34 router
//! sites / 84 ROADMs / 156 fibers / 262 IP links, with IP-links-per-fiber
//! and wavelengths-per-IP-link following the Fig. 22 distributions and
//! fiber spectrum utilization matching Fig. 5a (95% of fibers below 60%).
//!
//! All builders produce a 2-edge-connected optical graph so that every
//! single fiber cut leaves the network connected (the paper's tunnel
//! selection requires ≥ 1 residual tunnel per flow per scenario).

use crate::distributions::discrete;
use crate::wan::{IpLink, SiteId, Wan};
use arrow_optical::{k_shortest_paths, Lightpath, ModulationTable, OpticalNetwork, RoadmId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for IP-layer generation on top of a fixed optical layer.
#[derive(Debug, Clone)]
pub struct IpLayerConfig {
    /// Total number of IP links to provision.
    pub target_links: usize,
    /// Histogram over wavelength counts 1..=N (Fig. 22b shape).
    pub wavelength_weights: Vec<f64>,
    /// Modulation spec sheet used to pick per-wavelength datarates.
    pub modulation: ModulationTable,
    /// RNG seed (builders are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for IpLayerConfig {
    fn default() -> Self {
        IpLayerConfig {
            target_links: 52,
            // Skewed toward small port-channels with a heavy tail, echoing
            // Fig. 22b (most IP links carry a handful of wavelengths, a few
            // carry dozens).
            wavelength_weights: vec![0.26, 0.22, 0.16, 0.12, 0.08, 0.06, 0.04, 0.03, 0.02, 0.01],
            modulation: ModulationTable::default(),
            seed: 17,
        }
    }
}

/// Builds the optical layer from an edge list and returns the network.
fn optical_from_edges(
    num_roadms: usize,
    edges: &[(usize, usize, f64)],
    num_slots: usize,
) -> OpticalNetwork {
    let mut net = OpticalNetwork::new(num_slots);
    let roadms = net.add_roadms(num_roadms);
    for &(a, b, km) in edges {
        let added = net.add_fiber(roadms[a], roadms[b], km);
        debug_assert!(added.is_ok(), "edge list references valid ROADMs");
    }
    net
}

/// Provisions `cfg.target_links` IP links between router sites.
///
/// Strategy: (1) one direct IP link per fiber-adjacent router pair (the IP
/// topology always contains the optical router adjacency); (2) a spanning
/// set over router sites to guarantee IP-layer connectivity; (3) random
/// additional links — including optical express links riding multi-fiber
/// paths (the "purple link" of Fig. 2) — biased toward nearby pairs.
fn provision_ip_layer(
    mut optical: OpticalNetwork,
    router_roadms: &[RoadmId],
    cfg: &IpLayerConfig,
    name: &str,
) -> Wan {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut links: Vec<IpLink> = Vec::new();
    let n_sites = router_roadms.len();
    let site_of_roadm = |r: RoadmId| router_roadms.iter().position(|&x| x == r);

    // Candidate site pairs with a bias weight ∝ 1 / (path length in km).
    let mut pair_weights: Vec<((usize, usize), f64)> = Vec::new();
    for i in 0..n_sites {
        for j in i + 1..n_sites {
            if let Some(p) =
                arrow_optical::shortest_path(&optical, router_roadms[i], router_roadms[j], &[], &[])
            {
                if p.length_km <= cfg.modulation.max_reach_km() {
                    pair_weights.push(((i, j), 1.0 / (p.length_km + 100.0)));
                }
            }
        }
    }

    // `strict` refuses paths whose hottest fiber already exceeds ~58%
    // utilization (used by the random fill pass; connectivity passes may
    // exceed it as a last resort).
    let try_provision = |optical: &mut OpticalNetwork,
                         rng: &mut StdRng,
                         i: usize,
                         j: usize,
                         want_waves: usize,
                         strict: bool|
     -> Option<IpLink> {
        let src = router_roadms[i];
        let dst = router_roadms[j];
        // Up to 3 candidate paths, tried least-loaded first so that load
        // spreads instead of piling onto the shortest central fibers (this
        // is what keeps the Fig. 5a utilization profile: 95% < 60%).
        let mut paths = k_shortest_paths(optical, src, dst, 4, &[], cfg.modulation.max_reach_km());
        // Takes the network explicitly (no capture) so the borrow ends at
        // each call and `optical.provision` below can borrow mutably.
        let load = |net: &OpticalNetwork, p: &arrow_optical::FiberPath| -> f64 {
            p.fibers.iter().map(|&f| net.fiber(f).spectrum.utilization()).fold(0.0, f64::max)
        };
        // Keep hot fibers under ~55% so the utilization profile matches
        // Fig. 5a; overloaded candidates are only used as a last resort.
        paths.sort_by(|a, b| {
            let (la, lb) = (load(optical, a), load(optical, b));
            let (ca, cb) = (la >= 0.55, lb >= 0.55);
            ca.cmp(&cb).then(la.total_cmp(&lb))
        });
        for path in paths {
            if strict && load(optical, &path) >= 0.58 {
                continue;
            }
            let Some(gbps) = cfg.modulation.max_gbps_for_length(path.length_km) else {
                continue;
            };
            // Cap the port-channel so the path's hottest fiber stays under
            // ~60% utilization (Fig. 5a profile); always allow one wave.
            let hottest = path
                .fibers
                .iter()
                .map(|&f| optical.fiber(f).spectrum.occupied_count())
                .max()
                .unwrap_or(0);
            let budget = (optical.num_slots() * 3 / 5).saturating_sub(hottest).max(1);
            let want_waves = want_waves.min(budget);
            // First-fit continuity: slots free on every fiber of the path.
            let mut slots = Vec::new();
            for w in 0..optical.num_slots() {
                if slots.len() >= want_waves {
                    break;
                }
                if path.fibers.iter().all(|&f| optical.fiber(f).spectrum.is_free(w)) {
                    slots.push(w);
                }
            }
            if slots.is_empty() {
                continue;
            }
            let _ = rng;
            let capacity = slots.len() as f64 * gbps;
            // Slots were checked free above, so provisioning succeeds; if
            // it ever refused, trying the next candidate path is still the
            // right move.
            let Ok(lp) = optical.provision(Lightpath {
                src,
                dst,
                path: path.fibers.clone(),
                slots,
                gbps_per_wavelength: gbps,
            }) else {
                continue;
            };
            return Some(IpLink {
                a: SiteId(i),
                b: SiteId(j),
                lightpath: lp,
                capacity_gbps: capacity,
            });
        }
        None
    };

    // Pass 1: direct links for fiber-adjacent router pairs.
    let mut adjacent_pairs: Vec<(usize, usize)> = Vec::new();
    for f in 0..optical.num_fibers() {
        let fiber = optical.fiber(arrow_optical::FiberId(f));
        if let (Some(i), Some(j)) = (site_of_roadm(fiber.a), site_of_roadm(fiber.b)) {
            let pair = (i.min(j), i.max(j));
            if !adjacent_pairs.contains(&pair) {
                adjacent_pairs.push(pair);
            }
        }
    }
    for &(i, j) in &adjacent_pairs {
        if links.len() >= cfg.target_links {
            break;
        }
        let waves = 1 + discrete(&mut rng, &cfg.wavelength_weights);
        if let Some(l) = try_provision(&mut optical, &mut rng, i, j, waves, false) {
            links.push(l);
        }
    }

    // Pass 2: connect any site still isolated in the IP layer via its
    // nearest reachable peer (guarantees IP connectivity).
    for i in 0..n_sites {
        if links.iter().any(|l| l.a.0 == i || l.b.0 == i) {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for &((a, b), w) in &pair_weights {
            if a == i || b == i {
                let peer = if a == i { b } else { a };
                if best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((peer, w));
                }
            }
        }
        if let Some((peer, _)) = best {
            let waves = 1 + discrete(&mut rng, &cfg.wavelength_weights);
            if let Some(l) =
                try_provision(&mut optical, &mut rng, i.min(peer), i.max(peer), waves, false)
            {
                links.push(l);
            }
        }
    }

    // Pass 3: fill to the target with biased random pairs.
    let weights: Vec<f64> = pair_weights.iter().map(|&(_, w)| w).collect();
    let mut attempts = 0;
    while links.len() < cfg.target_links && attempts < cfg.target_links * 60 {
        attempts += 1;
        let (i, j) = pair_weights[discrete(&mut rng, &weights)].0;
        let waves = 1 + discrete(&mut rng, &cfg.wavelength_weights);
        if let Some(l) = try_provision(&mut optical, &mut rng, i, j, waves, true) {
            links.push(l);
        }
    }
    assert!(
        links.len() >= cfg.target_links * 9 / 10,
        "{name}: could only provision {} of {} IP links — spectrum exhausted",
        links.len(),
        cfg.target_links
    );

    Wan { name: name.to_string(), optical, site_roadm: router_roadms.to_vec(), links }
}

/// Whether the optical graph stays connected after removing any single
/// fiber (2-edge-connectivity). Used by tests and the generator.
pub fn is_two_edge_connected(net: &OpticalNetwork) -> bool {
    let n = net.num_roadms();
    if n <= 1 {
        return true;
    }
    for skip in 0..net.num_fibers() {
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(at) = stack.pop() {
            for &f in net.incident_fibers(RoadmId(at)) {
                if f.0 == skip {
                    continue;
                }
                let next = net.fiber(f).other_end(RoadmId(at)).0;
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return false;
        }
    }
    true
}

/// The B4-like WAN: 12 routers/ROADMs, 19 fibers, 52 IP links (Table 4).
pub fn b4(seed: u64) -> Wan {
    // Approximate B4 inter-datacenter graph [47]: 12 sites, 19 links.
    let edges: &[(usize, usize, f64)] = &[
        (0, 1, 330.0),
        (0, 2, 605.0),
        (0, 11, 495.0),
        (1, 2, 385.0),
        (1, 11, 440.0),
        (2, 3, 825.0),
        (10, 11, 1100.0),
        (3, 4, 275.0),
        (3, 5, 1320.0),
        (4, 5, 1210.0),
        (4, 9, 1100.0),
        (5, 6, 385.0),
        (6, 7, 1430.0),
        (6, 9, 1265.0),
        (7, 8, 330.0),
        (7, 10, 495.0),
        (8, 10, 385.0),
        (8, 9, 990.0),
        (9, 11, 935.0),
    ];
    let optical = optical_from_edges(12, edges, 64);
    let routers: Vec<RoadmId> = (0..12).map(RoadmId).collect();
    let cfg = IpLayerConfig { target_links: 52, seed, ..Default::default() };
    provision_ip_layer(optical, &routers, &cfg, "B4")
}

/// The IBM WAN: 17 routers/ROADMs, 23 fibers, 85 IP links (Table 4).
pub fn ibm(seed: u64) -> Wan {
    // Ring of 17 plus 6 chords = 23 fibers (IBM research backbone shape).
    let mut edges: Vec<(usize, usize, f64)> =
        (0..17).map(|i| (i, (i + 1) % 17, 280.0 + 84.0 * (i as f64 % 5.0))).collect();
    edges.extend_from_slice(&[
        (0, 8, 1120.0),
        (2, 12, 1330.0),
        (4, 10, 980.0),
        (5, 14, 1260.0),
        (1, 6, 840.0),
        (9, 15, 910.0),
    ]);
    let optical = optical_from_edges(17, &edges, 64);
    let routers: Vec<RoadmId> = (0..17).map(RoadmId).collect();
    let cfg = IpLayerConfig { target_links: 85, seed, ..Default::default() };
    provision_ip_layer(optical, &routers, &cfg, "IBM")
}

/// The Facebook-like WAN: 34 routers, 84 ROADMs, 156 fibers, 262 IP links
/// (Table 4), generated deterministically from `seed`.
pub fn facebook_like(seed: u64) -> Wan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE_B00C);
    let n_roadms = 84;
    // Scatter ROADM sites over a continental footprint.
    let pts: Vec<(f64, f64)> =
        (0..n_roadms).map(|_| (rng.gen_range(0.0..4200.0), rng.gen_range(0.0..2400.0))).collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pts[a].0 - pts[b].0;
        let dy = pts[a].1 - pts[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    // Minimum spanning tree (Prim) for the backbone skeleton.
    let mut in_tree = vec![false; n_roadms];
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    in_tree[0] = true;
    for _ in 1..n_roadms {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..n_roadms {
            if !in_tree[a] {
                continue;
            }
            for (b, &bt) in in_tree.iter().enumerate().take(n_roadms) {
                if bt {
                    continue;
                }
                let d = dist(a, b);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        // Every Prim round over a non-spanning tree finds a frontier edge.
        let Some((a, b, d)) = best else { break };
        in_tree[b] = true;
        edges.push((a, b, d));
    }
    // Densify to exactly 156 fibers in two passes. Pass 1 makes the graph
    // 2-edge-connected: a chord (a, b) puts every MST edge on the a–b tree
    // path into a cycle, so chords are added greedily (shortest first)
    // until every MST edge is covered. Pass 2 fills the remaining budget
    // with short chords, skipping every 7th to spread connectivity.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for a in 0..n_roadms {
        for b in a + 1..n_roadms {
            if !edges.iter().any(|&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a)) {
                candidates.push((a, b, dist(a, b)));
            }
        }
    }
    candidates.sort_by(|x, y| x.2.total_cmp(&y.2));
    // MST adjacency for tree-path queries.
    let mst: Vec<(usize, usize)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
    let tree_path = |a: usize, b: usize| -> Vec<usize> {
        // BFS from a to b over MST edges; returns indices into `mst`.
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n_roadms]; // (node, edge idx)
        let mut queue = std::collections::VecDeque::from([a]);
        let mut seen = vec![false; n_roadms];
        seen[a] = true;
        while let Some(at) = queue.pop_front() {
            if at == b {
                break;
            }
            for (ei, &(x, y)) in mst.iter().enumerate() {
                let next = if x == at {
                    y
                } else if y == at {
                    x
                } else {
                    continue;
                };
                if !seen[next] {
                    seen[next] = true;
                    prev[next] = Some((at, ei));
                    queue.push_back(next);
                }
            }
        }
        let mut path = Vec::new();
        let mut at = b;
        while at != a {
            // The MST is connected, so BFS reaches b with a full chain.
            let Some((p, ei)) = prev[at] else { break };
            path.push(ei);
            at = p;
        }
        path
    };
    let mut covered = vec![false; mst.len()];
    let mut used = vec![false; candidates.len()];
    // Pass 1: cover all MST edges with cycles.
    for (ci, &(a, b, d)) in candidates.iter().enumerate() {
        if covered.iter().all(|&c| c) {
            break;
        }
        let path = tree_path(a, b);
        if path.iter().any(|&ei| !covered[ei]) {
            for ei in path {
                covered[ei] = true;
            }
            edges.push((a, b, d));
            used[ci] = true;
        }
    }
    assert!(covered.iter().all(|&c| c), "chord pool too small to 2-edge-connect");
    // Pass 2: fill to the Table 4 fiber count.
    let mut idx = 0;
    while edges.len() < 156 && idx < candidates.len() {
        if idx % 7 != 3 && !used[idx] {
            edges.push(candidates[idx]);
        }
        idx += 1;
    }
    assert_eq!(edges.len(), 156, "candidate pool too small");
    // Fiber length: euclidean distance with a routing detour factor.
    let edges_km: Vec<(usize, usize, f64)> =
        edges.iter().map(|&(a, b, d)| (a, b, (d * 1.25 + 40.0).min(2900.0))).collect();
    let optical = optical_from_edges(n_roadms, &edges_km, 96);
    debug_assert!(is_two_edge_connected(&optical));

    // Router sites: 34 ROADMs chosen greedily for max-min spread.
    let mut routers: Vec<usize> = vec![0];
    while routers.len() < 34 {
        let Some(far) = (0..n_roadms).filter(|r| !routers.contains(r)).max_by(|&a, &b| {
            let da = routers.iter().map(|&r| dist(a, r)).fold(f64::INFINITY, f64::min);
            let db = routers.iter().map(|&r| dist(b, r)).fold(f64::INFINITY, f64::min);
            da.total_cmp(&db)
        }) else {
            break;
        };
        routers.push(far);
    }
    let router_roadms: Vec<RoadmId> = routers.into_iter().map(RoadmId).collect();
    let cfg = IpLayerConfig {
        target_links: 262,
        seed,
        // Facebook port-channels reach dozens of wavelengths (Fig. 22b has
        // a heavier tail than B4/IBM).
        wavelength_weights: vec![
            0.18, 0.17, 0.14, 0.12, 0.09, 0.07, 0.06, 0.05, 0.04, 0.03, 0.02, 0.02, 0.01,
        ],
        ..Default::default()
    };
    provision_ip_layer(optical, &router_roadms, &cfg, "Facebook")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4_matches_table4() {
        let wan = b4(17);
        assert_eq!(wan.num_sites(), 12);
        assert_eq!(wan.optical.num_roadms(), 12);
        assert_eq!(wan.optical.num_fibers(), 19);
        assert_eq!(wan.num_links(), 52);
        wan.validate().unwrap();
    }

    #[test]
    fn ibm_matches_table4() {
        let wan = ibm(17);
        assert_eq!(wan.num_sites(), 17);
        assert_eq!(wan.optical.num_fibers(), 23);
        assert_eq!(wan.num_links(), 85);
        wan.validate().unwrap();
    }

    #[test]
    fn b4_and_ibm_optical_are_two_edge_connected() {
        assert!(is_two_edge_connected(&b4(17).optical));
        assert!(is_two_edge_connected(&ibm(17).optical));
    }

    #[test]
    fn facebook_like_matches_table4_shape() {
        let wan = facebook_like(17);
        assert_eq!(wan.num_sites(), 34);
        assert_eq!(wan.optical.num_roadms(), 84);
        assert_eq!(wan.optical.num_fibers(), 156);
        assert!(wan.num_links() >= 236, "IP links {} (target 262, ≥90% required)", wan.num_links());
        wan.validate().unwrap();
        assert!(is_two_edge_connected(&wan.optical));
    }

    #[test]
    fn facebook_like_spectrum_utilization_matches_fig5a() {
        let wan = facebook_like(17);
        let utils: Vec<f64> =
            wan.optical.fibers().iter().map(|f| f.spectrum.utilization()).collect();
        let below_60 = utils.iter().filter(|&&u| u < 0.6).count() as f64 / utils.len() as f64;
        assert!(below_60 >= 0.9, "only {:.0}% of fibers below 60% utilization", below_60 * 100.0);
    }

    #[test]
    fn builders_are_deterministic() {
        let a = b4(99);
        let b = b4(99);
        assert_eq!(a.num_links(), b.num_links());
        let ca: Vec<f64> = a.links.iter().map(|l| l.capacity_gbps).collect();
        let cb: Vec<f64> = b.links.iter().map(|l| l.capacity_gbps).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn seeds_change_the_ip_layer() {
        let a = b4(1);
        let b = b4(2);
        let ca: Vec<f64> = a.links.iter().map(|l| l.capacity_gbps).collect();
        let cb: Vec<f64> = b.links.iter().map(|l| l.capacity_gbps).collect();
        assert_ne!(ca, cb);
    }

    #[test]
    fn ip_links_ride_valid_paths() {
        let wan = b4(17);
        for l in &wan.links {
            let lp = wan.optical.lightpath(l.lightpath);
            assert!(!lp.path.is_empty());
            assert!(lp.capacity_gbps() > 0.0);
        }
    }

    #[test]
    fn every_site_has_an_ip_link() {
        for wan in [b4(17), ibm(17)] {
            for s in 0..wan.num_sites() {
                assert!(
                    !wan.incident_links(crate::wan::SiteId(s)).is_empty(),
                    "site {s} isolated in {}",
                    wan.name
                );
            }
        }
    }
}
