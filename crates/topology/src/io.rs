//! JSON persistence for topologies, traffic, and failure models.
//!
//! Experiment artifacts (the generated WAN, its traffic matrices, the
//! sampled failure model) can be saved and reloaded so that runs are
//! reproducible byte-for-byte even across versions of the generators.
//! Plain `serde_json` text — diffable, greppable, no custom format.

use crate::failures::FailureModel;
use crate::traffic::TrafficMatrix;
use crate::wan::Wan;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A self-contained experiment snapshot: one WAN with its demands and
/// failure model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// The two-layer WAN.
    pub wan: Wan,
    /// Traffic matrices (time epochs).
    pub traffic: Vec<TrafficMatrix>,
    /// The probabilistic failure model.
    pub failures: FailureModel,
}

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Parse(serde_json::Error),
    /// The decoded snapshot fails cross-layer validation.
    Invalid(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(e) => write!(f, "parse error: {e}"),
            IoError::Invalid(m) => write!(f, "invalid snapshot: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Parse(e)
    }
}

impl Snapshot {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String, IoError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses from JSON and validates the cross-layer mapping.
    pub fn from_json(text: &str) -> Result<Self, IoError> {
        let snap: Snapshot = serde_json::from_str(text)?;
        snap.wan.validate().map_err(IoError::Invalid)?;
        for tm in &snap.traffic {
            if tm.num_sites() != snap.wan.num_sites() {
                return Err(IoError::Invalid(format!(
                    "traffic matrix over {} sites, WAN has {}",
                    tm.num_sites(),
                    snap.wan.num_sites()
                )));
            }
        }
        Ok(snap)
    }

    /// Writes the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IoError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads and validates a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, IoError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::b4;
    use crate::failures::{generate, FailureConfig};
    use crate::traffic::{gravity_matrices, TrafficConfig};

    fn snapshot() -> Snapshot {
        let wan = b4(17);
        let traffic =
            gravity_matrices(&wan, &TrafficConfig { num_matrices: 2, ..Default::default() });
        let failures = generate(&wan, &FailureConfig { max_scenarios: 4, ..Default::default() });
        Snapshot { wan, traffic, failures }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let snap = snapshot();
        let json = snap.to_json().unwrap();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back.wan.num_links(), snap.wan.num_links());
        assert_eq!(back.wan.optical.num_fibers(), snap.wan.optical.num_fibers());
        assert_eq!(back.traffic.len(), 2);
        assert_eq!(back.traffic[0].total(), snap.traffic[0].total());
        assert_eq!(back.failures.scenarios.len(), snap.failures.scenarios.len());
        // Spectrum occupancy survives (private bitset fields).
        let f0 = arrow_optical::FiberId(0);
        assert_eq!(
            back.wan.optical.fiber(f0).spectrum.occupied_count(),
            snap.wan.optical.fiber(f0).spectrum.occupied_count()
        );
    }

    #[test]
    fn file_roundtrip() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("arrow_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b4.json");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.wan.summary(), snap.wan.summary());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(matches!(Snapshot::from_json("{not json"), Err(IoError::Parse(_))));
    }

    #[test]
    fn mismatched_traffic_is_rejected() {
        let mut snap = snapshot();
        snap.traffic.push(crate::traffic::TrafficMatrix::zeros(3));
        let json = snap.to_json().unwrap();
        assert!(matches!(Snapshot::from_json(&json), Err(IoError::Invalid(_))));
    }
}
