//! Probabilistic fiber-cut scenarios.
//!
//! Follows §6 "Fiber cut scenarios": each fiber's failure probability is
//! drawn from a Weibull distribution (shape 0.8, scale 0.02, per TeaVaR's
//! methodology), and the scenario set enumerates single and double fiber
//! cuts whose joint probability exceeds a cutoff (0.001 for B4/IBM, 0.0002
//! for Facebook). When a fiber fails, every IP link riding it fails
//! simultaneously.

use crate::distributions::weibull;
use crate::wan::{IpLinkId, Wan};
use arrow_optical::FiberId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One failure scenario: a set of cut fibers with its probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Fibers cut in this scenario (empty = the healthy scenario).
    pub cut_fibers: Vec<FiberId>,
    /// Joint probability of exactly this cut set.
    pub probability: f64,
    /// IP links that fail (derived from the cross-layer mapping).
    pub failed_links: Vec<IpLinkId>,
}

impl FailureScenario {
    /// Whether this is the no-failure scenario.
    pub fn is_healthy(&self) -> bool {
        self.cut_fibers.is_empty()
    }
}

/// Configuration of scenario generation.
#[derive(Debug, Clone)]
pub struct FailureConfig {
    /// Weibull shape for per-fiber failure probability (paper: 0.8).
    pub weibull_shape: f64,
    /// Weibull scale (paper: 0.02).
    pub weibull_scale: f64,
    /// Scenario probability cutoff (paper: 1e-3 B4/IBM, 2e-4 Facebook).
    pub cutoff: f64,
    /// Include double-cut scenarios (the paper's sets "may contain both").
    pub include_doubles: bool,
    /// Cap on the number of scenarios, keeping the most probable (`0` = no
    /// cap). The paper's probabilistic approach "only considers
    /// highly-probable failure scenarios".
    pub max_scenarios: usize,
    /// RNG seed for the per-fiber probabilities.
    pub seed: u64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            weibull_shape: 0.8,
            weibull_scale: 0.02,
            cutoff: 1e-3,
            include_doubles: true,
            max_scenarios: 0,
            seed: 31,
        }
    }
}

/// The generated probabilistic failure model for one WAN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-fiber failure probability.
    pub fiber_prob: Vec<f64>,
    /// Scenarios above the cutoff. The first entry is always the healthy
    /// scenario; the rest are sorted by descending probability.
    pub scenarios: Vec<FailureScenario>,
}

impl FailureModel {
    /// The failure (non-healthy) scenarios only.
    pub fn failure_scenarios(&self) -> &[FailureScenario] {
        &self.scenarios[1..]
    }

    /// Total probability mass captured by the enumerated scenarios,
    /// clamped to 1.
    ///
    /// The scenarios of a well-formed model are disjoint events, so their
    /// probabilities sum to at most 1; duplicate entries (the same cut
    /// set counted twice — e.g. a hand-assembled model, or a buggy merge)
    /// used to inflate this silently past certainty and corrupt every
    /// availability figure downstream. The sum is now clamped at 1.0 and
    /// the overflow reported through obs instead.
    pub fn covered_probability(&self) -> f64 {
        clamp_covered(self.scenarios.iter().map(|s| s.probability).sum())
    }
}

/// Clamps an accumulated probability mass to `[.., 1.0]`, surfacing any
/// real overflow (duplicate scenarios) as a warn event + counter rather
/// than silently returning an impossible mass. Tolerates float roundoff.
fn clamp_covered(sum: f64) -> f64 {
    if sum > 1.0 + 1e-9 {
        arrow_obs::event!(warn: "failures.covered_probability.overflow", "sum" => sum);
        arrow_obs::metrics::counter("scenario.prob.overflow").inc();
    }
    sum.min(1.0)
}

/// Orders scenarios by descending probability. total_cmp keeps the
/// comparator total: a NaN probability (degenerate upstream inputs) sorts
/// deterministically instead of panicking mid-sort.
fn sort_by_probability_desc(scenarios: &mut [FailureScenario]) {
    scenarios.sort_by(|a, b| b.probability.total_cmp(&a.probability));
}

/// Draws per-fiber failure probabilities and enumerates scenarios.
pub fn generate(wan: &Wan, cfg: &FailureConfig) -> FailureModel {
    let nf = wan.optical.num_fibers();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let fiber_prob: Vec<f64> =
        (0..nf).map(|_| weibull(&mut rng, cfg.weibull_shape, cfg.weibull_scale).min(0.5)).collect();
    let healthy_prob: f64 = fiber_prob.iter().map(|p| 1.0 - p).product();

    let mut scenarios = Vec::new();
    // Single cuts.
    for (f, &pf) in fiber_prob.iter().enumerate().take(nf) {
        let p = healthy_prob / (1.0 - pf) * pf;
        if p >= cfg.cutoff {
            let cut = vec![FiberId(f)];
            let failed_links = wan.links_failed_by(&cut);
            scenarios.push(FailureScenario { cut_fibers: cut, probability: p, failed_links });
        }
    }
    // Double cuts.
    if cfg.include_doubles {
        for f in 0..nf {
            for g in f + 1..nf {
                let p = healthy_prob / ((1.0 - fiber_prob[f]) * (1.0 - fiber_prob[g]))
                    * fiber_prob[f]
                    * fiber_prob[g];
                if p >= cfg.cutoff {
                    let cut = vec![FiberId(f), FiberId(g)];
                    let failed_links = wan.links_failed_by(&cut);
                    scenarios.push(FailureScenario {
                        cut_fibers: cut,
                        probability: p,
                        failed_links,
                    });
                }
            }
        }
    }
    sort_by_probability_desc(&mut scenarios);
    if cfg.max_scenarios > 0 && scenarios.len() > cfg.max_scenarios {
        scenarios.truncate(cfg.max_scenarios);
    }
    let mut all = vec![FailureScenario {
        cut_fibers: Vec::new(),
        probability: healthy_prob,
        failed_links: Vec::new(),
    }];
    all.extend(scenarios);
    FailureModel { fiber_prob, scenarios: all }
}

// ---------------------------------------------------------------------------
// Scenario compiler: correlated multi-failure universes.
// ---------------------------------------------------------------------------

/// Stable content identity of a failure scenario: FNV-1a over the sorted,
/// deduplicated cut-fiber ids.
///
/// Two scenarios that cut the same fibers get the same id no matter which
/// mechanism produced them (k-cut enumeration, an SRLG group, a
/// maintenance window) or in what order the fibers were listed — this is
/// what the compiler dedups on and what shard digests build over.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ScenarioId(pub u64);

impl ScenarioId {
    /// Digest of a cut set (order- and duplicate-insensitive).
    pub fn of_cut(cut: &[FiberId]) -> ScenarioId {
        let mut ids: Vec<usize> = cut.iter().map(|f| f.0).collect();
        ids.sort_unstable();
        ids.dedup();
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(ids.len() as u64);
        for id in ids {
            mix(id as u64);
        }
        ScenarioId(h)
    }
}

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Which compiler mechanism produced a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioSource {
    /// Exhaustive independent k-cut enumeration (k = `cut_fibers.len()`).
    KCut,
    /// A shared-risk link group — fibers in one conduit failing together.
    Srlg,
    /// A rolling maintenance window taking a fiber span down.
    Maintenance,
    /// A flapping fiber (elevated failure probability) — still a k-cut,
    /// but tagged so reports can attribute the mass.
    Flapping,
}

/// One compiled scenario: the failure set plus its identity and origin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledScenario {
    /// Content digest of the cut set (see [`ScenarioId`]).
    pub id: ScenarioId,
    /// The mechanism that generated it (after dedup, the one whose
    /// probability estimate won).
    pub source: ScenarioSource,
    /// The failure scenario itself (cut fibers, exact probability, failed
    /// IP links).
    pub scenario: FailureScenario,
}

/// A shared-risk link group: fibers sharing a conduit/right-of-way that a
/// single backhoe takes out together.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SrlgGroup {
    /// The fibers that fail as one.
    pub fibers: Vec<FiberId>,
    /// Probability of the conduit cut (clamped into `(0, 0.5]` at
    /// compile time).
    pub probability: f64,
}

/// Configuration of [`compile_universe`].
///
/// The Weibull fields and `cutoff` mirror [`FailureConfig`] — with every
/// correlation knob off (`max_k = 1`, no SRLG/maintenance/flapping), the
/// compiled universe reproduces [`generate`]'s single-cut scenarios
/// bit-for-bit (pinned by `tests/proptest_failures.rs`).
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Weibull shape for per-fiber failure probability (paper: 0.8).
    pub weibull_shape: f64,
    /// Weibull scale (paper: 0.02).
    pub weibull_scale: f64,
    /// RNG seed for per-fiber probabilities and importance sampling.
    pub seed: u64,
    /// Exhaustive-enumeration budget: all cut sets of up to this many
    /// fibers whose joint probability clears `cutoff`.
    pub max_k: usize,
    /// Joint-probability cutoff pruning the k-cut enumeration. Pruning is
    /// exact: per-fiber probabilities are capped at 0.5, so extending a
    /// cut never raises its probability.
    pub cutoff: f64,
    /// Explicit shared-risk groups (conduits).
    pub srlg: Vec<SrlgGroup>,
    /// Auto-generate SRLGs by chunking consecutive fiber ids into
    /// conduits of this size (0 = off). Builders lay parallel fibers at
    /// adjacent ids, so consecutive chunks approximate shared trenches.
    pub auto_srlg_size: usize,
    /// Conduit-cut probability for auto-generated SRLGs.
    pub auto_srlg_probability: f64,
    /// Fibers per rolling maintenance window (0 = off).
    pub maintenance_window: usize,
    /// Window start stride in fibers (defaults to the window size when 0,
    /// i.e. non-overlapping windows).
    pub maintenance_stride: usize,
    /// Fraction of time a window's fiber span is under maintenance.
    pub maintenance_probability: f64,
    /// Number of highest-probability fibers treated as flapping (0 = off).
    pub flapping_count: usize,
    /// Multiplier applied to a flapping fiber's failure probability
    /// (capped at 0.5).
    pub flapping_boost: f64,
    /// Importance-sample the universe down to this many scenarios
    /// (0 = keep everything). Sampling is weighted without replacement by
    /// exact scenario probability (Efraimidis–Spirakis keys), so the kept
    /// scenarios are the probable ones and each keeps its *exact*
    /// probability — coverage shrinks, correctness does not.
    pub max_scenarios: usize,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            weibull_shape: 0.8,
            weibull_scale: 0.02,
            seed: 31,
            max_k: 2,
            cutoff: 1e-3,
            srlg: Vec::new(),
            auto_srlg_size: 0,
            auto_srlg_probability: 5e-4,
            maintenance_window: 0,
            maintenance_stride: 0,
            maintenance_probability: 1e-3,
            flapping_count: 0,
            flapping_boost: 8.0,
            max_scenarios: 0,
        }
    }
}

/// What the compiler did, for reports and BENCH artifacts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniverseStats {
    /// Candidate scenarios produced by all mechanisms before dedup.
    pub enumerated: usize,
    /// Candidates dropped because another mechanism already produced the
    /// same cut set (the higher-probability estimate wins).
    pub deduped: usize,
    /// Candidates dropped by importance sampling.
    pub sampled_out: usize,
    /// Scenarios in the final universe.
    pub kept: usize,
}

/// A compiled, deduplicated, importance-sampled set of correlated failure
/// scenarios — the production-scale replacement for [`FailureModel`]'s
/// single/double cuts (ROADMAP item 1).
///
/// Scenarios are sorted by descending probability (ties broken by
/// [`ScenarioId`]) and hold **failure** scenarios only; the healthy state
/// lives in `healthy_probability`. Ticket generation shards over the
/// universe by global index (`arrow-core`'s `ShardSpec`), so this order
/// is part of the determinism contract: equal configs compile equal
/// universes, byte for byte.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioUniverse {
    /// Per-fiber failure probability (after flapping boosts).
    pub fiber_prob: Vec<f64>,
    /// Probability that no fiber fails.
    pub healthy_probability: f64,
    /// The compiled failure scenarios, most probable first.
    pub scenarios: Vec<CompiledScenario>,
    /// Compile-time accounting.
    pub stats: UniverseStats,
}

impl ScenarioUniverse {
    /// Number of failure scenarios in the universe.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the universe holds no failure scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The failure scenario at global index `i`.
    pub fn scenario(&self, i: usize) -> &FailureScenario {
        &self.scenarios[i].scenario
    }

    /// Per-scenario probabilities, parallel to the global index order.
    pub fn probabilities(&self) -> Vec<f64> {
        self.scenarios.iter().map(|c| c.scenario.probability).collect()
    }

    /// The failure scenarios as a plain slice-able vector (the shape the
    /// ticket generator and TE instances consume).
    pub fn failure_scenarios(&self) -> Vec<FailureScenario> {
        self.scenarios.iter().map(|c| c.scenario.clone()).collect()
    }

    /// Probability mass covered by the universe plus the healthy state,
    /// clamped to 1 (see [`FailureModel::covered_probability`] for why
    /// clamping; correlated sources are not disjoint from the independent
    /// model, so the raw sum can legitimately overshoot).
    pub fn covered_probability(&self) -> f64 {
        clamp_covered(
            self.healthy_probability
                + self.scenarios.iter().map(|c| c.scenario.probability).sum::<f64>(),
        )
    }

    /// Adapts the universe to the legacy [`FailureModel`] shape (healthy
    /// scenario first) so the existing controller / availability pipeline
    /// can consume a compiled universe unchanged.
    pub fn to_failure_model(&self) -> FailureModel {
        let mut all = vec![FailureScenario {
            cut_fibers: Vec::new(),
            probability: self.healthy_probability,
            failed_links: Vec::new(),
        }];
        all.extend(self.scenarios.iter().map(|c| c.scenario.clone()));
        FailureModel { fiber_prob: self.fiber_prob.clone(), scenarios: all }
    }

    /// Order-sensitive digest of the universe (ids + probability bits) —
    /// logged by the sweep driver so two processes can assert they
    /// compiled the same universe before trusting a shard merge.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.scenarios.len() as u64);
        for c in &self.scenarios {
            mix(c.id.0);
            mix(c.scenario.probability.to_bits());
        }
        h
    }
}

/// splitmix64 — the same mixing the offline stage uses for per-scenario
/// RNG streams; here it keys per-scenario sampling draws off
/// `(seed, ScenarioId)` so the draw is independent of enumeration order.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One candidate scenario mid-compilation (pre-dedup).
struct Candidate {
    id: ScenarioId,
    source: ScenarioSource,
    cut: Vec<FiberId>,
    probability: f64,
}

/// Exhaustive k-cut DFS: enumerates cut sets of size ≤ `max_k` whose
/// joint probability under independent fiber failures clears `cutoff`.
///
/// Probability is extended incrementally as `p / (1 - p_f) * p_f` — for
/// k = 1 this is the *identical* float expression [`generate`] evaluates,
/// so single-cut probabilities match bit-for-bit. Pruning is exact: each
/// `p_f ≤ 0.5`, so extending a cut never increases its probability, and
/// any branch below the cutoff can be dropped with everything beneath it.
struct KCutDfs<'a> {
    fiber_prob: &'a [f64],
    flapping: &'a [bool],
    max_k: usize,
    cutoff: f64,
    out: Vec<Candidate>,
}

impl KCutDfs<'_> {
    fn walk(&mut self, start: usize, p: f64, cut: &mut Vec<usize>) {
        for f in start..self.fiber_prob.len() {
            let pf = self.fiber_prob[f];
            if pf <= 0.0 {
                continue;
            }
            let pc = p / (1.0 - pf) * pf;
            if pc < self.cutoff {
                continue;
            }
            cut.push(f);
            let fibers: Vec<FiberId> = cut.iter().map(|&i| FiberId(i)).collect();
            let source = if cut.iter().any(|&i| self.flapping[i]) {
                ScenarioSource::Flapping
            } else {
                ScenarioSource::KCut
            };
            self.out.push(Candidate {
                id: ScenarioId::of_cut(&fibers),
                source,
                cut: fibers,
                probability: pc,
            });
            if cut.len() < self.max_k {
                self.walk(f + 1, pc, cut);
            }
            cut.pop();
        }
    }
}

/// Compiles a correlated multi-failure [`ScenarioUniverse`] for one WAN.
///
/// Mechanisms, in order: exhaustive k-cut enumeration (with flapping
/// boosts applied first), explicit + auto SRLG conduit groups, rolling
/// maintenance windows; then content dedup by [`ScenarioId`] (highest
/// probability estimate wins), a descending-probability sort, and
/// optional importance sampling down to `max_scenarios`. Obs: one
/// `scenario.compile` span, plus `scenario.compiled` / `scenario.dedup` /
/// `scenario.sampled` counters (candidates enumerated, duplicates
/// removed, scenarios kept).
pub fn compile_universe(wan: &Wan, cfg: &UniverseConfig) -> ScenarioUniverse {
    let nf = wan.optical.num_fibers();
    let _span = arrow_obs::span!(
        "scenario.compile",
        "fibers" => nf,
        "max_k" => cfg.max_k,
        "max_scenarios" => cfg.max_scenarios,
    );

    // Per-fiber probabilities: the identical stream FailureConfig draws
    // (same seed → same probabilities), then flapping boosts.
    // arrow-lint: allow(determinism-taint) — stream is seeded from UniverseConfig::seed, so identical configs compile identical universes
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut fiber_prob: Vec<f64> =
        (0..nf).map(|_| weibull(&mut rng, cfg.weibull_shape, cfg.weibull_scale).min(0.5)).collect();
    let mut flapping = vec![false; nf];
    if cfg.flapping_count > 0 && nf > 0 {
        let mut by_prob: Vec<usize> = (0..nf).collect();
        by_prob.sort_by(|&a, &b| fiber_prob[b].total_cmp(&fiber_prob[a]).then_with(|| a.cmp(&b)));
        for &f in by_prob.iter().take(cfg.flapping_count) {
            fiber_prob[f] = (fiber_prob[f] * cfg.flapping_boost).min(0.5);
            flapping[f] = true;
        }
    }
    let healthy_probability: f64 = fiber_prob.iter().map(|p| 1.0 - p).product();

    // Mechanism 1: exhaustive k-cuts above the cutoff.
    let mut dfs = KCutDfs {
        fiber_prob: &fiber_prob,
        flapping: &flapping,
        max_k: cfg.max_k,
        cutoff: cfg.cutoff,
        out: Vec::new(),
    };
    let mut cut_buf: Vec<usize> = Vec::with_capacity(cfg.max_k);
    dfs.walk(0, healthy_probability, &mut cut_buf);
    let mut candidates: Vec<Candidate> = dfs.out;

    // Mechanism 2: SRLG conduit groups (explicit, then auto-chunked).
    let mut groups: Vec<SrlgGroup> = cfg.srlg.clone();
    if cfg.auto_srlg_size >= 2 {
        for chunk_start in (0..nf).step_by(cfg.auto_srlg_size) {
            let fibers: Vec<FiberId> =
                (chunk_start..(chunk_start + cfg.auto_srlg_size).min(nf)).map(FiberId).collect();
            if fibers.len() >= 2 {
                groups.push(SrlgGroup { fibers, probability: cfg.auto_srlg_probability });
            }
        }
    }
    for g in &groups {
        let p = g.probability.min(0.5);
        if p <= 0.0 || g.fibers.is_empty() {
            continue;
        }
        let mut fibers = g.fibers.clone();
        fibers.sort_unstable();
        fibers.dedup();
        candidates.push(Candidate {
            id: ScenarioId::of_cut(&fibers),
            source: ScenarioSource::Srlg,
            cut: fibers,
            probability: p,
        });
    }

    // Mechanism 3: rolling maintenance windows over the fiber span.
    if cfg.maintenance_window > 0 && cfg.maintenance_probability > 0.0 {
        let stride = if cfg.maintenance_stride == 0 {
            cfg.maintenance_window
        } else {
            cfg.maintenance_stride
        };
        for start in (0..nf).step_by(stride) {
            let fibers: Vec<FiberId> =
                (start..(start + cfg.maintenance_window).min(nf)).map(FiberId).collect();
            if fibers.is_empty() {
                continue;
            }
            candidates.push(Candidate {
                id: ScenarioId::of_cut(&fibers),
                source: ScenarioSource::Maintenance,
                cut: fibers,
                probability: cfg.maintenance_probability.min(0.5),
            });
        }
    }

    let enumerated = candidates.len();

    // Dedup by content id: sort by (probability desc, id) and keep the
    // first (= highest-probability estimate) of each cut set. When two
    // mechanisms model the same physical failure, the larger estimate is
    // the conservative one for availability.
    candidates
        .sort_by(|a, b| b.probability.total_cmp(&a.probability).then_with(|| a.id.cmp(&b.id)));
    let mut seen: std::collections::BTreeSet<ScenarioId> = std::collections::BTreeSet::new();
    let before_dedup = candidates.len();
    candidates.retain(|c| seen.insert(c.id));
    let deduped = before_dedup - candidates.len();

    // Importance sampling: weighted without replacement via
    // Efraimidis–Spirakis keys (ln(u)/w, keep the largest). The per-
    // scenario uniform draw is keyed by (seed, id), so the selection is
    // independent of enumeration order; kept scenarios keep their exact
    // probability.
    let mut sampled_out = 0;
    if cfg.max_scenarios > 0 && candidates.len() > cfg.max_scenarios {
        let mut keyed: Vec<(f64, usize)> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // arrow-lint: allow(determinism-taint) — draw is keyed by (config seed, scenario id), independent of enumeration order
                let mut srng = StdRng::seed_from_u64(mix64(cfg.seed ^ c.id.0));
                let u: f64 = srng.gen_range(0.0..1.0);
                // w > 0 (candidates with p <= 0 never enter); ln(u) ≤ 0,
                // so larger keys mean more probable / luckier draws.
                (u.max(f64::MIN_POSITIVE).ln() / c.probability, i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut keep: Vec<usize> = keyed.iter().take(cfg.max_scenarios).map(|&(_, i)| i).collect();
        keep.sort_unstable();
        sampled_out = candidates.len() - keep.len();
        let mut kept_candidates = Vec::with_capacity(keep.len());
        let mut keep_iter = keep.into_iter().peekable();
        for (i, c) in candidates.into_iter().enumerate() {
            if keep_iter.peek() == Some(&i) {
                keep_iter.next();
                kept_candidates.push(c);
            }
        }
        candidates = kept_candidates;
        // Already in (probability desc, id) order — the retain-style pass
        // above preserves it.
    }

    let scenarios: Vec<CompiledScenario> = candidates
        .into_iter()
        .map(|c| {
            let failed_links = wan.links_failed_by(&c.cut);
            CompiledScenario {
                id: c.id,
                source: c.source,
                scenario: FailureScenario {
                    cut_fibers: c.cut,
                    probability: c.probability,
                    failed_links,
                },
            }
        })
        .collect();

    let stats = UniverseStats { enumerated, deduped, sampled_out, kept: scenarios.len() };
    arrow_obs::metrics::counter("scenario.compiled").add(stats.enumerated as u64);
    arrow_obs::metrics::counter("scenario.dedup").add(stats.deduped as u64);
    arrow_obs::metrics::counter("scenario.sampled").add(stats.kept as u64);
    arrow_obs::event!(
        "scenario.compile.done",
        "enumerated" => stats.enumerated,
        "deduped" => stats.deduped,
        "sampled_out" => stats.sampled_out,
        "kept" => stats.kept,
    );

    ScenarioUniverse { fiber_prob, healthy_probability, scenarios, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::b4;

    #[test]
    fn healthy_scenario_comes_first() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        assert!(model.scenarios[0].is_healthy());
        assert!(model.scenarios[0].probability > 0.5);
    }

    #[test]
    fn singles_exceeding_cutoff_are_present() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        let singles = model.failure_scenarios().iter().filter(|s| s.cut_fibers.len() == 1).count();
        // With mean p≈0.0227 and cutoff 1e-3, essentially all 19 singles stay.
        assert!(singles >= 15, "only {singles} single-cut scenarios");
    }

    #[test]
    fn scenarios_sorted_and_above_cutoff() {
        let wan = b4(17);
        let cfg = FailureConfig::default();
        let model = generate(&wan, &cfg);
        let probs: Vec<f64> = model.failure_scenarios().iter().map(|s| s.probability).collect();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1], "not sorted");
        }
        assert!(probs.iter().all(|&p| p >= cfg.cutoff));
    }

    #[test]
    fn failed_links_match_cross_layer_mapping() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        for s in model.failure_scenarios() {
            assert_eq!(s.failed_links, wan.links_failed_by(&s.cut_fibers));
            assert!(
                !s.failed_links.is_empty()
                    || s.cut_fibers
                        .iter()
                        .all(|&f| { wan.optical.affected_lightpaths(&[f]).is_empty() })
            );
        }
    }

    #[test]
    fn max_scenarios_keeps_most_probable() {
        let wan = b4(17);
        let full = generate(&wan, &FailureConfig::default());
        let capped = generate(&wan, &FailureConfig { max_scenarios: 5, ..Default::default() });
        assert_eq!(capped.failure_scenarios().len(), 5);
        assert_eq!(
            capped.failure_scenarios()[0].probability,
            full.failure_scenarios()[0].probability
        );
    }

    #[test]
    fn probability_mass_is_sane() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        let covered = model.covered_probability();
        assert!(covered > 0.9 && covered <= 1.0 + 1e-9, "covered {covered}");
    }

    #[test]
    fn nan_probability_does_not_panic_scenario_sort() {
        // partial_cmp().unwrap() here once meant a single NaN probability
        // (degenerate upstream inputs) aborted scenario generation. The
        // sort must stay total: real probabilities in descending order,
        // NaN placed deterministically, no panic.
        let mk = |p: f64| FailureScenario {
            cut_fibers: vec![FiberId(0)],
            probability: p,
            failed_links: Vec::new(),
        };
        let mut scenarios = vec![mk(0.1), mk(f64::NAN), mk(0.7), mk(0.3)];
        sort_by_probability_desc(&mut scenarios);
        let reals: Vec<f64> =
            scenarios.iter().map(|s| s.probability).filter(|p| !p.is_nan()).collect();
        assert_eq!(reals, vec![0.7, 0.3, 0.1]);
        assert_eq!(scenarios.iter().filter(|s| s.probability.is_nan()).count(), 1);
    }

    #[test]
    fn doubles_can_be_disabled() {
        let wan = b4(17);
        let cfg = FailureConfig { include_doubles: false, cutoff: 1e-6, ..Default::default() };
        let model = generate(&wan, &cfg);
        assert!(model.failure_scenarios().iter().all(|s| s.cut_fibers.len() == 1));
    }

    #[test]
    fn covered_probability_clamps_duplicate_accumulation() {
        // Regression: a duplicated cut (same scenario listed twice) used
        // to push the covered mass past 1.0 silently. It must clamp.
        let wan = b4(17);
        let mut model = generate(&wan, &FailureConfig::default());
        let dup = model.scenarios[0].clone(); // healthy, p ≈ 0.63
        model.scenarios.push(dup.clone());
        model.scenarios.push(dup);
        let covered = model.covered_probability();
        assert!(covered <= 1.0, "covered {covered} exceeds certainty");
        assert_eq!(covered, 1.0, "triple-counted healthy mass must clamp to exactly 1.0");
    }

    #[test]
    fn scenario_id_is_order_and_duplicate_insensitive() {
        let a = ScenarioId::of_cut(&[FiberId(3), FiberId(1), FiberId(7)]);
        let b = ScenarioId::of_cut(&[FiberId(7), FiberId(3), FiberId(1), FiberId(3)]);
        assert_eq!(a, b);
        assert_ne!(a, ScenarioId::of_cut(&[FiberId(3), FiberId(1)]));
        assert_ne!(ScenarioId::of_cut(&[]), ScenarioId::of_cut(&[FiberId(0)]));
    }

    #[test]
    fn compiled_universe_is_sorted_deduped_and_deterministic() {
        let wan = b4(17);
        let cfg = UniverseConfig {
            max_k: 3,
            cutoff: 1e-5,
            auto_srlg_size: 3,
            auto_srlg_probability: 2e-3,
            maintenance_window: 2,
            maintenance_probability: 1e-3,
            flapping_count: 2,
            ..Default::default()
        };
        let uni = compile_universe(&wan, &cfg);
        assert!(!uni.is_empty());
        // Sorted by descending probability.
        let probs = uni.probabilities();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1], "universe not sorted");
        }
        // No duplicate content ids.
        let mut ids: Vec<ScenarioId> = uni.scenarios.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate ScenarioId survived dedup");
        // Stats add up.
        assert_eq!(
            uni.stats.kept + uni.stats.deduped + uni.stats.sampled_out,
            uni.stats.enumerated
        );
        // Bitwise-stable recompile.
        assert_eq!(uni.digest(), compile_universe(&wan, &cfg).digest());
    }

    #[test]
    fn importance_sampling_caps_and_keeps_exact_probabilities() {
        let wan = b4(17);
        let base = UniverseConfig { max_k: 3, cutoff: 1e-7, ..Default::default() };
        let full = compile_universe(&wan, &base);
        assert!(full.len() > 40, "want a big universe, got {}", full.len());
        let capped = compile_universe(&wan, &UniverseConfig { max_scenarios: 24, ..base.clone() });
        assert_eq!(capped.len(), 24);
        assert_eq!(capped.stats.sampled_out, full.len() - 24);
        // Every sampled scenario keeps the exact probability of its
        // unsampled twin.
        for c in &capped.scenarios {
            let twin = full.scenarios.iter().find(|f| f.id == c.id);
            let twin = twin.unwrap_or_else(|| panic!("sampled scenario {} not in full", c.id));
            assert_eq!(c.scenario.probability.to_bits(), twin.scenario.probability.to_bits());
        }
    }

    #[test]
    fn maintenance_and_srlg_sources_are_present() {
        let wan = b4(17);
        let uni = compile_universe(
            &wan,
            &UniverseConfig {
                max_k: 1,
                auto_srlg_size: 4,
                auto_srlg_probability: 3e-3,
                maintenance_window: 3,
                maintenance_probability: 2e-3,
                ..Default::default()
            },
        );
        let srlg = uni.scenarios.iter().filter(|c| c.source == ScenarioSource::Srlg).count();
        let maint =
            uni.scenarios.iter().filter(|c| c.source == ScenarioSource::Maintenance).count();
        assert!(srlg > 0, "no SRLG scenarios compiled");
        assert!(maint > 0, "no maintenance scenarios compiled");
        // Multi-fiber scenarios derive their failed links cross-layer.
        for c in &uni.scenarios {
            assert_eq!(c.scenario.failed_links, wan.links_failed_by(&c.scenario.cut_fibers));
        }
    }

    #[test]
    fn universe_adapts_to_failure_model() {
        let wan = b4(17);
        let uni = compile_universe(&wan, &UniverseConfig::default());
        let model = uni.to_failure_model();
        assert!(model.scenarios[0].is_healthy());
        assert_eq!(model.failure_scenarios().len(), uni.len());
        assert!(model.covered_probability() <= 1.0);
    }
}
