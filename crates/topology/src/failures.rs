//! Probabilistic fiber-cut scenarios.
//!
//! Follows §6 "Fiber cut scenarios": each fiber's failure probability is
//! drawn from a Weibull distribution (shape 0.8, scale 0.02, per TeaVaR's
//! methodology), and the scenario set enumerates single and double fiber
//! cuts whose joint probability exceeds a cutoff (0.001 for B4/IBM, 0.0002
//! for Facebook). When a fiber fails, every IP link riding it fails
//! simultaneously.

use crate::distributions::weibull;
use crate::wan::{IpLinkId, Wan};
use arrow_optical::FiberId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One failure scenario: a set of cut fibers with its probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Fibers cut in this scenario (empty = the healthy scenario).
    pub cut_fibers: Vec<FiberId>,
    /// Joint probability of exactly this cut set.
    pub probability: f64,
    /// IP links that fail (derived from the cross-layer mapping).
    pub failed_links: Vec<IpLinkId>,
}

impl FailureScenario {
    /// Whether this is the no-failure scenario.
    pub fn is_healthy(&self) -> bool {
        self.cut_fibers.is_empty()
    }
}

/// Configuration of scenario generation.
#[derive(Debug, Clone)]
pub struct FailureConfig {
    /// Weibull shape for per-fiber failure probability (paper: 0.8).
    pub weibull_shape: f64,
    /// Weibull scale (paper: 0.02).
    pub weibull_scale: f64,
    /// Scenario probability cutoff (paper: 1e-3 B4/IBM, 2e-4 Facebook).
    pub cutoff: f64,
    /// Include double-cut scenarios (the paper's sets "may contain both").
    pub include_doubles: bool,
    /// Cap on the number of scenarios, keeping the most probable (`0` = no
    /// cap). The paper's probabilistic approach "only considers
    /// highly-probable failure scenarios".
    pub max_scenarios: usize,
    /// RNG seed for the per-fiber probabilities.
    pub seed: u64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            weibull_shape: 0.8,
            weibull_scale: 0.02,
            cutoff: 1e-3,
            include_doubles: true,
            max_scenarios: 0,
            seed: 31,
        }
    }
}

/// The generated probabilistic failure model for one WAN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-fiber failure probability.
    pub fiber_prob: Vec<f64>,
    /// Scenarios above the cutoff. The first entry is always the healthy
    /// scenario; the rest are sorted by descending probability.
    pub scenarios: Vec<FailureScenario>,
}

impl FailureModel {
    /// The failure (non-healthy) scenarios only.
    pub fn failure_scenarios(&self) -> &[FailureScenario] {
        &self.scenarios[1..]
    }

    /// Total probability mass captured by the enumerated scenarios.
    pub fn covered_probability(&self) -> f64 {
        self.scenarios.iter().map(|s| s.probability).sum()
    }
}

/// Orders scenarios by descending probability. total_cmp keeps the
/// comparator total: a NaN probability (degenerate upstream inputs) sorts
/// deterministically instead of panicking mid-sort.
fn sort_by_probability_desc(scenarios: &mut [FailureScenario]) {
    scenarios.sort_by(|a, b| b.probability.total_cmp(&a.probability));
}

/// Draws per-fiber failure probabilities and enumerates scenarios.
pub fn generate(wan: &Wan, cfg: &FailureConfig) -> FailureModel {
    let nf = wan.optical.num_fibers();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let fiber_prob: Vec<f64> =
        (0..nf).map(|_| weibull(&mut rng, cfg.weibull_shape, cfg.weibull_scale).min(0.5)).collect();
    let healthy_prob: f64 = fiber_prob.iter().map(|p| 1.0 - p).product();

    let mut scenarios = Vec::new();
    // Single cuts.
    for (f, &pf) in fiber_prob.iter().enumerate().take(nf) {
        let p = healthy_prob / (1.0 - pf) * pf;
        if p >= cfg.cutoff {
            let cut = vec![FiberId(f)];
            let failed_links = wan.links_failed_by(&cut);
            scenarios.push(FailureScenario { cut_fibers: cut, probability: p, failed_links });
        }
    }
    // Double cuts.
    if cfg.include_doubles {
        for f in 0..nf {
            for g in f + 1..nf {
                let p = healthy_prob / ((1.0 - fiber_prob[f]) * (1.0 - fiber_prob[g]))
                    * fiber_prob[f]
                    * fiber_prob[g];
                if p >= cfg.cutoff {
                    let cut = vec![FiberId(f), FiberId(g)];
                    let failed_links = wan.links_failed_by(&cut);
                    scenarios.push(FailureScenario {
                        cut_fibers: cut,
                        probability: p,
                        failed_links,
                    });
                }
            }
        }
    }
    sort_by_probability_desc(&mut scenarios);
    if cfg.max_scenarios > 0 && scenarios.len() > cfg.max_scenarios {
        scenarios.truncate(cfg.max_scenarios);
    }
    let mut all = vec![FailureScenario {
        cut_fibers: Vec::new(),
        probability: healthy_prob,
        failed_links: Vec::new(),
    }];
    all.extend(scenarios);
    FailureModel { fiber_prob, scenarios: all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::b4;

    #[test]
    fn healthy_scenario_comes_first() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        assert!(model.scenarios[0].is_healthy());
        assert!(model.scenarios[0].probability > 0.5);
    }

    #[test]
    fn singles_exceeding_cutoff_are_present() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        let singles = model.failure_scenarios().iter().filter(|s| s.cut_fibers.len() == 1).count();
        // With mean p≈0.0227 and cutoff 1e-3, essentially all 19 singles stay.
        assert!(singles >= 15, "only {singles} single-cut scenarios");
    }

    #[test]
    fn scenarios_sorted_and_above_cutoff() {
        let wan = b4(17);
        let cfg = FailureConfig::default();
        let model = generate(&wan, &cfg);
        let probs: Vec<f64> = model.failure_scenarios().iter().map(|s| s.probability).collect();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1], "not sorted");
        }
        assert!(probs.iter().all(|&p| p >= cfg.cutoff));
    }

    #[test]
    fn failed_links_match_cross_layer_mapping() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        for s in model.failure_scenarios() {
            assert_eq!(s.failed_links, wan.links_failed_by(&s.cut_fibers));
            assert!(
                !s.failed_links.is_empty()
                    || s.cut_fibers
                        .iter()
                        .all(|&f| { wan.optical.affected_lightpaths(&[f]).is_empty() })
            );
        }
    }

    #[test]
    fn max_scenarios_keeps_most_probable() {
        let wan = b4(17);
        let full = generate(&wan, &FailureConfig::default());
        let capped = generate(&wan, &FailureConfig { max_scenarios: 5, ..Default::default() });
        assert_eq!(capped.failure_scenarios().len(), 5);
        assert_eq!(
            capped.failure_scenarios()[0].probability,
            full.failure_scenarios()[0].probability
        );
    }

    #[test]
    fn probability_mass_is_sane() {
        let wan = b4(17);
        let model = generate(&wan, &FailureConfig::default());
        let covered = model.covered_probability();
        assert!(covered > 0.9 && covered <= 1.0 + 1e-9, "covered {covered}");
    }

    #[test]
    fn nan_probability_does_not_panic_scenario_sort() {
        // partial_cmp().unwrap() here once meant a single NaN probability
        // (degenerate upstream inputs) aborted scenario generation. The
        // sort must stay total: real probabilities in descending order,
        // NaN placed deterministically, no panic.
        let mk = |p: f64| FailureScenario {
            cut_fibers: vec![FiberId(0)],
            probability: p,
            failed_links: Vec::new(),
        };
        let mut scenarios = vec![mk(0.1), mk(f64::NAN), mk(0.7), mk(0.3)];
        sort_by_probability_desc(&mut scenarios);
        let reals: Vec<f64> =
            scenarios.iter().map(|s| s.probability).filter(|p| !p.is_nan()).collect();
        assert_eq!(reals, vec![0.7, 0.3, 0.1]);
        assert_eq!(scenarios.iter().filter(|s| s.probability.is_nan()).count(), 1);
    }

    #[test]
    fn doubles_can_be_disabled() {
        let wan = b4(17);
        let cfg = FailureConfig { include_doubles: false, cutoff: 1e-6, ..Default::default() };
        let model = generate(&wan, &cfg);
        assert!(model.failure_scenarios().iter().all(|s| s.cut_fibers.len() == 1));
    }
}
