//! Synthetic operational telemetry.
//!
//! The paper's §2 motivation analyses three years of Facebook production
//! data: 600 WAN failure tickets (Fig. 3), the IP capacity lost to fiber
//! cuts (Fig. 4), and monthly wavelength deployments (Fig. 21). That data
//! is proprietary; this module generates seeded synthetic datasets whose
//! *published aggregates* match the paper: fiber cuts are ~50% of tickets
//! and 67% of downtime, half of fiber cuts exceed nine hours, 10% exceed a
//! day, and cut events cost up to ~8 Tbps of IP capacity.

use crate::distributions::{log_normal, weibull};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Root cause of a failure ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootCause {
    /// Fiber cut (construction, weather, animals, …).
    FiberCut,
    /// Optical hardware (amplifier, transponder, ROADM).
    OpticalHardware,
    /// Router/switch hardware or software.
    Router,
    /// Maintenance and configuration errors.
    Maintenance,
}

impl RootCause {
    /// All causes, for iteration.
    pub const ALL: [RootCause; 4] = [
        RootCause::FiberCut,
        RootCause::OpticalHardware,
        RootCause::Router,
        RootCause::Maintenance,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RootCause::FiberCut => "fiber cut",
            RootCause::OpticalHardware => "optical hw",
            RootCause::Router => "router",
            RootCause::Maintenance => "maintenance",
        }
    }
}

/// One synthetic failure ticket.
#[derive(Debug, Clone)]
pub struct FailureTicket {
    /// Root cause category.
    pub cause: RootCause,
    /// Time to repair in hours.
    pub repair_hours: f64,
    /// IP capacity lost while the failure was active, in Gbps (0 for
    /// failures that did not take links down).
    pub lost_capacity_gbps: f64,
}

/// Generates `n` tickets (paper: 600 over three years).
///
/// Mixture calibrated to Fig. 3: ~48% fiber cuts with a log-normal repair
/// time whose median is ~9 h (so "50% of fiber cuts last longer than nine
/// hours") and a tail past 24 h for the top ~10%; other causes repair
/// faster, which makes fiber cuts dominate total downtime (~67%, Fig. 3b).
pub fn generate_tickets(n: usize, seed: u64) -> Vec<FailureTicket> {
    // arrow-lint: allow(determinism-taint) — stream is seeded from the caller-supplied seed, so identical seeds reproduce identical tickets
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let roll: f64 = rng.gen_range(0.0..1.0);
            let (cause, repair_hours) = if roll < 0.48 {
                // Median 9h => mu = ln 9; sigma tuned so P(>24h) ≈ 0.1.
                // ln(24/9) = 0.98; z_{0.9} = 1.2816 => sigma ≈ 0.766.
                (RootCause::FiberCut, log_normal(&mut rng, 9.0f64.ln(), 0.766))
            } else if roll < 0.68 {
                (RootCause::OpticalHardware, log_normal(&mut rng, 4.0f64.ln(), 0.9))
            } else if roll < 0.88 {
                (RootCause::Router, log_normal(&mut rng, 2.0f64.ln(), 0.8))
            } else {
                (RootCause::Maintenance, log_normal(&mut rng, 6.0f64.ln(), 0.7))
            };
            let lost_capacity_gbps = match cause {
                RootCause::FiberCut => {
                    // Up to ~8 Tbps per event (Fig. 4b), most far smaller.
                    (weibull(&mut rng, 1.1, 1400.0)).min(8000.0)
                }
                RootCause::OpticalHardware => weibull(&mut rng, 1.0, 300.0).min(2000.0),
                _ => 0.0,
            };
            FailureTicket { cause, repair_hours, lost_capacity_gbps }
        })
        .collect()
}

/// Share of total downtime (ticket-hours) attributed to each cause —
/// Fig. 3b.
pub fn downtime_share(tickets: &[FailureTicket]) -> Vec<(RootCause, f64)> {
    let total: f64 = tickets.iter().map(|t| t.repair_hours).sum();
    RootCause::ALL
        .iter()
        .map(|&c| {
            let hours: f64 = tickets.iter().filter(|t| t.cause == c).map(|t| t.repair_hours).sum();
            (c, if total > 0.0 { hours / total } else { 0.0 })
        })
        .collect()
}

/// One month of wavelength-deployment counts (Fig. 21): a baseline rate
/// with a visible surge starting at `surge_month` (COVID-19 in the paper).
pub fn monthly_wavelength_deployments(months: usize, surge_month: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..months)
        .map(|m| {
            let base = 120.0;
            let surge = if m >= surge_month { 1.8 } else { 1.0 };
            let noise: f64 = rng.gen_range(0.75..1.25);
            (base * surge * noise) as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_cut_aggregates_match_paper() {
        let tickets = generate_tickets(600, 7);
        let cuts: Vec<&FailureTicket> =
            tickets.iter().filter(|t| t.cause == RootCause::FiberCut).collect();
        // ~48% of tickets.
        let share = cuts.len() as f64 / tickets.len() as f64;
        assert!((share - 0.48).abs() < 0.08, "fiber-cut share {share}");
        // Median repair near 9 h.
        let mut hours: Vec<f64> = cuts.iter().map(|t| t.repair_hours).collect();
        hours.sort_by(|a, b| a.total_cmp(b));
        let median = hours[hours.len() / 2];
        assert!((median - 9.0).abs() < 2.5, "median {median}");
        // ~10% exceed a day.
        let over_day = hours.iter().filter(|&&h| h > 24.0).count() as f64 / hours.len() as f64;
        assert!((over_day - 0.10).abs() < 0.06, "over-a-day share {over_day}");
    }

    #[test]
    fn fiber_cuts_dominate_downtime() {
        let tickets = generate_tickets(600, 7);
        let shares = downtime_share(&tickets);
        let cut_share =
            shares.iter().find(|(c, _)| *c == RootCause::FiberCut).map(|&(_, s)| s).unwrap();
        assert!((cut_share - 0.67).abs() < 0.12, "downtime share {cut_share}");
    }

    #[test]
    fn lost_capacity_caps_at_8tbps() {
        let tickets = generate_tickets(2000, 9);
        assert!(tickets.iter().all(|t| t.lost_capacity_gbps <= 8000.0));
        let max = tickets.iter().map(|t| t.lost_capacity_gbps).fold(0.0f64, f64::max);
        assert!(max > 3000.0, "tail too light: max {max}");
    }

    #[test]
    fn deployment_series_shows_surge() {
        let series = monthly_wavelength_deployments(18, 5, 3);
        let before: f64 = series[..5].iter().sum::<usize>() as f64 / 5.0;
        let after: f64 = series[5..].iter().sum::<usize>() as f64 / 13.0;
        assert!(after > before * 1.3, "no visible surge: {before} -> {after}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_tickets(50, 42);
        let b = generate_tickets(50, 42);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.repair_hours == y.repair_hours));
    }
}
