//! Small seeded sampling helpers.
//!
//! The evaluation needs three distributions: Weibull (per-fiber failure
//! probabilities, §6), log-normal (gravity-model site weights), and
//! discrete histograms (wavelengths-per-IP-link, Fig. 22b). `rand_distr` is
//! not among the approved dependencies, so the inverse-CDF / Box–Muller
//! forms are implemented here directly.

use rand::Rng;

/// Samples a Weibull(`shape`, `scale`) variate by inverse CDF:
/// `scale * (-ln(1 - U))^(1/shape)`.
pub fn weibull<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0 && scale > 0.0, "Weibull parameters must be positive");
    let u: f64 = rng.gen_range(0.0..1.0);
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

/// Samples a standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a log-normal variate `exp(mu + sigma * Z)`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Samples an index from a discrete histogram of nonnegative weights.
///
/// # Panics
/// Panics if the weights are empty or sum to zero.
pub fn discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0 && !weights.is_empty(), "histogram must have positive mass");
    let mut t = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weibull_mean_matches_theory() {
        // Mean of Weibull(k, λ) is λ·Γ(1 + 1/k). For k=0.8: Γ(2.25) ≈ 1.1330.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| weibull(&mut rng, 0.8, 0.02)).sum::<f64>() / n as f64;
        let expected = 0.02 * 1.1330;
        assert!((mean - expected).abs() / expected < 0.02, "mean {mean} vs {expected}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[discrete(&mut rng, &[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn determinism_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..5).map(|_| weibull(&mut rng, 0.8, 0.02)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..5).map(|_| weibull(&mut rng, 0.8, 0.02)).collect()
        };
        assert_eq!(a, b);
    }
}
