//! Cross-layer WAN model: IP links over optical lightpaths.
//!
//! A [`Wan`] couples the IP layer (datacenter sites and IP links, the TE's
//! view) with the optical layer (`arrow_optical::OpticalNetwork`). Every IP
//! link is realized by exactly one lightpath (a port-channel worth of
//! wavelengths riding one fiber path, Fig. 1), so cutting a fiber maps
//! directly to a set of failed IP links.

use arrow_optical::{FiberId, LightpathId, OpticalNetwork, RoadmId};
use serde::{Deserialize, Serialize};

/// Identifier of an IP-layer site (a datacenter/router location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub usize);

/// Identifier of an IP link (a router port-channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpLinkId(pub usize);

/// An IP link between two sites, realized by one lightpath.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpLink {
    /// One endpoint.
    pub a: SiteId,
    /// The other endpoint.
    pub b: SiteId,
    /// The optical lightpath realizing this link.
    pub lightpath: LightpathId,
    /// Capacity in Gbps (per direction; links are full-duplex).
    pub capacity_gbps: f64,
}

impl IpLink {
    /// The endpoint opposite `s`.
    ///
    /// Calling this with a site that is not an endpoint is a caller bug;
    /// debug builds assert, release builds return `a` (callers only reach
    /// this through a site's own incident-link lists, so the precondition
    /// holds by construction).
    pub fn other_end(&self, s: SiteId) -> SiteId {
        debug_assert!(s == self.a || s == self.b, "site {s:?} is not an endpoint of this IP link");
        if s == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// The two-layer WAN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wan {
    /// Human-readable topology name (for reports).
    pub name: String,
    /// The optical layer.
    pub optical: OpticalNetwork,
    /// ROADM co-located with each site (index = site id).
    pub site_roadm: Vec<RoadmId>,
    /// IP links, indexable by [`IpLinkId`].
    pub links: Vec<IpLink>,
}

impl Wan {
    /// Number of IP-layer sites.
    pub fn num_sites(&self) -> usize {
        self.site_roadm.len()
    }

    /// Number of IP links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// One IP link.
    pub fn link(&self, id: IpLinkId) -> &IpLink {
        &self.links[id.0]
    }

    /// IP links incident to a site.
    pub fn incident_links(&self, s: SiteId) -> Vec<IpLinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a == s || l.b == s)
            .map(|(i, _)| IpLinkId(i))
            .collect()
    }

    /// IP links that fail when the given fibers are cut.
    pub fn links_failed_by(&self, cut: &[FiberId]) -> Vec<IpLinkId> {
        let failed_lps = self.optical.affected_lightpaths(cut);
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| failed_lps.contains(&l.lightpath))
            .map(|(i, _)| IpLinkId(i))
            .collect()
    }

    /// The IP link realized by a lightpath, if any.
    pub fn link_of_lightpath(&self, lp: LightpathId) -> Option<IpLinkId> {
        self.links.iter().position(|l| l.lightpath == lp).map(IpLinkId)
    }

    /// Total IP capacity in Gbps (sum over links, single direction).
    pub fn total_capacity_gbps(&self) -> f64 {
        self.links.iter().map(|l| l.capacity_gbps).sum()
    }

    /// Number of IP links riding each fiber (the Fig. 22a distribution).
    pub fn ip_links_per_fiber(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.optical.num_fibers()];
        for l in &self.links {
            for &f in &self.optical.lightpath(l.lightpath).path {
                counts[f.0] += 1;
            }
        }
        counts
    }

    /// Wavelengths per IP link (the Fig. 22b distribution).
    pub fn wavelengths_per_link(&self) -> Vec<usize> {
        self.links.iter().map(|l| self.optical.lightpath(l.lightpath).wavelength_count()).collect()
    }

    /// Sanity check: every link's lightpath connects its sites' ROADMs and
    /// its capacity matches the lightpath. Returns a description of the
    /// first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            let lp = self.optical.lightpath(l.lightpath);
            let ra = self.site_roadm[l.a.0];
            let rb = self.site_roadm[l.b.0];
            if !(lp.src == ra && lp.dst == rb || lp.src == rb && lp.dst == ra) {
                return Err(format!("link {i}: lightpath endpoints do not match sites"));
            }
            if (lp.capacity_gbps() - l.capacity_gbps).abs() > 1e-6 {
                return Err(format!(
                    "link {i}: capacity {} != lightpath capacity {}",
                    l.capacity_gbps,
                    lp.capacity_gbps()
                ));
            }
        }
        Ok(())
    }

    /// A one-line summary matching Table 4's columns.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} routers / {} ROADMs, {} fibers, {} IP links",
            self.name,
            self.num_sites(),
            self.optical.num_roadms(),
            self.optical.num_fibers(),
            self.num_links()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_optical::Lightpath;

    fn tiny_wan() -> Wan {
        let mut net = OpticalNetwork::new(8);
        let r = net.add_roadms(3);
        let f01 = net.add_fiber(r[0], r[1], 100.0).unwrap();
        let f12 = net.add_fiber(r[1], r[2], 100.0).unwrap();
        let lp0 = net
            .provision(Lightpath {
                src: r[0],
                dst: r[1],
                path: vec![f01],
                slots: vec![0, 1],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        let lp1 = net
            .provision(Lightpath {
                src: r[0],
                dst: r[2],
                path: vec![f01, f12],
                slots: vec![2],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        Wan {
            name: "tiny".into(),
            optical: net,
            site_roadm: vec![r[0], r[1], r[2]],
            links: vec![
                IpLink { a: SiteId(0), b: SiteId(1), lightpath: lp0, capacity_gbps: 200.0 },
                IpLink { a: SiteId(0), b: SiteId(2), lightpath: lp1, capacity_gbps: 100.0 },
            ],
        }
    }

    #[test]
    fn fiber_cut_maps_to_ip_links() {
        let wan = tiny_wan();
        // Fiber 0 carries both links; fiber 1 only the express link.
        assert_eq!(wan.links_failed_by(&[FiberId(0)]).len(), 2);
        assert_eq!(wan.links_failed_by(&[FiberId(1)]), vec![IpLinkId(1)]);
    }

    #[test]
    fn validation_passes_and_stats_add_up() {
        let wan = tiny_wan();
        wan.validate().unwrap();
        assert_eq!(wan.total_capacity_gbps(), 300.0);
        assert_eq!(wan.ip_links_per_fiber(), vec![2, 1]);
        assert_eq!(wan.wavelengths_per_link(), vec![2, 1]);
        assert_eq!(wan.incident_links(SiteId(0)).len(), 2);
        assert_eq!(wan.link(IpLinkId(0)).other_end(SiteId(0)), SiteId(1));
    }

    #[test]
    fn validation_catches_capacity_mismatch() {
        let mut wan = tiny_wan();
        wan.links[0].capacity_gbps = 999.0;
        assert!(wan.validate().is_err());
    }

    #[test]
    fn summary_mentions_counts() {
        let s = tiny_wan().summary();
        assert!(s.contains("3 routers"));
        assert!(s.contains("2 fibers"));
        assert!(s.contains("2 IP links"));
    }
}
