//! Property-based tests of the LP toolkit on randomly generated programs.

use arrow_lp::model::{LinExpr, Model, Objective, Sense};
use arrow_lp::{Backend, SolverConfig, Status};
use proptest::prelude::*;

/// A random box-constrained LP with `m` dense `<=` rows built so that the
/// origin-ish corner is always feasible (nonnegative rhs).
fn random_lp(
    n: usize,
    coeffs: &[f64],
    rhs: &[f64],
    costs: &[f64],
) -> (Model, Vec<arrow_lp::VarId>) {
    let mut model = Model::new();
    let vars: Vec<_> = (0..n).map(|j| model.add_var(0.0, 10.0, format!("x{j}"))).collect();
    let m = rhs.len();
    for i in 0..m {
        let mut e = LinExpr::new();
        for (j, &v) in vars.iter().enumerate() {
            e.add_term(v, coeffs[i * n + j]);
        }
        model.add_con(e, Sense::Le, rhs[i].abs() + 1.0, format!("c{i}"));
    }
    let obj = LinExpr::sum(vars.iter().copied().zip(costs.iter().copied()));
    model.set_objective(obj, Objective::Maximize);
    (model, vars)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The simplex always terminates with an optimal, feasible point on
    /// feasible bounded LPs, and PDHG agrees with it.
    #[test]
    fn backends_agree_on_random_lps(
        n in 2usize..6,
        m in 1usize..5,
        seed_coeffs in proptest::collection::vec(-2.0f64..2.0, 30),
        seed_rhs in proptest::collection::vec(0.0f64..20.0, 5),
        seed_costs in proptest::collection::vec(-1.0f64..3.0, 6),
    ) {
        let (model, _) = random_lp(n, &seed_coeffs[..n * m.min(seed_rhs.len())], &seed_rhs[..m], &seed_costs[..n]);
        let exact = arrow_lp::solve(&model, &SolverConfig::exact());
        prop_assert_eq!(exact.status, Status::Optimal);
        prop_assert!(exact.violation(&model) < 1e-6, "simplex infeasible point");
        let fo = arrow_lp::solve(&model, &SolverConfig::first_order(1e-7));
        prop_assert!(fo.status.is_usable());
        if fo.status == Status::Optimal {
            let scale = 1.0 + exact.objective.abs();
            prop_assert!(
                (exact.objective - fo.objective).abs() / scale < 2e-3,
                "simplex {} vs pdhg {}", exact.objective, fo.objective
            );
        }
    }

    /// Presolve never changes the optimum.
    #[test]
    fn presolve_preserves_optimum(
        n in 2usize..5,
        m in 1usize..4,
        seed_coeffs in proptest::collection::vec(-2.0f64..2.0, 20),
        seed_rhs in proptest::collection::vec(0.0f64..20.0, 4),
        seed_costs in proptest::collection::vec(-1.0f64..3.0, 5),
        fix in 0usize..3,
    ) {
        let (mut model, vars) = random_lp(n, &seed_coeffs[..n * m], &seed_rhs[..m], &seed_costs[..n]);
        // Fix a variable to stress substitution.
        if fix < n {
            model.set_bounds(vars[fix], 1.5, 1.5);
        }
        let plain = arrow_lp::solve(&model, &SolverConfig::exact());
        let pre = arrow_lp::solve(
            &model,
            &SolverConfig { presolve: true, backend: Backend::Simplex, ..Default::default() },
        );
        prop_assert_eq!(plain.status, pre.status);
        if plain.status == Status::Optimal {
            let scale = 1.0 + plain.objective.abs();
            prop_assert!(
                (plain.objective - pre.objective).abs() / scale < 1e-6,
                "plain {} vs presolved {}", plain.objective, pre.objective
            );
            prop_assert!(pre.violation(&model) < 1e-6);
        }
    }

    /// Weak duality spot-check: the simplex duals price the optimum
    /// (strong duality holds at optimality: c'x* = y'b + bound terms).
    #[test]
    fn duals_price_binding_rows(
        cap1 in 1.0f64..20.0,
        cap2 in 1.0f64..20.0,
    ) {
        // max x + y s.t. x <= cap1, y <= cap2 with x,y in [0, 10].
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, "x");
        let y = m.add_var(0.0, 10.0, "y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, cap1, "c1");
        m.add_con(LinExpr::term(y, 1.0), Sense::Le, cap2, "c2");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        let sol = arrow_lp::solve(&m, &SolverConfig::exact());
        prop_assert_eq!(sol.status, Status::Optimal);
        // Row binding iff cap < 10; its dual must be 1 there, else 0.
        for (i, cap) in [cap1, cap2].into_iter().enumerate() {
            if cap < 10.0 - 1e-6 {
                prop_assert!((sol.duals[i] - 1.0).abs() < 1e-6, "dual {i_} = {v}", i_ = i, v = sol.duals[i]);
            } else if cap > 10.0 + 1e-6 {
                prop_assert!(sol.duals[i].abs() < 1e-6);
            }
        }
    }

    /// Warm-started simplex re-solves reach the same objective as cold
    /// ones — both on the unchanged LP (where the start is the optimum)
    /// and after a rhs/bound perturbation (where it is merely a good
    /// guess, or rejected as infeasible and re-solved cold).
    #[test]
    fn simplex_warm_equals_cold_on_random_lps(
        n in 2usize..6,
        m in 1usize..5,
        seed_coeffs in proptest::collection::vec(-2.0f64..2.0, 30),
        seed_rhs in proptest::collection::vec(0.0f64..20.0, 5),
        seed_costs in proptest::collection::vec(-1.0f64..3.0, 6),
        bump in -0.5f64..2.0,
    ) {
        let (model, vars) = random_lp(n, &seed_coeffs[..n * m], &seed_rhs[..m], &seed_costs[..n]);
        let cfg = SolverConfig::exact();
        let first = arrow_lp::solve(&model, &cfg);
        prop_assert_eq!(first.status, Status::Optimal);
        let warm_start = first.warm_start().expect("optimal solve yields warm start");
        prop_assert!(warm_start.basis.is_some());

        // Same LP: warm must hit and reproduce the optimum.
        let rewarm = arrow_lp::solve_with(&model, &cfg, Some(&warm_start));
        prop_assert_eq!(rewarm.status, Status::Optimal);
        prop_assert_eq!(rewarm.stats.warm, arrow_lp::WarmEvent::Hit);
        let scale = 1.0 + first.objective.abs();
        prop_assert!(
            (first.objective - rewarm.objective).abs() / scale < 1e-9,
            "warm {} vs cold {}", rewarm.objective, first.objective
        );

        // Perturbed LP (diurnal-demand analogue: bounds shift, pattern
        // fixed): warm and cold must agree wherever they land.
        let mut shifted = model.clone();
        shifted.set_bounds(vars[0], 0.0, (10.0 + bump).max(0.0));
        let cold = arrow_lp::solve(&shifted, &cfg);
        let warm = arrow_lp::solve_with(&shifted, &cfg, Some(&warm_start));
        prop_assert_eq!(cold.status, Status::Optimal);
        prop_assert_eq!(warm.status, Status::Optimal);
        let scale = 1.0 + cold.objective.abs();
        prop_assert!(
            (cold.objective - warm.objective).abs() / scale < 1e-9,
            "perturbed warm {} vs cold {}", warm.objective, cold.objective
        );
        prop_assert!(warm.violation(&shifted) < 1e-6);
    }

    /// PDHG warm starts (primal–dual point) agree with cold PDHG solves.
    #[test]
    fn pdhg_warm_equals_cold_on_random_lps(
        n in 2usize..6,
        m in 1usize..5,
        seed_coeffs in proptest::collection::vec(-2.0f64..2.0, 30),
        seed_rhs in proptest::collection::vec(0.0f64..20.0, 5),
        seed_costs in proptest::collection::vec(-1.0f64..3.0, 6),
    ) {
        let (model, _) = random_lp(n, &seed_coeffs[..n * m], &seed_rhs[..m], &seed_costs[..n]);
        let cfg = SolverConfig::first_order(1e-8);
        let cold = arrow_lp::solve(&model, &cfg);
        prop_assert!(cold.status.is_usable());
        if cold.status != Status::Optimal {
            return Ok(()); // tolerance-limited run: nothing to compare
        }
        let warm_start = cold.warm_start().expect("usable solve yields warm start");
        let warm = arrow_lp::solve_with(&model, &cfg, Some(&warm_start));
        prop_assert_eq!(warm.status, Status::Optimal);
        prop_assert_eq!(warm.stats.warm, arrow_lp::WarmEvent::Hit);
        prop_assert!(warm.stats.iterations <= cold.stats.iterations);
        let scale = 1.0 + cold.objective.abs();
        prop_assert!(
            (cold.objective - warm.objective).abs() / scale < 1e-4,
            "pdhg warm {} vs cold {}", warm.objective, cold.objective
        );
    }

    /// The MPS writer always produces a parseable section skeleton with one
    /// column entry per objective/constraint coefficient.
    #[test]
    fn mps_structure_is_complete(
        n in 1usize..5,
        m in 1usize..4,
        seed_coeffs in proptest::collection::vec(-2.0f64..2.0, 20),
        seed_rhs in proptest::collection::vec(0.0f64..20.0, 4),
        seed_costs in proptest::collection::vec(0.5f64..3.0, 5),
    ) {
        let (model, _) = random_lp(n, &seed_coeffs[..n * m], &seed_rhs[..m], &seed_costs[..n]);
        let mps = arrow_lp::mps::to_mps(&model, "prop");
        prop_assert!(mps.starts_with("* Generated by arrow-lp"));
        prop_assert!(mps.trim_end().ends_with("ENDATA"));
        for i in 0..m {
            let row = format!(" L  c{i}");
            prop_assert!(mps.contains(&row));
        }
        // Every variable has an objective entry (costs are nonzero).
        for j in 0..n {
            let col = format!("x{j}  OBJ");
            prop_assert!(mps.contains(&col));
        }
    }
}
