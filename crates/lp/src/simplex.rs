//! Bounded-variable two-phase revised simplex.
//!
//! This is the exact solver backend: it handles general bounds `l ≤ x ≤ u`
//! natively (no bound rows are added), runs a phase-1 with artificial
//! variables to find a basic feasible solution, and then optimizes the real
//! objective. The basis inverse is kept explicitly as a dense `m × m` matrix
//! and updated with product-form pivots, which keeps the implementation
//! simple and robust (the design priority here, per the networking guides)
//! at the cost of `O(m²)` work per iteration. It is intended for problems up
//! to a few thousand rows; larger instances should use [`crate::pdhg`].
//!
//! Implemented: Dantzig pricing with a Bland anti-cycling fallback, bound
//! flips, periodic basis refactorization, infeasibility/unboundedness
//! detection, and dual values. Deliberately omitted: steepest-edge pricing,
//! sparse LU basis updates, and presolve.

use crate::model::{Sense, StandardLp};
use crate::solution::{Solution, SolveStats, Status};
use crate::sparse::CscMatrix;
use crate::warm::{BackendKind, Basis, ColStatus, WarmEvent};

/// Tunable knobs for the simplex solver.
#[derive(Debug, Clone)]
pub struct SimplexConfig {
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Bound/feasibility tolerance.
    pub feas_tol: f64,
    /// Smallest pivot magnitude accepted during a basis change.
    pub pivot_tol: f64,
    /// Hard iteration limit (both phases combined). `0` means automatic
    /// (`200 + 20 * (rows + cols)`).
    pub max_iters: usize,
    /// Refactorize the basis inverse from scratch every this many pivots.
    pub refactor_every: usize,
    /// Switch to Bland's rule after this many consecutive degenerate pivots.
    pub degenerate_before_bland: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            opt_tol: 1e-7,
            feas_tol: 1e-7,
            pivot_tol: 1e-9,
            max_iters: 0,
            refactor_every: 2000,
            degenerate_before_bland: 400,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize), // position in basis
    AtLower,
    AtUpper,
    /// Free variable currently parked at zero.
    FreeAtZero,
}

/// Column classes: structurals come from the model, slacks encode row
/// senses, artificials exist only to build the phase-1 starting basis.
struct Columns<'a> {
    a: CscMatrix,
    n: usize,
    m: usize,
    /// Row index for each artificial column, parallel to indices `n + m ..`.
    art_rows: Vec<usize>,
    /// Sign of each artificial column's single entry.
    art_signs: Vec<f64>,
    lp: &'a StandardLp,
}

impl Columns<'_> {
    fn total(&self) -> usize {
        self.n + self.m + self.art_rows.len()
    }

    /// Iterates the sparse entries of column `j` as `(row, value)`.
    fn for_each_entry(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.n {
            for (i, v) in self.a.col(j) {
                f(i, v);
            }
        } else if j < self.n + self.m {
            f(j - self.n, 1.0);
        } else {
            let k = j - self.n - self.m;
            f(self.art_rows[k], self.art_signs[k]);
        }
    }

    fn dot_with(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.a.col_dot(j, y)
        } else if j < self.n + self.m {
            y[j - self.n]
        } else {
            let k = j - self.n - self.m;
            self.art_signs[k] * y[self.art_rows[k]]
        }
    }
}

/// Solver state for one solve call.
struct Simplex<'a> {
    cfg: &'a SimplexConfig,
    cols: Columns<'a>,
    /// Lower/upper bounds for every column (structural, slack, artificial).
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Current value of every column.
    x: Vec<f64>,
    state: Vec<VarState>,
    /// Basis: column index occupying each of the `m` basis positions.
    basis: Vec<usize>,
    /// Explicit dense inverse of the basis matrix, row-major `m × m`.
    binv: Vec<f64>,
    m: usize,
    iterations: usize,
    refactors: usize,
    pivots_since_refactor: usize,
    degenerate_streak: usize,
    /// Scratch vectors reused across iterations.
    y: Vec<f64>,
    w: Vec<f64>,
}

/// Outcome of one inner simplex phase.
enum PhaseEnd {
    Optimal,
    Unbounded,
    IterLimit,
    /// Numerical trouble that a refactorization did not fix.
    Stalled,
}

/// Appends the slack-column bounds encoding each row's sense (`Ax + s =
/// rhs`) to structural bounds already in `lb`/`ub`.
fn push_slack_bounds(lp: &StandardLp, lb: &mut Vec<f64>, ub: &mut Vec<f64>) {
    for s in &lp.senses {
        match s {
            Sense::Le => {
                lb.push(0.0);
                ub.push(f64::INFINITY);
            }
            Sense::Ge => {
                lb.push(f64::NEG_INFINITY);
                ub.push(0.0);
            }
            Sense::Eq => {
                lb.push(0.0);
                ub.push(0.0);
            }
        }
    }
}

impl<'a> Simplex<'a> {
    fn new(lp: &'a StandardLp, cfg: &'a SimplexConfig) -> Self {
        let n = lp.num_vars();
        let m = lp.num_cons();
        // Slack bounds encode the row sense: Ax + s = rhs.
        let mut lb = lp.lb.clone();
        let mut ub = lp.ub.clone();
        push_slack_bounds(lp, &mut lb, &mut ub);
        // Nonbasic starting point: every structural at its bound nearest zero
        // (free variables park at zero).
        let mut x = vec![0.0; n + m];
        let mut state = vec![VarState::FreeAtZero; n + m];
        for j in 0..n {
            let (l, u) = (lb[j], ub[j]);
            if l.is_finite() && (l.abs() <= u.abs() || !u.is_finite()) {
                x[j] = l;
                state[j] = VarState::AtLower;
            } else if u.is_finite() {
                x[j] = u;
                state[j] = VarState::AtUpper;
            } else {
                x[j] = 0.0;
                state[j] = VarState::FreeAtZero;
            }
        }
        // Required slack value per row given the nonbasic point.
        let mut resid = lp.rhs.clone();
        for (i, r) in resid.iter_mut().enumerate() {
            for (j, v) in lp.a.row(i) {
                *r -= v * x[j];
            }
        }
        // Basis: the row's slack where its bounds admit the residual value,
        // otherwise park the slack at the violated (finite) bound and cover
        // the remaining gap with a fresh artificial column.
        let mut basis = vec![usize::MAX; m];
        let mut gaps = Vec::new(); // (row, gap) for rows needing artificials
        for i in 0..m {
            let sj = n + i;
            let clamped = resid[i].clamp(lb[sj], ub[sj]);
            if (clamped - resid[i]).abs() <= cfg.feas_tol {
                x[sj] = resid[i];
                state[sj] = VarState::Basic(i);
                basis[i] = sj;
            } else {
                x[sj] = clamped;
                state[sj] = if clamped == lb[sj] { VarState::AtLower } else { VarState::AtUpper };
                gaps.push((i, resid[i] - clamped));
            }
        }
        let total = n + m + gaps.len();
        lb.resize(total, 0.0);
        ub.resize(total, f64::INFINITY);
        x.resize(total, 0.0);
        state.resize(total, VarState::AtLower);
        let mut art_rows = Vec::with_capacity(gaps.len());
        let mut art_signs = Vec::with_capacity(gaps.len());
        for (k, &(i, gap)) in gaps.iter().enumerate() {
            let j = n + m + k;
            art_rows.push(i);
            art_signs.push(gap.signum());
            x[j] = gap.abs();
            state[j] = VarState::Basic(i);
            basis[i] = j;
        }

        // Initial basis matrix is diagonal (±1), so its inverse is too.
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            let j = basis[i];
            let d = if j >= n + m { art_signs[j - n - m] } else { 1.0 };
            binv[i * m + i] = 1.0 / d;
        }
        Simplex {
            cfg,
            cols: Columns { a: lp.a.to_csc(), n, m, art_rows, art_signs, lp },
            lb,
            ub,
            x,
            state,
            basis,
            binv,
            m,
            iterations: 0,
            refactors: 0,
            pivots_since_refactor: 0,
            degenerate_streak: 0,
            y: vec![0.0; m],
            w: vec![0.0; m],
        }
    }

    /// Rebuilds solver state from a recorded basis snapshot against
    /// (possibly mutated) problem data: nonbasic columns land on their
    /// *current* bounds, basic values are recomputed through a fresh
    /// factorization. Returns `None` when the snapshot does not fit the
    /// problem (wrong size, wrong basic count, singular basis) — the caller
    /// then falls back to a cold start.
    fn from_basis(lp: &'a StandardLp, cfg: &'a SimplexConfig, basis: &Basis) -> Option<Self> {
        let n = lp.num_vars();
        let m = lp.num_cons();
        if basis.cols.len() != n + m {
            return None;
        }
        let mut lb = lp.lb.clone();
        let mut ub = lp.ub.clone();
        push_slack_bounds(lp, &mut lb, &mut ub);
        let mut x = vec![0.0; n + m];
        let mut state = vec![VarState::FreeAtZero; n + m];
        let mut basis_vec = Vec::with_capacity(m);
        for j in 0..n + m {
            match basis.cols[j] {
                ColStatus::Basic => {
                    // Position assigned below; value set by refactorize().
                    state[j] = VarState::Basic(basis_vec.len());
                    basis_vec.push(j);
                }
                status => {
                    // Park nonbasic columns on a finite bound, honouring the
                    // recorded side when it still exists under the new data.
                    let prefer_upper = matches!(status, ColStatus::AtUpper);
                    if prefer_upper && ub[j].is_finite() {
                        x[j] = ub[j];
                        state[j] = VarState::AtUpper;
                    } else if lb[j].is_finite() {
                        x[j] = lb[j];
                        state[j] = VarState::AtLower;
                    } else if ub[j].is_finite() {
                        x[j] = ub[j];
                        state[j] = VarState::AtUpper;
                    } else {
                        x[j] = 0.0;
                        state[j] = VarState::FreeAtZero;
                    }
                }
            }
        }
        if basis_vec.len() != m {
            return None;
        }
        let mut s = Simplex {
            cfg,
            cols: Columns {
                a: lp.a.to_csc(),
                n,
                m,
                art_rows: Vec::new(),
                art_signs: Vec::new(),
                lp,
            },
            lb,
            ub,
            x,
            state,
            basis: basis_vec,
            binv: vec![0.0; m * m],
            m,
            iterations: 0,
            refactors: 0,
            pivots_since_refactor: 0,
            degenerate_streak: 0,
            y: vec![0.0; m],
            w: vec![0.0; m],
        };
        if !s.refactorize() {
            return None;
        }
        Some(s)
    }

    /// Records the current basis as a reusable snapshot. Basic artificials
    /// (possible after a degenerate phase 1: they sit at value zero) are
    /// recorded as their row's slack — the slack column spans the same
    /// single row, so the recorded basis stays nonsingular.
    fn snapshot_basis(&self) -> Basis {
        let nm = self.cols.n + self.cols.m;
        let mut cols: Vec<ColStatus> = self.state[..nm]
            .iter()
            .map(|st| match st {
                VarState::Basic(_) => ColStatus::Basic,
                VarState::AtLower => ColStatus::AtLower,
                VarState::AtUpper => ColStatus::AtUpper,
                VarState::FreeAtZero => ColStatus::Free,
            })
            .collect();
        for &j in &self.basis {
            if j >= nm {
                let row = self.cols.art_rows[j - nm];
                cols[self.cols.n + row] = ColStatus::Basic;
            }
        }
        Basis { cols }
    }

    /// `y = Binv' c_B` — dual prices for the given basic costs.
    fn compute_duals(&mut self, cost: &dyn Fn(&Self, usize) -> f64) {
        let m = self.m;
        self.y.fill(0.0);
        for i in 0..m {
            let cb = cost(self, self.basis[i]);
            if cb == 0.0 {
                continue;
            }
            for k in 0..m {
                self.y[k] += cb * self.binv[i * m + k];
            }
        }
    }

    /// `w = Binv a_j` for the entering column.
    fn compute_direction(&mut self, j: usize) {
        let m = self.m;
        self.w.fill(0.0);
        // Borrow-splitting: collect the column once (columns are tiny).
        let mut entries: Vec<(usize, f64)> = Vec::new();
        self.cols.for_each_entry(j, |i, v| entries.push((i, v)));
        for (i, v) in entries {
            for k in 0..m {
                self.w[k] += v * self.binv[k * m + i];
            }
        }
    }

    /// Recomputes `binv` by Gauss–Jordan elimination of the current basis and
    /// refreshes the basic variable values. Returns `false` if the basis is
    /// numerically singular.
    fn refactorize(&mut self) -> bool {
        self.refactors += 1;
        let m = self.m;
        // Build the dense basis matrix.
        let mut mat = vec![0.0; m * m];
        for (pos, &j) in self.basis.iter().enumerate() {
            self.cols.for_each_entry(j, |i, v| mat[i * m + pos] = v);
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivoting.
            let mut best = col;
            let mut best_val = mat[col * m + col].abs();
            for r in col + 1..m {
                let v = mat[r * m + col].abs();
                if v > best_val {
                    best = r;
                    best_val = v;
                }
            }
            if best_val < 1e-12 {
                return false;
            }
            if best != col {
                for k in 0..m {
                    mat.swap(col * m + k, best * m + k);
                    inv.swap(col * m + k, best * m + k);
                }
            }
            let piv = mat[col * m + col];
            for k in 0..m {
                mat[col * m + k] /= piv;
                inv[col * m + k] /= piv;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = mat[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    mat[r * m + k] -= f * mat[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        // inv now maps: row-permuted... Gauss-Jordan applied to [B | I]
        // yields [I | B^{ -1 }] with consistent row ordering, but our basis
        // inverse must satisfy x_B[pos] ordering. `mat` became the identity,
        // so `inv` is B^{-1} directly.
        self.binv = inv;
        self.refresh_basic_values();
        self.pivots_since_refactor = 0;
        true
    }

    /// Recomputes basic values `x_B = Binv (rhs - N x_N)` from scratch.
    fn refresh_basic_values(&mut self) {
        let m = self.m;
        let mut resid = self.cols.lp.rhs.clone();
        for j in 0..self.cols.total() {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let xj = self.x[j];
            if xj == 0.0 {
                continue;
            }
            self.cols.for_each_entry(j, |i, v| resid[i] -= v * xj);
        }
        for pos in 0..m {
            let mut acc = 0.0;
            for (k, &rk) in resid.iter().enumerate().take(m) {
                acc += self.binv[pos * m + k] * rk;
            }
            self.x[self.basis[pos]] = acc;
        }
    }

    /// Total bound violation of basic variables (phase-1 objective).
    fn infeasibility(&self) -> f64 {
        let mut total = 0.0;
        for &j in &self.basis {
            let v = self.x[j];
            if v < self.lb[j] {
                total += self.lb[j] - v;
            } else if v > self.ub[j] {
                total += v - self.ub[j];
            }
        }
        total
    }

    /// Runs one simplex phase to optimality under the supplied cost
    /// function. `cost(j)` must be cheap; it is called during pricing.
    fn run_phase(&mut self, cost: &dyn Fn(&Self, usize) -> f64, max_iters: usize) -> PhaseEnd {
        loop {
            if self.iterations >= max_iters {
                return PhaseEnd::IterLimit;
            }
            self.iterations += 1;
            if self.pivots_since_refactor >= self.cfg.refactor_every && !self.refactorize() {
                return PhaseEnd::Stalled;
            }
            self.compute_duals(cost);
            let use_bland = self.degenerate_streak >= self.cfg.degenerate_before_bland;
            // --- Pricing: pick the entering column. ---
            let mut enter: Option<(usize, f64, f64)> = None; // (col, reduced cost, score)
            for j in 0..self.cols.total() {
                let st = self.state[j];
                if matches!(st, VarState::Basic(_)) {
                    continue;
                }
                if self.ub[j] - self.lb[j] <= self.cfg.feas_tol && self.ub[j].is_finite() {
                    continue; // fixed column can never improve
                }
                let d = cost(self, j) - self.cols.dot_with(j, &self.y);
                let score = match st {
                    VarState::AtLower if d < -self.cfg.opt_tol => -d,
                    VarState::AtUpper if d > self.cfg.opt_tol => d,
                    VarState::FreeAtZero if d.abs() > self.cfg.opt_tol => d.abs(),
                    _ => continue,
                };
                if use_bland {
                    enter = Some((j, d, score));
                    break;
                }
                if enter.is_none_or(|(_, _, s)| score > s) {
                    enter = Some((j, d, score));
                }
            }
            let Some((j_enter, d_enter, _)) = enter else {
                return PhaseEnd::Optimal;
            };
            // Direction: increasing if at lower bound (or free with d<0).
            let sigma = match self.state[j_enter] {
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
                VarState::FreeAtZero => {
                    if d_enter < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                // Basic columns are skipped during pricing; seeing one here
                // means the state bookkeeping is corrupt. Surface it as a
                // recorded solver failure instead of tearing the process down.
                VarState::Basic(_) => return PhaseEnd::Stalled,
            };
            self.compute_direction(j_enter);
            // --- Ratio test. ---
            // Entering variable's own range allows a bound flip.
            let own_range = self.ub[j_enter] - self.lb[j_enter];
            let mut t_max = if own_range.is_finite() { own_range } else { f64::INFINITY };
            let mut leave: Option<(usize, bool)> = None; // (basis pos, hits_upper)
            for pos in 0..self.m {
                let wj = sigma * self.w[pos];
                let bj = self.basis[pos];
                let xb = self.x[bj];
                if wj > self.cfg.pivot_tol {
                    // Basic value decreases toward its lower bound.
                    if self.lb[bj].is_finite() {
                        let t = (xb - self.lb[bj]) / wj;
                        if t < t_max {
                            t_max = t;
                            leave = Some((pos, false));
                        }
                    }
                } else if wj < -self.cfg.pivot_tol {
                    // Basic value increases toward its upper bound.
                    if self.ub[bj].is_finite() {
                        let t = (self.ub[bj] - xb) / (-wj);
                        if t < t_max {
                            t_max = t;
                            leave = Some((pos, true));
                        }
                    }
                }
            }
            if t_max.is_infinite() {
                return PhaseEnd::Unbounded;
            }
            let t = t_max.max(0.0);
            self.degenerate_streak =
                if t <= self.cfg.feas_tol { self.degenerate_streak + 1 } else { 0 };
            // --- Apply the step. ---
            for pos in 0..self.m {
                let bj = self.basis[pos];
                self.x[bj] -= sigma * t * self.w[pos];
            }
            match leave {
                None => {
                    // Bound flip: entering variable crosses to its other bound.
                    self.x[j_enter] += sigma * t;
                    self.state[j_enter] = match self.state[j_enter] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        other => other,
                    };
                }
                Some((pos, hits_upper)) => {
                    let piv = self.w[pos];
                    if piv.abs() < self.cfg.pivot_tol {
                        // Numerically unusable pivot: refactorize and retry.
                        if !self.refactorize() {
                            return PhaseEnd::Stalled;
                        }
                        continue;
                    }
                    let j_leave = self.basis[pos];
                    // Entering becomes basic at its new value.
                    self.x[j_enter] += sigma * t;
                    self.state[j_enter] = VarState::Basic(pos);
                    // Leaving variable lands exactly on a bound.
                    self.x[j_leave] = if hits_upper { self.ub[j_leave] } else { self.lb[j_leave] };
                    self.state[j_leave] =
                        if hits_upper { VarState::AtUpper } else { VarState::AtLower };
                    self.basis[pos] = j_enter;
                    // Product-form update of the explicit inverse.
                    let m = self.m;
                    for k in 0..m {
                        self.binv[pos * m + k] /= piv;
                    }
                    for r in 0..m {
                        if r == pos {
                            continue;
                        }
                        let f = self.w[r];
                        if f == 0.0 {
                            continue;
                        }
                        for k in 0..m {
                            self.binv[r * m + k] -= f * self.binv[pos * m + k];
                        }
                    }
                    self.pivots_since_refactor += 1;
                }
            }
        }
    }
}

/// Solves a standard-form LP with the two-phase simplex method.
///
/// Rows are equilibrated (scaled by their infinity norm) before solving so
/// that formulations mixing very large and very small coefficients (e.g.
/// CVaR rows with `1/(1-β)` weights) stay numerically stable; duals are
/// mapped back to the caller's row scaling.
pub fn solve(lp: &StandardLp, cfg: &SimplexConfig) -> Solution {
    solve_warm(lp, cfg, None)
}

/// [`solve`] with an optional starting basis from a previous solve of a
/// structurally identical LP (bounds and right-hand sides may differ).
///
/// A fitting, feasible basis skips phase 1 entirely and typically finishes
/// in a handful of phase-2 pivots; anything else (wrong dimensions,
/// singular after the data change, primal infeasible under the new
/// bounds) is reported as [`WarmEvent::Miss`] and solved cold.
pub fn solve_warm(lp: &StandardLp, cfg: &SimplexConfig, warm: Option<&Basis>) -> Solution {
    // Row equilibration. Scaling rows does not change which columns form a
    // nonsingular basis, so the warm basis passes through unchanged.
    let row_norms = lp.a.row_inf_norms();
    let needs_scaling = row_norms.iter().any(|&v| v > 0.0 && !(1e-3..=1e3).contains(&v));
    if needs_scaling {
        let scale: Vec<f64> =
            row_norms.iter().map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 }).collect();
        let mut scaled = lp.clone();
        let ones = vec![1.0; lp.num_vars()];
        scaled.a.scale(&scale, &ones);
        for (r, s) in scaled.rhs.iter_mut().zip(&scale) {
            *r *= s;
        }
        let mut sol = solve_unscaled(&scaled, cfg, warm);
        for (d, s) in sol.duals.iter_mut().zip(&scale) {
            *d *= s;
        }
        return sol;
    }
    solve_unscaled(lp, cfg, warm)
}

fn solve_unscaled(lp: &StandardLp, cfg: &SimplexConfig, warm: Option<&Basis>) -> Solution {
    let n = lp.num_vars();
    let m = lp.num_cons();
    let max_iters = if cfg.max_iters == 0 { 200 + 20 * (n + m) } else { cfg.max_iters };

    // Trivial case: no constraints — each variable sits at its best bound.
    if m == 0 {
        let mut x = vec![0.0; n];
        for (j, xj) in x.iter_mut().enumerate().take(n) {
            let c = lp.obj[j];
            *xj = if c > 0.0 {
                lp.lb[j]
            } else if c < 0.0 {
                lp.ub[j]
            } else if lp.lb[j].is_finite() {
                lp.lb[j]
            } else {
                lp.ub[j].min(0.0).max(lp.lb[j])
            };
            if !xj.is_finite() {
                return Solution::failed(Status::Unbounded, n, m);
            }
        }
        let obj: f64 = lp.obj_offset + x.iter().zip(&lp.obj).map(|(a, b)| a * b).sum::<f64>();
        return Solution {
            status: Status::Optimal,
            x,
            objective: lp.user_objective(obj),
            duals: vec![],
            basis: None,
            stats: base_stats(lp),
        };
    }

    // Warm path: reinstall the basis against the new data; accept it only
    // when it comes up primal feasible (phase 1 cannot repair an
    // artificial-free start, so feasibility is the admission ticket).
    if let Some(basis) = warm {
        if let Some(s) = Simplex::from_basis(lp, cfg, basis) {
            let rhs_max = lp.rhs.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            if s.infeasibility() <= cfg.feas_tol * (1.0 + rhs_max) {
                let mut sol = solve_prepared(lp, cfg, s, max_iters);
                // Numerical trouble from a warm basis is recoverable: retry
                // cold rather than surfacing the failure.
                if sol.status != Status::NumericalTrouble {
                    sol.stats.warm = WarmEvent::Hit;
                    return sol;
                }
            }
        }
        let mut sol = solve_prepared(lp, cfg, Simplex::new(lp, cfg), max_iters);
        sol.stats.warm = WarmEvent::Miss;
        return sol;
    }
    solve_prepared(lp, cfg, Simplex::new(lp, cfg), max_iters)
}

/// Baseline stats describing the problem; counters are filled by the solve.
fn base_stats(lp: &StandardLp) -> SolveStats {
    SolveStats {
        rows: lp.num_cons(),
        cols: lp.num_vars(),
        nnz: lp.a.nnz(),
        backend: BackendKind::Simplex,
        ..SolveStats::default()
    }
}

/// Runs both phases on an already-constructed solver state and extracts the
/// solution. Phase 1 runs only when the starting point is infeasible or
/// carries artificial columns (a feasible warm basis skips it entirely).
fn solve_prepared<'a>(
    lp: &'a StandardLp,
    cfg: &'a SimplexConfig,
    mut s: Simplex<'a>,
    max_iters: usize,
) -> Solution {
    let n = lp.num_vars();
    let m = lp.num_cons();
    // Phase 1: minimize total infeasibility via artificial costs plus
    // penalties on any basic variable that starts outside its bounds.
    if s.infeasibility() > cfg.feas_tol || !s.cols.art_rows.is_empty() {
        let phase1_cost = |s: &Simplex, j: usize| -> f64 {
            if j >= s.cols.n + s.cols.m {
                1.0
            } else {
                0.0
            }
        };
        match s.run_phase(&phase1_cost, max_iters) {
            PhaseEnd::Optimal => {}
            PhaseEnd::Unbounded => {
                // Phase-1 objective is bounded below by zero; an "unbounded"
                // report here is numerical noise. Treat as stalled.
                return Solution::failed(Status::NumericalTrouble, n, m);
            }
            PhaseEnd::IterLimit => return Solution::failed(Status::IterationLimit, n, m),
            PhaseEnd::Stalled => return Solution::failed(Status::NumericalTrouble, n, m),
        }
        let art_total: f64 = (0..s.cols.art_rows.len()).map(|k| s.x[s.cols.n + s.cols.m + k]).sum();
        if art_total
            > cfg.feas_tol * 10.0 * (1.0 + lp.rhs.iter().map(|r| r.abs()).fold(0.0, f64::max))
        {
            return Solution::failed(Status::Infeasible, n, m);
        }
        // Pin artificials to zero for phase 2.
        for k in 0..s.cols.art_rows.len() {
            let j = s.cols.n + s.cols.m + k;
            s.lb[j] = 0.0;
            s.ub[j] = 0.0;
            if !matches!(s.state[j], VarState::Basic(_)) {
                s.x[j] = 0.0;
                s.state[j] = VarState::AtLower;
            }
        }
    }

    // Phase 2: the real objective (structural columns only).
    let phase2_cost = |s: &Simplex, j: usize| -> f64 {
        if j < s.cols.n {
            s.cols.lp.obj[j]
        } else {
            0.0
        }
    };
    let end = s.run_phase(&phase2_cost, max_iters);
    let status = match end {
        PhaseEnd::Optimal => Status::Optimal,
        PhaseEnd::Unbounded => Status::Unbounded,
        PhaseEnd::IterLimit => Status::IterationLimit,
        PhaseEnd::Stalled => Status::NumericalTrouble,
    };
    if !matches!(status, Status::Optimal) {
        // On an iteration limit the current (feasible) iterate is still a
        // meaningful answer; other failures return no point.
        let mut sol = if matches!(status, Status::IterationLimit) {
            let x: Vec<f64> = s.x[..n].to_vec();
            let min_obj: f64 =
                lp.obj_offset + x.iter().zip(&lp.obj).map(|(a, b)| a * b).sum::<f64>();
            Solution {
                status,
                objective: lp.user_objective(min_obj),
                x,
                duals: Vec::new(),
                basis: None,
                stats: base_stats(lp),
            }
        } else {
            Solution::failed(status, n, m)
        };
        sol.stats.iterations = s.iterations;
        sol.stats.refactors = s.refactors;
        sol.stats.backend = BackendKind::Simplex;
        sol.stats.rows = m;
        sol.stats.cols = n;
        sol.stats.nnz = lp.a.nnz();
        return sol;
    }
    // Final cleanup: refresh values through one refactorization for accuracy.
    s.refactorize();
    s.compute_duals(&phase2_cost);
    let x: Vec<f64> = s.x[..n].to_vec();
    let min_obj: f64 = lp.obj_offset + x.iter().zip(&lp.obj).map(|(a, b)| a * b).sum::<f64>();
    Solution {
        status: Status::Optimal,
        objective: lp.user_objective(min_obj),
        duals: s.y.iter().map(|&v| lp.obj_sign * v).collect(),
        basis: Some(s.snapshot_basis()),
        x,
        stats: SolveStats { iterations: s.iterations, refactors: s.refactors, ..base_stats(lp) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense, INF};

    fn solve_model(m: &Model) -> Solution {
        solve(&m.to_standard(), &SimplexConfig::default())
    }

    #[test]
    fn textbook_max_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => obj 36 at (2,6)
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 4.0, "c1");
        m.add_con(LinExpr::term(y, 2.0), Sense::Le, 12.0, "c2");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0), Sense::Le, 18.0, "c3");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x - y = 2 => x=6, y=4, obj 10
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Eq, 10.0, "sum");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, -1.0), Sense::Eq, 2.0, "diff");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Minimize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.x[0] - 6.0).abs() < 1e-6);
        assert!((s.x[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 => obj 20 at (10, 0)
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Ge, 10.0, "c1");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, 2.0, "c2");
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 3.0), Objective::Minimize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, 5.0, "c");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        assert_eq!(solve_model(&m).status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        m.add_con(LinExpr::term(x, -1.0), Sense::Le, 0.0, "noop");
        assert_eq!(solve_model(&m).status, Status::Unbounded);
    }

    #[test]
    fn upper_bounded_variables_flip() {
        // max x + y, x <= 3 (bound), y <= 2 (bound), x + y <= 4
        let mut m = Model::new();
        let x = m.add_var(0.0, 3.0, "x");
        let y = m.add_var(0.0, 2.0, "y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 4.0, "cap");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn free_variables() {
        // min x s.t. x >= -5 (via constraint, variable itself free)
        let mut m = Model::new();
        let x = m.add_var(-INF, INF, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, -5.0, "c");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.x[0] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_equalities() {
        // x + y = -3 with free vars; min x^2-ish proxy: min x - y
        let mut m = Model::new();
        let x = m.add_var(-10.0, 10.0, "x");
        let y = m.add_var(-10.0, 10.0, "y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Eq, -3.0, "c");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, -1.0), Objective::Minimize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        // Optimal pushes x to -10, y to 7.
        assert!((s.x[0] + 10.0).abs() < 1e-6);
        assert!((s.x[1] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn duals_satisfy_complementary_slackness() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 10.0, "tight");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 100.0, "loose");
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        // Loose constraint must have zero dual.
        assert!(s.duals[1].abs() < 1e-6, "duals {:?}", s.duals);
        // Tight constraint dual equals marginal value 2.
        assert!((s.duals[0] - 2.0).abs() < 1e-6, "duals {:?}", s.duals);
    }

    #[test]
    fn warm_restart_on_same_lp_hits_and_matches() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 4.0, "c1");
        m.add_con(LinExpr::term(y, 2.0), Sense::Le, 12.0, "c2");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0), Sense::Le, 18.0, "c3");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0), Objective::Maximize);
        let lp = m.to_standard();
        let cold = solve(&lp, &SimplexConfig::default());
        assert_eq!(cold.status, Status::Optimal);
        let basis = cold.basis.clone().expect("optimal solve records a basis");
        assert_eq!(basis.num_basic(), lp.num_cons());
        let warm = solve_warm(&lp, &SimplexConfig::default(), Some(&basis));
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(warm.stats.warm, crate::warm::WarmEvent::Hit);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        // An optimal starting basis needs no pivots beyond the optimality
        // check, so warm iterations must not exceed the cold count.
        assert!(warm.stats.iterations <= cold.stats.iterations);
    }

    #[test]
    fn warm_survives_bound_and_rhs_changes() {
        // Perturb demand-like bounds and rhs between solves: the basis
        // snapshot is data-independent, so it should still warm-start.
        let mut m = Model::new();
        let x = m.add_var(0.0, 5.0, "x");
        let y = m.add_var(0.0, 7.0, "y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 9.0, "cap");
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
        let basis = solve(&m.to_standard(), &SimplexConfig::default()).basis.expect("basis");
        let mut m2 = m.clone();
        m2.set_bounds(x, 0.0, 6.0);
        let c = crate::model::ConId(0);
        m2.set_rhs(c, 10.0);
        let warm = solve_warm(&m2.to_standard(), &SimplexConfig::default(), Some(&basis));
        let cold = solve(&m2.to_standard(), &SimplexConfig::default());
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn mismatched_warm_basis_is_a_miss_not_a_failure() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 3.0, "c");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let bogus = crate::warm::Basis { cols: vec![crate::warm::ColStatus::Basic; 7] };
        let s = solve_warm(&m.to_standard(), &SimplexConfig::default(), Some(&bogus));
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.stats.warm, crate::warm::WarmEvent::Miss);
        assert!((s.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_warm_basis_falls_back_cold() {
        // Shrink a bound so the recorded BASIC variable's recomputed value
        // lands outside its box: the warm install must reject and re-solve
        // cold (phase 1 cannot repair an artificial-free infeasible start).
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, "x");
        let y = m.add_var(0.0, 10.0, "y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Eq, 8.0, "sum");
        m.set_objective(LinExpr::term(y, 1.0), Objective::Maximize);
        let cold = solve(&m.to_standard(), &SimplexConfig::default());
        assert!((cold.x[1] - 8.0).abs() < 1e-9); // y basic at 8
        let basis = cold.basis.expect("basis");
        let mut m2 = m.clone();
        m2.set_bounds(y, 0.0, 5.0); // basic y recomputes to 8 > ub 5
        let s = solve_warm(&m2.to_standard(), &SimplexConfig::default(), Some(&basis));
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.stats.warm, crate::warm::WarmEvent::Miss);
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stats_report_problem_shape() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 5.0, "c");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.stats.rows, 1);
        assert_eq!(s.stats.cols, 2);
        assert_eq!(s.stats.nnz, 2);
        assert_eq!(s.stats.backend, crate::warm::BackendKind::Simplex);
        assert_eq!(s.stats.warm, crate::warm::WarmEvent::Cold);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints intersecting at the same vertex.
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        for i in 0..20 {
            m.add_con(
                LinExpr::new().add(x, 1.0 + (i as f64) * 1e-9).add(y, 1.0),
                Sense::Le,
                1.0,
                format!("c{i}"),
            );
        }
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-5);
    }
}
