//! Multi-RHS LP batching: one shared sparsity pattern, many data lanes.
//!
//! ARROW's offline stage solves one relaxed RWA LP per failure scenario —
//! thousands of solves whose matrices often coincide while only the
//! right-hand sides, bounds, and objectives differ. A [`BatchedModel`]
//! packs such a family into a struct-of-arrays *panel*: the constraint
//! matrix and row senses are stored once, and the per-lane vectors are laid
//! out contiguously so a solver can sweep the matrix nonzeros a single time
//! per iteration while updating every lane ([`crate::pdhg::solve_batch`]).
//!
//! A batch is invalidated by anything that changes the shared structure:
//! adding/removing variables or constraints, changing a coefficient, or
//! flipping a row sense. Per-lane RHS/bound/objective edits never
//! invalidate it — that is the whole point.

use crate::model::{Model, Sense, StandardLp};
use crate::sparse::CsrMatrix;

/// Why a [`BatchedModel`] could not be assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// No lanes were supplied.
    Empty,
    /// The given lane's matrix or senses differ from lane 0's.
    StructureMismatch {
        /// Index of the offending lane.
        lane: usize,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Empty => write!(f, "batch has no lanes"),
            BatchError::StructureMismatch { lane } => {
                write!(f, "lane {lane} does not share lane 0's constraint structure")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// A panel of LPs sharing one constraint matrix and row senses, differing
/// only in per-lane right-hand sides, variable bounds, and objectives.
///
/// Panels are lane-major: lane `l`'s RHS occupies `rhs[l*m .. (l+1)*m]`
/// (likewise bounds/objective with stride `n`), so [`BatchedModel::lane`]
/// hands out plain slices and [`BatchedModel::lane_standard`] can
/// reconstitute any lane as a standalone [`StandardLp`].
#[derive(Debug, Clone)]
pub struct BatchedModel {
    a: CsrMatrix,
    senses: Vec<Sense>,
    lanes: usize,
    rhs: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    obj: Vec<f64>,
    obj_offset: Vec<f64>,
    obj_sign: Vec<f64>,
}

/// Borrowed view of one lane's data within a [`BatchedModel`].
#[derive(Debug, Clone, Copy)]
pub struct LaneView<'a> {
    /// Row right-hand sides.
    pub rhs: &'a [f64],
    /// Variable lower bounds.
    pub lb: &'a [f64],
    /// Variable upper bounds.
    pub ub: &'a [f64],
    /// Minimization objective coefficients.
    pub obj: &'a [f64],
    /// Constant added to the minimization objective.
    pub obj_offset: f64,
    /// `1.0` if the lane's model minimized, `-1.0` if it maximized.
    pub obj_sign: f64,
}

impl BatchedModel {
    /// Assembles a batch from standard-form LPs that all share lane 0's
    /// constraint matrix and senses ([`StandardLp::same_structure`]).
    pub fn from_standard(lps: &[StandardLp]) -> Result<Self, BatchError> {
        let Some(first) = lps.first() else {
            return Err(BatchError::Empty);
        };
        for (l, lp) in lps.iter().enumerate().skip(1) {
            if !lp.same_structure(first) {
                return Err(BatchError::StructureMismatch { lane: l });
            }
        }
        let lanes = lps.len();
        let m = first.num_cons();
        let n = first.num_vars();
        let mut batch = BatchedModel {
            a: first.a.clone(),
            senses: first.senses.clone(),
            lanes,
            rhs: Vec::with_capacity(lanes * m),
            lb: Vec::with_capacity(lanes * n),
            ub: Vec::with_capacity(lanes * n),
            obj: Vec::with_capacity(lanes * n),
            obj_offset: Vec::with_capacity(lanes),
            obj_sign: Vec::with_capacity(lanes),
        };
        for lp in lps {
            batch.rhs.extend_from_slice(&lp.rhs);
            batch.lb.extend_from_slice(&lp.lb);
            batch.ub.extend_from_slice(&lp.ub);
            batch.obj.extend_from_slice(&lp.obj);
            batch.obj_offset.push(lp.obj_offset);
            batch.obj_sign.push(lp.obj_sign);
        }
        Ok(batch)
    }

    /// [`BatchedModel::from_standard`] over models lowered with
    /// [`Model::to_standard`]. Integer markers are ignored, exactly as the
    /// continuous backends ignore them on the sequential path.
    pub fn from_models(models: &[Model]) -> Result<Self, BatchError> {
        let lps: Vec<StandardLp> = models.iter().map(|m| m.to_standard()).collect();
        Self::from_standard(&lps)
    }

    /// Number of lanes in the panel.
    pub fn num_lanes(&self) -> usize {
        self.lanes
    }

    /// Shared constraint-row count.
    pub fn num_cons(&self) -> usize {
        self.a.rows()
    }

    /// Shared variable count.
    pub fn num_vars(&self) -> usize {
        self.a.cols()
    }

    /// Shared nonzero count.
    pub fn nnz(&self) -> usize {
        self.a.nnz()
    }

    /// The shared constraint matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// The shared row senses.
    pub fn senses(&self) -> &[Sense] {
        &self.senses
    }

    /// Borrowed view of lane `l`'s data.
    pub fn lane(&self, l: usize) -> LaneView<'_> {
        let m = self.num_cons();
        let n = self.num_vars();
        LaneView {
            rhs: &self.rhs[l * m..(l + 1) * m],
            lb: &self.lb[l * n..(l + 1) * n],
            ub: &self.ub[l * n..(l + 1) * n],
            obj: &self.obj[l * n..(l + 1) * n],
            obj_offset: self.obj_offset[l],
            obj_sign: self.obj_sign[l],
        }
    }

    /// Reconstitutes lane `l` as a standalone [`StandardLp`] (clones the
    /// shared structure; used for per-lane delegation and tests).
    pub fn lane_standard(&self, l: usize) -> StandardLp {
        let lane = self.lane(l);
        StandardLp {
            a: self.a.clone(),
            senses: self.senses.clone(),
            rhs: lane.rhs.to_vec(),
            lb: lane.lb.to_vec(),
            ub: lane.ub.to_vec(),
            obj: lane.obj.to_vec(),
            obj_offset: lane.obj_offset,
            obj_sign: lane.obj_sign,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Objective};

    fn family(rhs: &[f64]) -> Vec<Model> {
        rhs.iter()
            .map(|&r| {
                let mut m = Model::new();
                let x = m.add_var(0.0, 4.0, "x");
                let y = m.add_nonneg("y");
                m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, r, "cap");
                m.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
                m
            })
            .collect()
    }

    #[test]
    fn empty_batch_is_an_error() {
        assert_eq!(BatchedModel::from_standard(&[]).unwrap_err(), BatchError::Empty);
    }

    #[test]
    fn mismatched_lane_is_reported_by_index() {
        let mut models = family(&[6.0, 7.0]);
        // Lane 2 gets a different coefficient: structure mismatch.
        let mut odd = Model::new();
        let x = odd.add_var(0.0, 4.0, "x");
        let y = odd.add_nonneg("y");
        odd.add_con(LinExpr::new().add(x, 2.0).add(y, 1.0), Sense::Le, 6.0, "cap");
        odd.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
        models.push(odd);
        let err = BatchedModel::from_models(&models).unwrap_err();
        assert_eq!(err, BatchError::StructureMismatch { lane: 2 });
    }

    #[test]
    fn lane_standard_roundtrips_each_lane() {
        let models = family(&[6.0, 9.0, 3.0]);
        let batch = BatchedModel::from_models(&models).expect("same structure");
        assert_eq!(batch.num_lanes(), 3);
        assert_eq!(batch.num_cons(), 1);
        assert_eq!(batch.num_vars(), 2);
        for (l, model) in models.iter().enumerate() {
            let direct = model.to_standard();
            let lane = batch.lane_standard(l);
            assert!(lane.same_structure(&direct));
            assert_eq!(lane.rhs, direct.rhs);
            assert_eq!(lane.lb, direct.lb);
            assert_eq!(lane.ub, direct.ub);
            assert_eq!(lane.obj, direct.obj);
            assert_eq!(lane.obj_sign, direct.obj_sign);
        }
    }

    #[test]
    fn structure_digest_agrees_with_same_structure() {
        let models = family(&[6.0, 9.0]);
        let a = models[0].to_standard();
        let b = models[1].to_standard();
        assert!(a.same_structure(&b));
        assert_eq!(a.structure_digest(), b.structure_digest());
    }
}
