//! Solver-independent solution and status types.

use crate::model::{Model, VarId};
use crate::warm::{BackendKind, Basis, PrimalDual, WarmEvent, WarmStart};

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal (within tolerance) solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit,
    /// The time limit was reached before convergence.
    TimeLimit,
    /// The solver lost numerical accuracy and could not recover.
    NumericalTrouble,
}

impl Status {
    /// `true` for [`Status::Optimal`].
    pub fn is_optimal(self) -> bool {
        matches!(self, Status::Optimal)
    }

    /// `true` when the returned point is meaningful: either optimal or the
    /// best iterate at an iteration/time limit (approximately optimal for
    /// the first-order backend). Infeasible/unbounded/numerical failures
    /// return no usable point.
    pub fn is_usable(self) -> bool {
        matches!(self, Status::Optimal | Status::IterationLimit | Status::TimeLimit)
    }
}

/// Counters describing how hard the solver worked and what it worked on.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Simplex pivots or PDHG iterations performed.
    pub iterations: usize,
    /// Wall-clock seconds spent inside the solver.
    pub solve_seconds: f64,
    /// Branch-and-bound nodes explored (MILP only).
    pub nodes: usize,
    /// Constraint rows of the solved standard form.
    pub rows: usize,
    /// Structural variables of the solved standard form.
    pub cols: usize,
    /// Nonzero constraint coefficients of the solved standard form.
    pub nnz: usize,
    /// Which backend actually executed the solve.
    pub backend: BackendKind,
    /// What happened to the warm start, if one was supplied.
    pub warm: WarmEvent,
    /// Adaptive restarts performed (PDHG only).
    pub restarts: usize,
    /// Basis refactorizations performed (simplex only).
    pub refactors: usize,
    /// Width of the batch panel this solve ran in: `0` for a standalone
    /// [`crate::solver::solve_with`] call, `N ≥ 1` for a lane of an N-wide
    /// [`crate::solver::solve_batch`] group. When batched,
    /// [`SolveStats::solve_seconds`] is the lane's amortized share of the
    /// group wall time, not an independent measurement.
    pub lanes: usize,
}

/// The result of solving a model.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Why the solver stopped.
    pub status: Status,
    /// Primal values, indexed by [`VarId::index`]. Empty on failure.
    pub x: Vec<f64>,
    /// Objective value in the *user's* optimization direction.
    pub objective: f64,
    /// Dual values per constraint row, in the user's direction (a positive
    /// dual on a `<=` row of a maximization means the row is binding and
    /// relaxing it by one unit gains that much objective). Empty on failure
    /// or for backends that do not produce duals.
    pub duals: Vec<f64>,
    /// Final simplex basis (optimal simplex solves only); feed it back via
    /// [`Solution::warm_start`] to accelerate the next related solve.
    pub basis: Option<Basis>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// A failure placeholder carrying only the status.
    pub fn failed(status: Status, num_vars: usize, _num_cons: usize) -> Self {
        Solution {
            status,
            x: vec![0.0; num_vars],
            objective: f64::NAN,
            duals: Vec::new(),
            basis: None,
            stats: SolveStats::default(),
        }
    }

    /// Packages this solution as a [`WarmStart`] for a follow-up solve of a
    /// structurally identical model (same rows/columns/coefficients; bounds
    /// and right-hand sides may differ). Returns `None` when the solve left
    /// no usable point.
    pub fn warm_start(&self) -> Option<WarmStart> {
        if !self.status.is_usable() || self.x.is_empty() {
            return None;
        }
        Some(WarmStart {
            basis: self.basis.clone(),
            point: Some(PrimalDual { x: self.x.clone(), y: self.duals.clone() }),
        })
    }

    /// Value of a variable in this solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }

    /// Worst constraint/bound violation of this solution against `model`.
    pub fn violation(&self, model: &Model) -> f64 {
        model.max_violation(&self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_solution_has_nan_objective() {
        let s = Solution::failed(Status::Infeasible, 3, 2);
        assert_eq!(s.status, Status::Infeasible);
        assert!(s.objective.is_nan());
        assert_eq!(s.x.len(), 3);
        assert!(!s.status.is_optimal());
        assert!(Status::Optimal.is_optimal());
    }

    #[test]
    fn failed_solution_yields_no_warm_start() {
        assert!(Solution::failed(Status::Infeasible, 3, 2).warm_start().is_none());
    }
}
