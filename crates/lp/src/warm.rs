//! Warm-start types shared by the solver backends.
//!
//! ARROW's online stage re-solves structurally identical LPs every TE epoch
//! (consecutive traffic matrices in a diurnal sweep, Phase I → Phase II).
//! A [`WarmStart`] carries whatever the last solve learned: a simplex
//! [`Basis`] and/or a primal–dual [`PrimalDual`] point for PDHG. Each
//! backend consumes the part it understands and ignores the rest; an
//! incompatible warm start (wrong dimensions, singular basis, infeasible
//! under the new data) is recorded as a [`WarmEvent::Miss`] and the solve
//! falls back to the cold path, so warm starting never changes *whether* a
//! problem is solved — only how fast.

/// Status of one column (structural variable or row slack) in a simplex
/// basis snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColStatus {
    /// The column is in the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Free column parked at zero.
    Free,
}

/// A simplex basis snapshot: one [`ColStatus`] per column, the `n`
/// structural variables first, then the `m` row slacks.
///
/// The snapshot is data-independent: it records only *which* columns are
/// basic, so it stays meaningful when bounds (demands) or right-hand sides
/// (restored capacities) change between solves — exactly the mutations the
/// online stage performs. It is invalidated by any change to the constraint
/// *pattern* (row/column counts or coefficients).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Per-column status, length `n + m`.
    pub cols: Vec<ColStatus>,
}

impl Basis {
    /// Number of basic columns recorded.
    pub fn num_basic(&self) -> usize {
        self.cols.iter().filter(|c| matches!(c, ColStatus::Basic)).count()
    }
}

/// A primal–dual point in user space (unscaled model variables / rows), as
/// found in [`Solution::x`](crate::solution::Solution) and
/// [`Solution::duals`](crate::solution::Solution). PDHG maps it through its
/// own equilibration and resumes iterating from there.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimalDual {
    /// Primal values per variable.
    pub x: Vec<f64>,
    /// Dual values per constraint row (may be empty: primal-only start).
    pub y: Vec<f64>,
}

/// Everything a previous solve can hand to the next one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarmStart {
    /// Simplex basis snapshot (used by the simplex backend).
    pub basis: Option<Basis>,
    /// Primal–dual point (used by the PDHG backend).
    pub point: Option<PrimalDual>,
}

impl WarmStart {
    /// A warm start carrying only a basis.
    pub fn from_basis(basis: Basis) -> Self {
        WarmStart { basis: Some(basis), point: None }
    }

    /// A warm start carrying only a primal–dual point.
    pub fn from_point(point: PrimalDual) -> Self {
        WarmStart { basis: None, point: Some(point) }
    }

    /// `true` when neither component is present.
    pub fn is_empty(&self) -> bool {
        self.basis.is_none() && self.point.is_none()
    }
}

/// What happened to the warm start this solve was given.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmEvent {
    /// No warm start was supplied (or the backend cannot use one).
    #[default]
    Cold,
    /// The warm start was accepted and the solve resumed from it.
    Hit,
    /// A warm start was supplied but rejected (dimension mismatch, singular
    /// or infeasible basis); the solve ran cold.
    Miss,
}

/// Which algorithm actually executed a solve (recorded in
/// [`SolveStats`](crate::solution::SolveStats); unlike
/// [`Backend`](crate::solver::Backend) this is never `Auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// No backend ran (failure placeholder or closed-form answer).
    #[default]
    None,
    /// Bounded-variable two-phase revised simplex.
    Simplex,
    /// Restarted averaged primal–dual hybrid gradient.
    Pdhg,
    /// LP-based branch & bound.
    Milp,
}

impl BackendKind {
    /// Short lowercase label for logs and JSON benches.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::None => "none",
            BackendKind::Simplex => "simplex",
            BackendKind::Pdhg => "pdhg",
            BackendKind::Milp => "milp",
        }
    }
}

impl WarmEvent {
    /// Short lowercase label for logs and JSON benches.
    pub fn label(self) -> &'static str {
        match self {
            WarmEvent::Cold => "cold",
            WarmEvent::Hit => "hit",
            WarmEvent::Miss => "miss",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_counts_basic_columns() {
        let b = Basis {
            cols: vec![ColStatus::Basic, ColStatus::AtLower, ColStatus::Basic, ColStatus::Free],
        };
        assert_eq!(b.num_basic(), 2);
    }

    #[test]
    fn warm_start_constructors() {
        assert!(WarmStart::default().is_empty());
        let ws = WarmStart::from_point(PrimalDual { x: vec![1.0], y: vec![] });
        assert!(!ws.is_empty());
        assert!(ws.basis.is_none());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BackendKind::Simplex.label(), "simplex");
        assert_eq!(WarmEvent::Hit.label(), "hit");
        assert_eq!(WarmEvent::default().label(), "cold");
    }
}
