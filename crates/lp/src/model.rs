//! Linear-program model builder.
//!
//! A [`Model`] is assembled incrementally: create variables with
//! [`Model::add_var`] (or the convenience constructors), build [`LinExpr`]
//! linear expressions over them, post constraints, and set an objective.
//! [`Model::to_standard`] lowers the model to the computational form shared
//! by every solver backend.
//!
//! The builder is deliberately plain — no operator-overloading DSL tricks —
//! so that formulations transcribed from the paper read like the paper.

use crate::sparse::CsrMatrix;

/// Positive infinity used for "no upper bound".
pub const INF: f64 = f64::INFINITY;

/// Identifier of a model variable. Indexes are dense and allocation-ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a model constraint (row), allocation-ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConId(pub(crate) usize);

impl ConId {
    /// The dense index of this constraint within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A linear expression: a sum of `coefficient * variable` terms plus a
/// constant offset.
///
/// Duplicate variables are allowed while building; they are merged when the
/// model is lowered to standard form.
#[derive(Debug, Clone, Default)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms, in insertion order.
    pub terms: Vec<(VarId, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl LinExpr {
    /// The empty expression (constant zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of a single constant.
    pub fn constant(c: f64) -> Self {
        LinExpr { terms: Vec::new(), constant: c }
    }

    /// An expression consisting of a single `coeff * var` term.
    pub fn term(var: VarId, coeff: f64) -> Self {
        LinExpr { terms: vec![(var, coeff)], constant: 0.0 }
    }

    /// Adds `coeff * var` to the expression; returns `self` for chaining.
    pub fn add(mut self, var: VarId, coeff: f64) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds `coeff * var` in place.
    pub fn add_term(&mut self, var: VarId, coeff: f64) {
        self.terms.push((var, coeff));
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// Sums `coeff * var` over an iterator of terms.
    pub fn sum(terms: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        LinExpr { terms: terms.into_iter().collect(), constant: 0.0 }
    }

    /// Sums a set of variables with unit coefficients.
    pub fn sum_vars(vars: impl IntoIterator<Item = VarId>) -> Self {
        LinExpr { terms: vars.into_iter().map(|v| (v, 1.0)).collect(), constant: 0.0 }
    }

    /// Evaluates the expression against a dense assignment vector.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * x[v.0]).sum::<f64>()
    }
}

#[derive(Debug, Clone)]
struct VarDef {
    lb: f64,
    ub: f64,
    integer: bool,
    name: String,
}

#[derive(Debug, Clone)]
struct ConDef {
    terms: Vec<(VarId, f64)>,
    sense: Sense,
    rhs: f64,
    name: String,
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// An LP/MILP model under construction.
#[derive(Debug, Clone)]
pub struct Model {
    vars: Vec<VarDef>,
    cons: Vec<ConDef>,
    objective: LinExpr,
    direction: Objective,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// Creates an empty model (minimization by default).
    pub fn new() -> Self {
        Model {
            vars: Vec::new(),
            cons: Vec::new(),
            objective: LinExpr::new(),
            direction: Objective::Minimize,
        }
    }

    /// Adds a continuous variable with bounds `[lb, ub]`.
    ///
    /// Use [`INF`] / `-INF` for unbounded sides. `name` is kept for
    /// diagnostics only and need not be unique.
    pub fn add_var(&mut self, lb: f64, ub: f64, name: impl Into<String>) -> VarId {
        assert!(lb <= ub, "variable bounds crossed: [{lb}, {ub}]");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef { lb, ub, integer: false, name: name.into() });
        id
    }

    /// Adds a continuous variable with bounds `[0, +inf)`.
    pub fn add_nonneg(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(0.0, INF, name)
    }

    /// Adds an integer variable with bounds `[lb, ub]` (solved by the MILP
    /// branch-and-bound backend; the LP backends treat it as continuous).
    pub fn add_int_var(&mut self, lb: f64, ub: f64, name: impl Into<String>) -> VarId {
        let id = self.add_var(lb, ub, name);
        self.vars[id.0].integer = true;
        id
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_int_var(0.0, 1.0, name)
    }

    /// Posts the constraint `expr (sense) rhs`.
    ///
    /// Any constant inside `expr` is folded into the right-hand side.
    pub fn add_con(
        &mut self,
        expr: LinExpr,
        sense: Sense,
        rhs: f64,
        name: impl Into<String>,
    ) -> ConId {
        let id = ConId(self.cons.len());
        self.cons.push(ConDef {
            rhs: rhs - expr.constant,
            terms: expr.terms,
            sense,
            name: name.into(),
        });
        id
    }

    /// Sets the objective expression and direction.
    pub fn set_objective(&mut self, expr: LinExpr, direction: Objective) {
        self.objective = expr;
        self.direction = direction;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Number of integer-restricted variables.
    pub fn num_int_vars(&self) -> usize {
        self.vars.iter().filter(|v| v.integer).count()
    }

    /// Whether variable `v` is integer-restricted.
    pub fn is_integer(&self, v: VarId) -> bool {
        self.vars[v.0].integer
    }

    /// Bounds of variable `v`.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lb, self.vars[v.0].ub)
    }

    /// Tightens the bounds of an existing variable (used by branch & bound).
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        assert!(lb <= ub, "variable bounds crossed: [{lb}, {ub}]");
        self.vars[v.0].lb = lb;
        self.vars[v.0].ub = ub;
    }

    /// Right-hand side of constraint `c` (after any constant folding done
    /// by [`Model::add_con`]).
    pub fn rhs(&self, c: ConId) -> f64 {
        self.cons[c.0].rhs
    }

    /// Replaces the right-hand side of an existing constraint.
    ///
    /// This is the incremental-assembly primitive for the online stage:
    /// re-solving with new restored capacities (or demands, via
    /// [`Model::set_bounds`]) patches the cached model in place instead of
    /// rebuilding it. The value is stored verbatim — any constant the
    /// original expression folded into the rhs must be re-applied by the
    /// caller (ARROW's formulations post constant-free expressions).
    pub fn set_rhs(&mut self, c: ConId, rhs: f64) {
        self.cons[c.0].rhs = rhs;
    }

    /// Diagnostic name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Diagnostic name of constraint `c`.
    pub fn con_name(&self, c: ConId) -> &str {
        &self.cons[c.0].name
    }

    /// Objective direction.
    pub fn direction(&self) -> Objective {
        self.direction
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Total number of nonzero coefficients across all constraints (before
    /// merging duplicates). Used for formulation-size reporting (Table 8).
    pub fn nnz(&self) -> usize {
        self.cons.iter().map(|c| c.terms.len()).sum()
    }

    /// Checks a candidate point against every constraint and bound.
    ///
    /// Returns the worst absolute violation found; `0.0` means feasible.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, v) in self.vars.iter().enumerate() {
            worst = worst.max(v.lb - x[i]).max(x[i] - v.ub);
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|&(v, co)| co * x[v.0]).sum();
            let viol = match c.sense {
                Sense::Le => lhs - c.rhs,
                Sense::Ge => c.rhs - lhs,
                Sense::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst.max(0.0)
    }

    /// Lowers the model to the standard computational form used by solvers:
    /// minimize `c'x + offset` subject to sparse rows with senses and
    /// variable bounds. Maximization is handled by negating the objective.
    pub fn to_standard(&self) -> StandardLp {
        let n = self.vars.len();
        let m = self.cons.len();
        let sign = match self.direction {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        let mut obj = vec![0.0; n];
        for &(v, c) in &self.objective.terms {
            obj[v.0] += sign * c;
        }
        let mut triplets = Vec::with_capacity(self.nnz());
        for (i, con) in self.cons.iter().enumerate() {
            for &(v, c) in &con.terms {
                triplets.push((i, v.0, c));
            }
        }
        StandardLp {
            a: CsrMatrix::from_triplets(m, n, &triplets),
            senses: self.cons.iter().map(|c| c.sense).collect(),
            rhs: self.cons.iter().map(|c| c.rhs).collect(),
            lb: self.vars.iter().map(|v| v.lb).collect(),
            ub: self.vars.iter().map(|v| v.ub).collect(),
            obj,
            obj_offset: sign * self.objective.constant,
            obj_sign: sign,
        }
    }
}

/// Standard computational form: minimize `obj . x + obj_offset` subject to
/// `A x (senses) rhs` and `lb <= x <= ub`.
///
/// `obj_sign` records whether the original model maximized (`-1.0`) so that
/// solution objectives can be reported in the user's direction.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Constraint matrix, one row per constraint.
    pub a: CsrMatrix,
    /// Row senses.
    pub senses: Vec<Sense>,
    /// Row right-hand sides.
    pub rhs: Vec<f64>,
    /// Variable lower bounds.
    pub lb: Vec<f64>,
    /// Variable upper bounds.
    pub ub: Vec<f64>,
    /// Minimization objective coefficients.
    pub obj: Vec<f64>,
    /// Constant added to the minimization objective.
    pub obj_offset: f64,
    /// `1.0` if the original model minimized, `-1.0` if it maximized.
    pub obj_sign: f64,
}

impl StandardLp {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lb.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.rhs.len()
    }

    /// Converts an internal minimization objective value back to the user's
    /// original direction.
    pub fn user_objective(&self, min_obj: f64) -> f64 {
        self.obj_sign * min_obj
    }

    /// `true` when `other` shares this LP's exact constraint structure —
    /// same dimensions, sparsity pattern, coefficient values, and row
    /// senses. This is the precondition for solving both as lanes of one
    /// [`crate::batch::BatchedModel`]; right-hand sides, bounds, and
    /// objectives may differ freely.
    pub fn same_structure(&self, other: &StandardLp) -> bool {
        self.a == other.a && self.senses == other.senses
    }

    /// FNV-1a digest of the constraint structure (dimensions, sparsity,
    /// coefficient bit patterns, senses). Equal digests are a fast
    /// *necessary* condition for [`StandardLp::same_structure`]; callers
    /// grouping lanes must confirm with the full comparison to rule out
    /// collisions.
    pub fn structure_digest(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(PRIME)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = mix(h, self.num_cons() as u64);
        h = mix(h, self.num_vars() as u64);
        for i in 0..self.num_cons() {
            let sense = match self.senses[i] {
                Sense::Le => 0u64,
                Sense::Ge => 1,
                Sense::Eq => 2,
            };
            h = mix(h, sense);
            for (j, v) in self.a.row(i) {
                h = mix(h, j as u64);
                h = mix(h, v.to_bits());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, "x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 2.0), Sense::Le, 14.0, "c1");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 1.0), Objective::Maximize);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_cons(), 1);
        let s = m.to_standard();
        assert_eq!(s.obj, vec![-3.0, -1.0]); // negated for maximization
        assert_eq!(s.rhs, vec![14.0]);
        assert_eq!(s.user_objective(-7.0), 7.0);
    }

    #[test]
    fn constant_folds_into_rhs() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let mut e = LinExpr::term(x, 1.0);
        e.add_constant(5.0);
        m.add_con(e, Sense::Le, 12.0, "c");
        let s = m.to_standard();
        assert_eq!(s.rhs, vec![7.0]);
    }

    #[test]
    fn duplicate_terms_merge_in_matrix() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        m.add_con(LinExpr::new().add(x, 1.0).add(x, 2.0), Sense::Eq, 9.0, "c");
        let s = m.to_standard();
        let row: Vec<_> = s.a.row(0).collect();
        assert_eq!(row, vec![(0, 3.0)]);
    }

    #[test]
    fn max_violation_detects_all_kinds() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, 2.0, "c");
        assert!((m.max_violation(&[0.5]) - 1.5).abs() < 1e-12);
        assert!((m.max_violation(&[3.0]) - 2.0).abs() < 1e-12); // ub violated worse
        let mut m2 = Model::new();
        let y = m2.add_var(0.0, 5.0, "y");
        m2.add_con(LinExpr::term(y, 1.0), Sense::Le, 4.0, "c");
        assert_eq!(m2.max_violation(&[2.0]), 0.0);
    }

    #[test]
    fn eval_expression() {
        let e = LinExpr { terms: vec![(VarId(0), 2.0), (VarId(2), -1.0)], constant: 4.0 };
        assert_eq!(e.eval(&[1.0, 9.0, 3.0]), 3.0);
    }

    #[test]
    fn integer_markers() {
        let mut m = Model::new();
        let b = m.add_binary("b");
        let x = m.add_nonneg("x");
        assert!(m.is_integer(b));
        assert!(!m.is_integer(x));
        assert_eq!(m.num_int_vars(), 1);
        assert_eq!(m.bounds(b), (0.0, 1.0));
    }
}
