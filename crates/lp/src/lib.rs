//! # arrow-lp — linear & mixed-integer programming toolkit
//!
//! The ARROW paper solves its traffic-engineering formulations with Gurobi.
//! This crate is the from-scratch substitute: a model builder plus three
//! solver backends, all in safe Rust with zero dependencies.
//!
//! * [`simplex`] — bounded-variable two-phase revised simplex. Exact; the
//!   workhorse for problems up to a few thousand rows.
//! * [`pdhg`] — PDLP-style restarted primal–dual hybrid gradient. Scales to
//!   very large LPs (ARROW Phase I with many LotteryTickets × scenarios);
//!   converges to a relative KKT tolerance.
//! * [`milp`] — LP-based branch & bound for the small integer formulations
//!   (Appendix A.5 ticket selection, exact RWA on toy instances).
//!
//! The usual entry point is [`solver::solve`], which auto-selects a backend:
//!
//! ```
//! use arrow_lp::model::{LinExpr, Model, Objective, Sense};
//!
//! let mut m = Model::new();
//! let x = m.add_var(0.0, 4.0, "x");
//! let y = m.add_nonneg("y");
//! m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0), Sense::Le, 18.0, "cap");
//! m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0), Objective::Maximize);
//! let sol = arrow_lp::solver::solve_default(&m);
//! assert!(sol.status.is_optimal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod milp;
pub mod model;
pub mod mps;
pub mod pdhg;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod solver;
pub mod sparse;
pub mod warm;

pub use batch::{BatchError, BatchedModel};
pub use model::{ConId, LinExpr, Model, Objective, Sense, VarId, INF};
pub use solution::{Solution, SolveStats, Status};
pub use solver::{solve, solve_batch, solve_default, solve_with, Backend, SolverConfig};
pub use warm::{BackendKind, Basis, ColStatus, PrimalDual, WarmEvent, WarmStart};
