//! Small-scale mixed-integer solver: LP-based branch & bound.
//!
//! ARROW needs integer solutions in two places, both small: the binary
//! LotteryTicket-selection formulation of Appendix A.5 (one binary per
//! ticket per scenario, used only to validate the LP two-phase design) and
//! exact RWA instances on toy topologies. This module is therefore a plain
//! best-first branch & bound over the [`crate::simplex`] relaxation — no
//! cuts, no presolve, no heuristics. Hard instances belong to a real MILP
//! solver and are out of scope (the paper itself shows the joint ILP is
//! intractable; see Table 8).

use crate::model::Model;
use crate::simplex::{self, SimplexConfig};
use crate::solution::{Solution, SolveStats, Status};

/// Tunable knobs for branch & bound.
#[derive(Debug, Clone)]
pub struct MilpConfig {
    /// Integrality tolerance: `x` counts as integral within this distance.
    pub int_tol: f64,
    /// Relative optimality gap at which the search stops.
    pub gap_tol: f64,
    /// Maximum branch-and-bound nodes explored.
    pub max_nodes: usize,
    /// Configuration for the LP relaxations.
    pub lp: SimplexConfig,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            int_tol: 1e-6,
            gap_tol: 1e-9,
            max_nodes: 100_000,
            lp: SimplexConfig::default(),
        }
    }
}

#[derive(Debug)]
struct Node {
    /// `(var index, lb, ub)` bound overrides along this branch.
    bounds: Vec<(usize, f64, f64)>,
    /// LP bound of the parent (minimization sense), for best-first order.
    bound: f64,
}

/// Solves a model containing integer variables by branch & bound.
///
/// Continuous models are passed straight to the simplex backend.
pub fn solve(model: &Model, cfg: &MilpConfig) -> Solution {
    if model.num_int_vars() == 0 {
        return simplex::solve(&model.to_standard(), &cfg.lp);
    }
    let int_vars: Vec<usize> =
        (0..model.num_vars()).filter(|&j| model.is_integer(crate::model::VarId(j))).collect();

    // Best-first queue ordered by relaxation bound (minimization).
    let mut queue: Vec<Node> = vec![Node { bounds: Vec::new(), bound: f64::NEG_INFINITY }];
    let mut incumbent: Option<Solution> = None;
    let mut incumbent_min_obj = f64::INFINITY;
    let mut nodes = 0usize;
    let mut iterations = 0usize;
    let obj_sign = model.to_standard().obj_sign;

    while let Some(pos) = queue
        .iter()
        .enumerate()
        // total_cmp: a NaN node bound (pathological user objective) must
        // not panic the search; NaN orders after every real bound.
        .min_by(|a, b| a.1.bound.total_cmp(&b.1.bound))
        .map(|(i, _)| i)
    {
        let node = queue.swap_remove(pos);
        if nodes >= cfg.max_nodes {
            break;
        }
        nodes += 1;
        // Prune by bound.
        if node.bound >= incumbent_min_obj - cfg.gap_tol * (1.0 + incumbent_min_obj.abs()) {
            continue;
        }
        // Solve the relaxation with this node's bound overrides.
        let mut relaxed = model.clone();
        let mut inconsistent = false;
        for &(j, lb, ub) in &node.bounds {
            if lb > ub {
                inconsistent = true;
                break;
            }
            relaxed.set_bounds(crate::model::VarId(j), lb, ub);
        }
        if inconsistent {
            continue;
        }
        let sol = simplex::solve(&relaxed.to_standard(), &cfg.lp);
        iterations += sol.stats.iterations;
        match sol.status {
            Status::Optimal => {}
            Status::Infeasible => continue,
            Status::Unbounded => {
                // An unbounded relaxation at the root means the MILP itself
                // is unbounded (or ill-posed); deeper nodes only restrict.
                let mut out =
                    Solution::failed(Status::Unbounded, model.num_vars(), model.num_cons());
                out.stats.nodes = nodes;
                return out;
            }
            other => {
                let mut out = Solution::failed(other, model.num_vars(), model.num_cons());
                out.stats.nodes = nodes;
                return out;
            }
        }
        let min_obj = obj_sign * sol.objective;
        if min_obj >= incumbent_min_obj - cfg.gap_tol * (1.0 + incumbent_min_obj.abs()) {
            continue;
        }
        // Find the most fractional integer variable.
        let mut branch: Option<(usize, f64)> = None;
        let mut best_frac = cfg.int_tol;
        for &j in &int_vars {
            let v = sol.x[j];
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((j, v));
            }
        }
        match branch {
            None => {
                // Integral: new incumbent (snap values exactly).
                let mut snapped = sol.clone();
                for &j in &int_vars {
                    snapped.x[j] = snapped.x[j].round();
                }
                incumbent_min_obj = min_obj;
                incumbent = Some(snapped);
            }
            Some((j, v)) => {
                let (cur_lb, cur_ub) = {
                    // Respect overrides already on this node.
                    let mut lb = model.bounds(crate::model::VarId(j)).0;
                    let mut ub = model.bounds(crate::model::VarId(j)).1;
                    for &(jj, l, u) in &node.bounds {
                        if jj == j {
                            lb = l;
                            ub = u;
                        }
                    }
                    (lb, ub)
                };
                let mut down = node.bounds.clone();
                down.push((j, cur_lb, v.floor()));
                let mut up = node.bounds.clone();
                up.push((j, v.ceil(), cur_ub));
                queue.push(Node { bounds: down, bound: min_obj });
                queue.push(Node { bounds: up, bound: min_obj });
            }
        }
    }

    match incumbent {
        Some(mut sol) => {
            sol.stats = SolveStats { iterations, nodes, ..sol.stats };
            sol
        }
        None => {
            let status =
                if nodes >= cfg.max_nodes { Status::IterationLimit } else { Status::Infeasible };
            let mut out = Solution::failed(status, model.num_vars(), model.num_cons());
            out.stats.nodes = nodes;
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense};

    #[test]
    fn knapsack_binary() {
        // max 10a + 6b + 4c s.t. a + b + c <= 2 (binaries) => 16
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_con(LinExpr::sum_vars([a, b, c]), Sense::Le, 2.0, "pick2");
        m.set_objective(LinExpr::new().add(a, 10.0).add(b, 6.0).add(c, 4.0), Objective::Maximize);
        let s = solve(&m, &MilpConfig::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 16.0).abs() < 1e-6);
        assert_eq!(s.x[0].round() as i32, 1);
        assert_eq!(s.x[1].round() as i32, 1);
        assert_eq!(s.x[2].round() as i32, 0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers => 2 (not 2.5)
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 10.0, "x");
        let y = m.add_int_var(0.0, 10.0, "y");
        m.add_con(LinExpr::new().add(x, 2.0).add(y, 2.0), Sense::Le, 5.0, "cap");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        let s = solve(&m, &MilpConfig::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 5b + x s.t. x <= 3.7, x - 10b <= 0 (x usable only if b=1)
        let mut m = Model::new();
        let b = m.add_binary("b");
        let x = m.add_nonneg("x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 3.7, "xcap");
        m.add_con(LinExpr::new().add(x, 1.0).add(b, -10.0), Sense::Le, 0.0, "link");
        m.set_objective(LinExpr::new().add(b, 5.0).add(x, 1.0), Objective::Maximize);
        let s = solve(&m, &MilpConfig::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 8.7).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_model() {
        // 2x = 3 with x integer is infeasible.
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 10.0, "x");
        m.add_con(LinExpr::term(x, 2.0), Sense::Eq, 3.0, "odd");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        let s = solve(&m, &MilpConfig::default());
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn continuous_model_delegates_to_simplex() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 2.5, "x");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 100.0, "loose");
        let s = solve(&m, &MilpConfig::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.5).abs() < 1e-9);
        assert_eq!(s.stats.nodes, 0);
    }

    #[test]
    fn exactly_one_selection() {
        // The Appendix A.5 pattern: pick exactly one ticket, maximize value.
        let mut m = Model::new();
        let t: Vec<_> = (0..5).map(|i| m.add_binary(format!("t{i}"))).collect();
        m.add_con(LinExpr::sum_vars(t.iter().copied()), Sense::Eq, 1.0, "one");
        let values = [3.0, 7.0, 2.0, 7.0, 1.0];
        m.set_objective(
            LinExpr::sum(t.iter().copied().zip(values.iter().copied())),
            Objective::Maximize,
        );
        let s = solve(&m, &MilpConfig::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-6);
        let chosen: f64 = s.x.iter().sum();
        assert!((chosen - 1.0).abs() < 1e-6);
    }
}
