//! First-order LP solver: primal–dual hybrid gradient (PDHG) in the style of
//! PDLP, with Ruiz equilibration, iterate averaging, adaptive restarts, and
//! primal-weight balancing.
//!
//! The simplex backend ([`crate::simplex`]) keeps a dense `m × m` basis
//! inverse, which stops scaling around a few thousand rows. ARROW's Phase-I
//! formulation multiplies scenarios × LotteryTickets × links, easily reaching
//! tens of thousands of rows, so large instances are solved here: every
//! iteration is two sparse matrix–vector products, nothing else.
//!
//! Implemented: optimality within a relative KKT tolerance, dual values.
//! Deliberately omitted: infeasibility/unboundedness *certificates* — the
//! iteration simply fails to converge on such inputs and reports
//! [`Status::IterationLimit`]. ARROW's formulations are feasible and bounded
//! by construction (slack variables / finite demands); use the simplex
//! backend when certified infeasibility detection matters.

use crate::batch::BatchedModel;
use crate::model::{Sense, StandardLp};
use crate::solution::{Solution, SolveStats, Status};
use crate::sparse::{CscMatrix, CsrMatrix};
use crate::warm::{BackendKind, PrimalDual, WarmEvent};

/// Tunable knobs for the PDHG solver.
#[derive(Debug, Clone)]
pub struct PdhgConfig {
    /// Relative KKT tolerance (primal residual, dual residual, gap).
    pub tol: f64,
    /// Hard iteration limit.
    pub max_iters: usize,
    /// Check convergence/restarts every this many iterations.
    pub check_every: usize,
    /// Ruiz equilibration sweeps applied before solving.
    pub ruiz_iters: usize,
    /// Wall-clock limit in seconds (`f64::INFINITY` to disable).
    pub time_limit: f64,
}

impl Default for PdhgConfig {
    fn default() -> Self {
        PdhgConfig {
            tol: 1e-6,
            max_iters: 400_000,
            check_every: 64,
            ruiz_iters: 12,
            time_limit: f64::INFINITY,
        }
    }
}

/// The scaled problem `min c'x  s.t.  K x (>=|=) q,  l <= x <= u` plus the
/// diagonal scalings needed to map a solution back to user space.
struct Scaled {
    k: CsrMatrix,
    q: Vec<f64>,
    is_eq: Vec<bool>,
    c: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// x_user = col_scale ⊙ x_scaled
    col_scale: Vec<f64>,
    /// y_user = row_scale ⊙ y_scaled
    row_scale: Vec<f64>,
    /// Sign applied per row to turn `<=` into `>=` (for mapping duals back).
    row_sign: Vec<f64>,
}

/// The lane-independent part of the scaling: the `>=`-oriented,
/// Ruiz-equilibrated matrix plus the diagonal scalings. Computed once per
/// batch and shared across every lane ([`solve_batch`]); the sequential
/// path builds one and applies it to its single lane.
struct SharedScaling {
    k: CsrMatrix,
    is_eq: Vec<bool>,
    col_scale: Vec<f64>,
    row_scale: Vec<f64>,
    row_sign: Vec<f64>,
}

fn scale_shared(a: &CsrMatrix, senses: &[Sense], ruiz_iters: usize) -> SharedScaling {
    let m = a.rows();
    let n = a.cols();
    // Orient all inequality rows as `>=`.
    let mut triplets = Vec::with_capacity(a.nnz());
    let mut row_sign = vec![1.0; m];
    let mut is_eq = vec![false; m];
    for i in 0..m {
        let sign = match senses[i] {
            Sense::Le => -1.0,
            Sense::Ge | Sense::Eq => 1.0,
        };
        row_sign[i] = sign;
        is_eq[i] = senses[i] == Sense::Eq;
        for (j, v) in a.row(i) {
            triplets.push((i, j, sign * v));
        }
    }
    let mut k = CsrMatrix::from_triplets(m, n, &triplets);
    // Ruiz equilibration: repeatedly divide rows/cols by the square root of
    // their infinity norm until the matrix is roughly balanced.
    let mut row_scale = vec![1.0; m];
    let mut col_scale = vec![1.0; n];
    for _ in 0..ruiz_iters {
        let rn = k.row_inf_norms();
        let cn = k.col_inf_norms();
        let rs: Vec<f64> = rn.iter().map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 1.0 }).collect();
        let cs: Vec<f64> = cn.iter().map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 1.0 }).collect();
        k.scale(&rs, &cs);
        for i in 0..m {
            row_scale[i] *= rs[i];
        }
        for j in 0..n {
            col_scale[j] *= cs[j];
        }
    }
    SharedScaling { k, is_eq, col_scale, row_scale, row_sign }
}

/// Applies a [`SharedScaling`] to one lane's data, returning scaled
/// `(q, c, lb, ub)`.
///
/// The arithmetic — `(sign · rhs) · row_scale` as two separate products,
/// `obj · col_scale`, bounds divided by `col_scale` — reproduces the
/// historical single-LP path operation for operation, which is what makes
/// batched lanes bitwise equal to sequential solves.
fn scale_lane(
    sh: &SharedScaling,
    rhs: &[f64],
    obj: &[f64],
    lb: &[f64],
    ub: &[f64],
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let m = rhs.len();
    let n = obj.len();
    // Substitute x_user = D_c x, premultiply rows by D_r:
    //   objective  (D_c c)' x
    //   rhs        D_r q
    //   bounds     l / d_c <= x <= u / d_c
    let mut q: Vec<f64> = (0..m).map(|i| sh.row_sign[i] * rhs[i]).collect();
    let c: Vec<f64> = (0..n).map(|j| obj[j] * sh.col_scale[j]).collect();
    let lb: Vec<f64> = (0..n).map(|j| lb[j] / sh.col_scale[j]).collect();
    let ub: Vec<f64> = (0..n).map(|j| ub[j] / sh.col_scale[j]).collect();
    for (qi, scale) in q.iter_mut().zip(&sh.row_scale) {
        *qi *= scale;
    }
    (q, c, lb, ub)
}

fn build_scaled(lp: &StandardLp, ruiz_iters: usize) -> Scaled {
    let sh = scale_shared(&lp.a, &lp.senses, ruiz_iters);
    let (q, c, lb, ub) = scale_lane(&sh, &lp.rhs, &lp.obj, &lp.lb, &lp.ub);
    Scaled {
        k: sh.k,
        q,
        is_eq: sh.is_eq,
        c,
        lb,
        ub,
        col_scale: sh.col_scale,
        row_scale: sh.row_scale,
        row_sign: sh.row_sign,
    }
}

/// KKT residuals of a candidate `(x, y)` pair on the scaled problem.
struct Residuals {
    rel_primal: f64,
    rel_dual: f64,
    rel_gap: f64,
}

impl Residuals {
    fn worst(&self) -> f64 {
        self.rel_primal.max(self.rel_dual).max(self.rel_gap)
    }
}

fn kkt_residuals(s: &Scaled, x: &[f64], y: &[f64], kx: &mut [f64], kty: &mut [f64]) -> Residuals {
    let m = s.q.len();
    s.k.mul_vec(x, kx);
    s.k.mul_transpose_vec(y, kty);
    let qn = s.q.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let cn = s.c.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    // Primal residual: violations of Kx >= q (eq rows: |Kx - q|).
    let mut pr = 0.0f64;
    for (i, &kxi) in kx.iter().enumerate().take(m) {
        let r = s.q[i] - kxi;
        let v = if s.is_eq[i] { r.abs() } else { r.max(0.0) };
        pr = pr.max(v);
    }
    // Dual residual on reduced costs r = c - K'y given box constraints.
    let mut dr = 0.0f64;
    let mut dual_obj: f64 = s.q.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    for (j, &ktyj) in kty.iter().enumerate().take(s.c.len()) {
        let r = s.c[j] - ktyj;
        if r > 0.0 {
            if s.lb[j].is_finite() {
                dual_obj += s.lb[j] * r;
            } else {
                dr = dr.max(r);
            }
        } else if r < 0.0 {
            if s.ub[j].is_finite() {
                dual_obj += s.ub[j] * r;
            } else {
                dr = dr.max(-r);
            }
        }
    }
    let primal_obj: f64 = s.c.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
    let gap = (primal_obj - dual_obj).abs() / (1.0 + primal_obj.abs() + dual_obj.abs());
    Residuals { rel_primal: pr / (1.0 + qn), rel_dual: dr / (1.0 + cn), rel_gap: gap }
}

/// Solves a standard-form LP with restarted, averaged PDHG.
pub fn solve(lp: &StandardLp, cfg: &PdhgConfig) -> Solution {
    solve_warm(lp, cfg, None)
}

/// [`solve`] with an optional starting primal–dual point in user space
/// (as returned in [`Solution::x`]/[`Solution::duals`] by any backend).
///
/// The point is mapped through this solve's equilibration, clamped to the
/// scaled bounds (primal) and sign constraints (dual), and iteration
/// resumes from it; near-optimal starts converge in a fraction of the cold
/// iteration count. A point of the wrong dimension is recorded as a
/// [`WarmEvent::Miss`] and the solve starts cold.
pub fn solve_warm(lp: &StandardLp, cfg: &PdhgConfig, start_point: Option<&PrimalDual>) -> Solution {
    // arrow-lint: allow(wall-clock-in-core) — solve wall time reported in SolveStats; iteration counts, not time, bound the solve
    let start = std::time::Instant::now();
    let n = lp.num_vars();
    let m = lp.num_cons();
    if m == 0 {
        // Delegate the constraint-free case to simplex's closed form.
        return crate::simplex::solve(lp, &crate::simplex::SimplexConfig::default());
    }
    let s = build_scaled(lp, cfg.ruiz_iters);
    let knorm = s.k.spectral_norm_estimate(60).max(1e-12);

    // Iterates and running averages (restart-to-average scheme).
    let mut x: Vec<f64> = (0..n).map(|j| s.lb[j].max(0.0).min(s.ub[j])).collect();
    for xj in x.iter_mut() {
        if !xj.is_finite() {
            *xj = 0.0;
        }
    }
    let mut y = vec![0.0; m];
    let mut warm = WarmEvent::Cold;
    if let Some(p) = start_point {
        if p.x.len() == n && (p.y.is_empty() || p.y.len() == m) {
            warm = WarmEvent::Hit;
            // User space -> scaled space: x = x_user / D_c, clamped to the
            // scaled box (data may have changed since the point was taken).
            for (j, xj) in x.iter_mut().enumerate() {
                let v = p.x[j] / s.col_scale[j];
                if v.is_finite() {
                    *xj = v.clamp(s.lb[j], s.ub[j]);
                }
            }
            // Invert the dual mapping used on the way out
            // (`duals = obj_sign * row_sign * y * row_scale`); inequality
            // rows keep their `y >= 0` sign constraint.
            for i in 0..p.y.len() {
                let v = lp.obj_sign * s.row_sign[i] * p.y[i] / s.row_scale[i];
                if v.is_finite() {
                    y[i] = if s.is_eq[i] { v } else { v.max(0.0) };
                }
            }
        } else {
            warm = WarmEvent::Miss;
        }
    }
    let mut x_avg = x.clone();
    let mut y_avg = y.clone();
    let mut avg_count = 0usize;
    let mut x_at_restart = x.clone();
    let mut y_at_restart = y.clone();

    let mut omega: f64 = {
        // Initial primal weight balances objective and rhs magnitudes.
        let cn = s.c.iter().map(|v| v * v).sum::<f64>().sqrt();
        let qn = s.q.iter().map(|v| v * v).sum::<f64>().sqrt();
        if cn > 1e-12 && qn > 1e-12 {
            (cn / qn).clamp(1e-4, 1e4)
        } else {
            1.0
        }
    };
    let step = 0.9 / knorm;

    let mut kx = vec![0.0; m];
    let mut kty = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut extrap = vec![0.0; n];
    let mut best_res_at_restart = f64::INFINITY;
    let mut iterations = 0usize;
    let mut restarts = 0usize;
    let mut status = Status::IterationLimit;

    while iterations < cfg.max_iters {
        // One PDHG step.
        let tau = step / omega;
        let sigma = step * omega;
        s.k.mul_transpose_vec(&y, &mut kty);
        for j in 0..n {
            let v = x[j] - tau * (s.c[j] - kty[j]);
            x_new[j] = v.clamp(s.lb[j], s.ub[j]);
        }
        for j in 0..n {
            extrap[j] = 2.0 * x_new[j] - x[j];
        }
        s.k.mul_vec(&extrap, &mut kx);
        for i in 0..m {
            let v = y[i] + sigma * (s.q[i] - kx[i]);
            y[i] = if s.is_eq[i] { v } else { v.max(0.0) };
        }
        std::mem::swap(&mut x, &mut x_new);
        iterations += 1;

        // Accumulate running averages.
        avg_count += 1;
        let w = 1.0 / avg_count as f64;
        for j in 0..n {
            x_avg[j] += (x[j] - x_avg[j]) * w;
        }
        for i in 0..m {
            y_avg[i] += (y[i] - y_avg[i]) * w;
        }

        if !iterations.is_multiple_of(cfg.check_every) {
            continue;
        }
        if start.elapsed().as_secs_f64() > cfg.time_limit {
            status = Status::TimeLimit;
            break;
        }
        // Convergence and restart logic: evaluate both candidates.
        let res_cur = kkt_residuals(&s, &x, &y, &mut kx, &mut kty);
        let res_avg = kkt_residuals(&s, &x_avg, &y_avg, &mut kx, &mut kty);
        let (use_avg, res) =
            if res_avg.worst() < res_cur.worst() { (true, res_avg) } else { (false, res_cur) };
        if res.worst() < cfg.tol {
            if use_avg {
                x.copy_from_slice(&x_avg);
                y.copy_from_slice(&y_avg);
            }
            status = Status::Optimal;
            break;
        }
        // Restart when the best candidate has substantially improved on the
        // residual recorded at the previous restart, or unconditionally
        // after a long stretch (PDLP's "artificial restart" — plain PDHG
        // stalls without it on degenerate LPs).
        let long_stretch = avg_count >= 6000;
        if res.worst() < 0.2 * best_res_at_restart || long_stretch {
            restarts += 1;
            if use_avg {
                x.copy_from_slice(&x_avg);
                y.copy_from_slice(&y_avg);
            }
            // Primal-weight update from movement since last restart.
            let dx: f64 = x
                .iter()
                .zip(x_at_restart.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let dy: f64 = y
                .iter()
                .zip(y_at_restart.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if dx > 1e-10 && dy > 1e-10 {
                // Geometric mean of the old weight and the observed
                // dual/primal movement ratio (PDLP's smoothed update).
                omega = ((dy / dx) * omega).sqrt().clamp(1e-4, 1e4);
            }
            x_at_restart.copy_from_slice(&x);
            y_at_restart.copy_from_slice(&y);
            x_avg.copy_from_slice(&x);
            y_avg.copy_from_slice(&y);
            avg_count = 0;
            best_res_at_restart = best_res_at_restart.min(res.worst());
        }
    }

    // Map back to user space.
    let x_user: Vec<f64> = (0..n).map(|j| x[j] * s.col_scale[j]).collect();
    let min_obj: f64 = lp.obj_offset + x_user.iter().zip(&lp.obj).map(|(a, b)| a * b).sum::<f64>();
    let duals: Vec<f64> =
        (0..m).map(|i| lp.obj_sign * s.row_sign[i] * y[i] * s.row_scale[i]).collect();
    Solution {
        status,
        objective: lp.user_objective(min_obj),
        x: x_user,
        duals,
        basis: None,
        stats: SolveStats {
            iterations,
            solve_seconds: start.elapsed().as_secs_f64(),
            rows: m,
            cols: n,
            nnz: lp.a.nnz(),
            backend: BackendKind::Pdhg,
            warm,
            restarts,
            ..SolveStats::default()
        },
    }
}

// ---------------------------------------------------------------------------
// Batched multi-RHS kernel
// ---------------------------------------------------------------------------

/// Lane-block width for the register-blocked matvec kernels: one block is
/// two AVX2 vectors of accumulators, small enough that LLVM keeps the
/// whole block in registers across a row's nonzeros.
const LANE_CHUNK: usize = 8;

/// Computes `out[i·L+l] = Σ_j K[i,j] · x[j·L+l]` for every active lane.
/// Per lane, contributions accumulate in the same `(row, nonzero)` order
/// as [`CsrMatrix::mul_vec`], so the sums are bitwise identical.
///
/// The full-width path is register-blocked: [`LANE_CHUNK`] accumulators
/// live in registers across all of a row's nonzeros, so each nonzero costs
/// one panel load and a mul-add — no read-modify-write of `out` per
/// nonzero. The output is stored once per `(row, block)`.
///
/// `#[inline(never)]` on this and the other panel kernels is load-bearing:
/// the caller's iterate buffers are pointer-swapped every iteration, which
/// merges their provenance and makes LLVM give up on vectorizing inlined
/// copies. A function boundary restores the slices' noalias guarantees.
#[inline(never)]
fn batch_mul(k: &CsrMatrix, x: &[f64], out: &mut [f64], nl: usize, active: &[usize]) {
    let full = active.len() == nl;
    for i in 0..k.rows() {
        let base = i * nl;
        if full {
            let mut c0 = 0;
            while c0 + LANE_CHUNK <= nl {
                let mut acc = [0.0f64; LANE_CHUNK];
                for (j, v) in k.row(i) {
                    let xb = j * nl + c0;
                    for (a, xv) in acc.iter_mut().zip(&x[xb..xb + LANE_CHUNK]) {
                        *a += v * *xv;
                    }
                }
                out[base + c0..base + c0 + LANE_CHUNK].copy_from_slice(&acc);
                c0 += LANE_CHUNK;
            }
            if c0 < nl {
                out[base + c0..base + nl].fill(0.0);
                for (j, v) in k.row(i) {
                    let xb = j * nl;
                    for l in c0..nl {
                        out[base + l] += v * x[xb + l];
                    }
                }
            }
        } else {
            for &l in active {
                out[base + l] = 0.0;
            }
            for (j, v) in k.row(i) {
                let xb = j * nl;
                for &l in active {
                    out[base + l] += v * x[xb + l];
                }
            }
        }
    }
}

/// Computes `out[j·L+l] = Σ_i K[i,j] · y[i·L+l]` for every active lane,
/// from the *column-major* copy of `K` so the transpose product becomes a
/// register-blocked row sweep like [`batch_mul`].
///
/// Bitwise contract, in two steps. First, [`CscMatrix`] stores each
/// column's entries in ascending row order ([`CsrMatrix::to_csc`] is a
/// stable counting sort), which is exactly the order
/// [`CsrMatrix::mul_transpose_vec`] visits them — so per `(j, lane)` the
/// accumulation order matches the sequential kernel. Second, the
/// sequential kernel skips zero `y` entries while this one adds them
/// unconditionally, which is bitwise identical: the accumulator starts at
/// `+0.0` and can never become `-0.0` (opposite-signed zeros and exact
/// cancellations both sum to `+0.0` under round-to-nearest), so adding a
/// `v · (±0.0)` contribution never changes its bits.
#[inline(never)]
fn batch_mul_transpose(kc: &CscMatrix, y: &[f64], out: &mut [f64], nl: usize, active: &[usize]) {
    let full = active.len() == nl;
    for j in 0..kc.cols() {
        let base = j * nl;
        if full {
            let mut c0 = 0;
            while c0 + LANE_CHUNK <= nl {
                let mut acc = [0.0f64; LANE_CHUNK];
                for (i, v) in kc.col(j) {
                    let yb = i * nl + c0;
                    for (a, yv) in acc.iter_mut().zip(&y[yb..yb + LANE_CHUNK]) {
                        *a += v * *yv;
                    }
                }
                out[base + c0..base + c0 + LANE_CHUNK].copy_from_slice(&acc);
                c0 += LANE_CHUNK;
            }
            if c0 < nl {
                out[base + c0..base + nl].fill(0.0);
                for (i, v) in kc.col(j) {
                    let yb = i * nl;
                    for l in c0..nl {
                        out[base + l] += v * y[yb + l];
                    }
                }
            }
        } else {
            for &l in active {
                out[base + l] = 0.0;
            }
            for (i, v) in kc.col(j) {
                let yb = i * nl;
                for &l in active {
                    out[base + l] += v * y[yb + l];
                }
            }
        }
    }
}

/// `f64::clamp` minus its `min <= max` panic check (the scaled bounds
/// always satisfy it); the potential panic blocks vectorization. For
/// `lb <= ub` it returns identical bits, NaN propagation included.
#[inline(always)]
fn clamp2(v: f64, lb: f64, ub: f64) -> f64 {
    let w = if v < lb { lb } else { v };
    if w > ub {
        ub
    } else {
        w
    }
}

/// One fixed-width lane block of [`fused_kty_x_step`]: accumulates
/// `(Kᵀy)ⱼ` for `N` consecutive lanes in registers (the width must be a
/// compile-time constant or the accumulators spill to the stack), then
/// applies the primal update to those lanes.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn kty_x_block<const N: usize>(
    kc: &CscMatrix,
    y: &[f64],
    x: &[f64],
    c: &[f64],
    lb: &[f64],
    ub: &[f64],
    x_new: &mut [f64],
    extrap: &mut [f64],
    x_avg: &mut [f64],
    tau: &[f64],
    w_avg: &[f64],
    nl: usize,
    j: usize,
    c0: usize,
) {
    let mut acc = [0.0f64; N];
    for (i, v) in kc.col(j) {
        let yb = i * nl + c0;
        for (a, yv) in acc.iter_mut().zip(&y[yb..yb + N]) {
            *a += v * *yv;
        }
    }
    let b0 = j * nl + c0;
    let xs = &x[b0..b0 + N];
    let cs = &c[b0..b0 + N];
    let lbs = &lb[b0..b0 + N];
    let ubs = &ub[b0..b0 + N];
    let xns = &mut x_new[b0..b0 + N];
    let exs = &mut extrap[b0..b0 + N];
    let xas = &mut x_avg[b0..b0 + N];
    let taus = &tau[c0..c0 + N];
    let ws = &w_avg[c0..c0 + N];
    for t in 0..N {
        let v = xs[t] - taus[t] * (cs[t] - acc[t]);
        let xn = clamp2(v, lbs[t], ubs[t]);
        xns[t] = xn;
        exs[t] = 2.0 * xn - xs[t];
        xas[t] += (xn - xas[t]) * ws[t];
    }
}

/// The primal half-step fused with the `Kᵀy` product: for each column `j`,
/// `(Kᵀy)ⱼ` is accumulated in registers (ascending row order — see
/// [`batch_mul_transpose`] for why that matches the sequential kernel bit
/// for bit) and consumed immediately by the gradient step, box clamp,
/// extrapolation, and running-average update for that column. Fusing skips
/// a full write+read of the `Kᵀy` panel per iteration; the arithmetic and
/// its order per lane are unchanged. Kept out of line for the same noalias
/// reason as [`batch_mul`].
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn fused_kty_x_step(
    kc: &CscMatrix,
    y: &[f64],
    x: &[f64],
    c: &[f64],
    lb: &[f64],
    ub: &[f64],
    x_new: &mut [f64],
    extrap: &mut [f64],
    x_avg: &mut [f64],
    tau: &[f64],
    w_avg: &[f64],
    nl: usize,
    active: &[usize],
) {
    let full = active.len() == nl;
    for j in 0..kc.cols() {
        let base = j * nl;
        if full {
            let mut c0 = 0;
            while c0 + LANE_CHUNK <= nl {
                #[rustfmt::skip]
                kty_x_block::<LANE_CHUNK>(
                    kc, y, x, c, lb, ub, x_new, extrap, x_avg, tau, w_avg, nl, j, c0,
                );
                c0 += LANE_CHUNK;
            }
            if c0 + 4 <= nl {
                kty_x_block::<4>(kc, y, x, c, lb, ub, x_new, extrap, x_avg, tau, w_avg, nl, j, c0);
                c0 += 4;
            }
            for l in c0..nl {
                let mut a = 0.0f64;
                for (i, v) in kc.col(j) {
                    a += v * y[i * nl + l];
                }
                let v = x[base + l] - tau[l] * (c[base + l] - a);
                let xn = clamp2(v, lb[base + l], ub[base + l]);
                x_new[base + l] = xn;
                extrap[base + l] = 2.0 * xn - x[base + l];
                x_avg[base + l] += (xn - x_avg[base + l]) * w_avg[l];
            }
        } else {
            for &l in active {
                let mut a = 0.0f64;
                for (i, v) in kc.col(j) {
                    a += v * y[i * nl + l];
                }
                let v = x[base + l] - tau[l] * (c[base + l] - a);
                let xn = clamp2(v, lb[base + l], ub[base + l]);
                x_new[base + l] = xn;
                extrap[base + l] = 2.0 * xn - x[base + l];
                x_avg[base + l] += (xn - x_avg[base + l]) * w_avg[l];
            }
        }
    }
}

/// One fixed-width lane block of [`fused_kx_y_step`]: accumulates `(Kx̄)ᵢ`
/// for `N` consecutive lanes in registers, then applies the dual update to
/// those lanes.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn kx_y_block<const N: usize>(
    k: &CsrMatrix,
    extrap: &[f64],
    y: &mut [f64],
    q: &[f64],
    y_avg: &mut [f64],
    sigma: &[f64],
    w_avg: &[f64],
    eq: bool,
    nl: usize,
    i: usize,
    c0: usize,
) {
    let mut acc = [0.0f64; N];
    for (j, v) in k.row(i) {
        let xb = j * nl + c0;
        for (a, xv) in acc.iter_mut().zip(&extrap[xb..xb + N]) {
            *a += v * *xv;
        }
    }
    let b0 = i * nl + c0;
    let ys = &mut y[b0..b0 + N];
    let qs = &q[b0..b0 + N];
    let yas = &mut y_avg[b0..b0 + N];
    let sigmas = &sigma[c0..c0 + N];
    let ws = &w_avg[c0..c0 + N];
    for t in 0..N {
        let v = ys[t] + sigmas[t] * (qs[t] - acc[t]);
        let yn = if eq { v } else { v.max(0.0) };
        ys[t] = yn;
        yas[t] += (yn - yas[t]) * ws[t];
    }
}

/// The dual half-step fused with the `K·x̄` product: for each row `i`,
/// `(K·x̄)ᵢ` is accumulated in registers in the row's nonzero order (the
/// same order as [`CsrMatrix::mul_vec`]) and consumed immediately by the
/// gradient step, the nonnegativity projection for inequality rows, and
/// the running-average update. Skips a full write+read of the `Kx` panel
/// per iteration; arithmetic and per-lane order are unchanged. Out of line
/// for the same noalias reason as [`batch_mul`].
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn fused_kx_y_step(
    k: &CsrMatrix,
    extrap: &[f64],
    y: &mut [f64],
    q: &[f64],
    y_avg: &mut [f64],
    sigma: &[f64],
    w_avg: &[f64],
    is_eq: &[bool],
    nl: usize,
    active: &[usize],
) {
    let full = active.len() == nl;
    for (i, &eq) in is_eq.iter().enumerate() {
        let base = i * nl;
        if full {
            let mut c0 = 0;
            while c0 + LANE_CHUNK <= nl {
                kx_y_block::<LANE_CHUNK>(k, extrap, y, q, y_avg, sigma, w_avg, eq, nl, i, c0);
                c0 += LANE_CHUNK;
            }
            if c0 + 4 <= nl {
                kx_y_block::<4>(k, extrap, y, q, y_avg, sigma, w_avg, eq, nl, i, c0);
                c0 += 4;
            }
            for l in c0..nl {
                let mut a = 0.0f64;
                for (j, v) in k.row(i) {
                    a += v * extrap[j * nl + l];
                }
                let v = y[base + l] + sigma[l] * (q[base + l] - a);
                let yn = if eq { v } else { v.max(0.0) };
                y[base + l] = yn;
                y_avg[base + l] += (yn - y_avg[base + l]) * w_avg[l];
            }
        } else {
            for &l in active {
                let mut a = 0.0f64;
                for (j, v) in k.row(i) {
                    a += v * extrap[j * nl + l];
                }
                let v = y[base + l] + sigma[l] * (q[base + l] - a);
                let yn = if eq { v } else { v.max(0.0) };
                y[base + l] = yn;
                y_avg[base + l] += (yn - y_avg[base + l]) * w_avg[l];
            }
        }
    }
}

/// Scaled per-lane data panels (lane-innermost, stride = lane count) plus
/// the shared scaling, for the batched kernel.
struct Panel<'a> {
    sh: &'a SharedScaling,
    nl: usize,
    q: Vec<f64>,
    c: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Per-lane ‖q‖∞ / ‖c‖∞ (constant across checks; cached).
    qn: Vec<f64>,
    cn: Vec<f64>,
}

/// Terminal per-lane counters handed to [`Panel::finalize`].
struct LaneOutcome {
    status: Status,
    iterations: usize,
    restarts: usize,
}

impl Panel<'_> {
    /// KKT residuals of lane `l`'s candidate `(x, y)`; float-op order
    /// matches [`kkt_residuals`] exactly (given precomputed `Kx`, `Kᵀy`).
    fn residuals(&self, l: usize, x: &[f64], y: &[f64], kx: &[f64], kty: &[f64]) -> Residuals {
        let nl = self.nl;
        let m = self.sh.k.rows();
        let n = self.sh.k.cols();
        let mut pr = 0.0f64;
        for i in 0..m {
            let r = self.q[i * nl + l] - kx[i * nl + l];
            let v = if self.sh.is_eq[i] { r.abs() } else { r.max(0.0) };
            pr = pr.max(v);
        }
        let mut dr = 0.0f64;
        let mut dual_obj = 0.0f64;
        for i in 0..m {
            dual_obj += self.q[i * nl + l] * y[i * nl + l];
        }
        for j in 0..n {
            let r = self.c[j * nl + l] - kty[j * nl + l];
            if r > 0.0 {
                if self.lb[j * nl + l].is_finite() {
                    dual_obj += self.lb[j * nl + l] * r;
                } else {
                    dr = dr.max(r);
                }
            } else if r < 0.0 {
                if self.ub[j * nl + l].is_finite() {
                    dual_obj += self.ub[j * nl + l] * r;
                } else {
                    dr = dr.max(-r);
                }
            }
        }
        let mut primal_obj = 0.0f64;
        for j in 0..n {
            primal_obj += self.c[j * nl + l] * x[j * nl + l];
        }
        let gap = (primal_obj - dual_obj).abs() / (1.0 + primal_obj.abs() + dual_obj.abs());
        Residuals {
            rel_primal: pr / (1.0 + self.qn[l]),
            rel_dual: dr / (1.0 + self.cn[l]),
            rel_gap: gap,
        }
    }

    /// Maps lane `l`'s scaled iterate back to user space, mirroring the tail
    /// of [`solve_warm`] operation for operation.
    fn finalize(
        &self,
        batch: &BatchedModel,
        x: &[f64],
        y: &[f64],
        l: usize,
        outcome: LaneOutcome,
    ) -> Solution {
        let nl = self.nl;
        let m = self.sh.k.rows();
        let n = self.sh.k.cols();
        let lane = batch.lane(l);
        let x_user: Vec<f64> = (0..n).map(|j| x[j * nl + l] * self.sh.col_scale[j]).collect();
        let min_obj: f64 =
            lane.obj_offset + x_user.iter().zip(lane.obj).map(|(a, b)| a * b).sum::<f64>();
        let duals: Vec<f64> = (0..m)
            .map(|i| lane.obj_sign * self.sh.row_sign[i] * y[i * nl + l] * self.sh.row_scale[i])
            .collect();
        Solution {
            status: outcome.status,
            objective: lane.obj_sign * min_obj,
            x: x_user,
            duals,
            basis: None,
            stats: SolveStats {
                iterations: outcome.iterations,
                rows: m,
                cols: n,
                nnz: batch.nnz(),
                backend: BackendKind::Pdhg,
                warm: WarmEvent::Cold,
                restarts: outcome.restarts,
                lanes: nl,
                ..SolveStats::default()
            },
        }
    }
}

/// Copies lane `l` of the `src` panel into `dst` (stride `nl`).
fn copy_lane(dst: &mut [f64], src: &[f64], nl: usize, l: usize) {
    let mut idx = l;
    while idx < dst.len() {
        dst[idx] = src[idx];
        idx += nl;
    }
}

/// Solves every lane of a [`BatchedModel`] with restarted, averaged PDHG.
///
/// One sweep of the shared matrix per iteration updates every live lane
/// (struct-of-arrays panels, lane-innermost); per-lane convergence masks
/// freeze lanes the moment they converge, so finished scenarios stop
/// costing work. Each lane's floating-point operation sequence is identical
/// to [`solve`] on that lane alone, so per-lane results are **bitwise
/// equal** to the sequential path (pinned by tests here and in
/// `arrow-core`). Warm starts are not supported — batch callers route warm
/// solves through the sequential path.
///
/// Deliberate accounting deviations from per-lane sequential semantics:
/// `cfg.time_limit` is enforced against the *batch* clock (identical
/// behaviour at the default infinite limit), each lane's
/// [`SolveStats::solve_seconds`] is its amortized share of the batch wall
/// time, and [`SolveStats::lanes`] records the panel width.
///
/// A constraint-free batch delegates each lane to the simplex closed form
/// exactly like the sequential path — this covers scenarios with zero cut
/// links, whose RWA LPs have no variables or rows at all.
pub fn solve_batch(batch: &BatchedModel, cfg: &PdhgConfig) -> Vec<Solution> {
    // arrow-lint: allow(wall-clock-in-core) — batch wall time feeds SolveStats; iteration counts, not time, bound the solve
    let start = std::time::Instant::now();
    let nl = batch.num_lanes();
    if nl == 0 {
        return Vec::new();
    }
    let m = batch.num_cons();
    let n = batch.num_vars();
    if m == 0 {
        // Delegate the constraint-free case to simplex's closed form, lane
        // by lane (mirrors `solve_warm`).
        let mut sols: Vec<Solution> = (0..nl)
            .map(|l| {
                crate::simplex::solve(
                    &batch.lane_standard(l),
                    &crate::simplex::SimplexConfig::default(),
                )
            })
            .collect();
        let share = start.elapsed().as_secs_f64() / nl as f64;
        for s in &mut sols {
            s.stats.solve_seconds = share;
            s.stats.lanes = nl;
        }
        return sols;
    }

    let sh = scale_shared(batch.matrix(), batch.senses(), cfg.ruiz_iters);
    // Column-major copy of the scaled matrix: the transpose products sweep
    // it row-wise (see `batch_mul_transpose`). One O(nnz) build, amortized
    // over every iteration of every lane.
    let kc = sh.k.to_csc();
    let knorm = sh.k.spectral_norm_estimate(60).max(1e-12);
    let step = 0.9 / knorm;

    let mut panel = Panel {
        sh: &sh,
        nl,
        q: vec![0.0; m * nl],
        c: vec![0.0; n * nl],
        lb: vec![0.0; n * nl],
        ub: vec![0.0; n * nl],
        qn: vec![0.0; nl],
        cn: vec![0.0; nl],
    };
    let mut omega = vec![1.0f64; nl];
    for (l, om) in omega.iter_mut().enumerate() {
        let lane = batch.lane(l);
        let (ql, cl, lbl, ubl) = scale_lane(&sh, lane.rhs, lane.obj, lane.lb, lane.ub);
        for (i, &qv) in ql.iter().enumerate() {
            panel.q[i * nl + l] = qv;
        }
        for j in 0..n {
            panel.c[j * nl + l] = cl[j];
            panel.lb[j * nl + l] = lbl[j];
            panel.ub[j * nl + l] = ubl[j];
        }
        panel.qn[l] = ql.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        panel.cn[l] = cl.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        *om = {
            // Initial primal weight balances objective and rhs magnitudes.
            let cn2 = cl.iter().map(|v| v * v).sum::<f64>().sqrt();
            let qn2 = ql.iter().map(|v| v * v).sum::<f64>().sqrt();
            if cn2 > 1e-12 && qn2 > 1e-12 {
                (cn2 / qn2).clamp(1e-4, 1e4)
            } else {
                1.0
            }
        };
    }

    // Iterate panels and per-lane control state.
    let mut x = vec![0.0f64; n * nl];
    for l in 0..nl {
        for j in 0..n {
            let mut v = panel.lb[j * nl + l].max(0.0).min(panel.ub[j * nl + l]);
            if !v.is_finite() {
                v = 0.0;
            }
            x[j * nl + l] = v;
        }
    }
    let mut y = vec![0.0f64; m * nl];
    let mut x_avg = x.clone();
    let mut y_avg = y.clone();
    let mut x_at_restart = x.clone();
    let mut y_at_restart = y.clone();
    let mut x_new = vec![0.0f64; n * nl];
    let mut extrap = vec![0.0f64; n * nl];
    let mut kx = vec![0.0f64; m * nl];
    let mut kty = vec![0.0f64; n * nl];

    let mut avg_count = vec![0usize; nl];
    let mut best_res_at_restart = vec![f64::INFINITY; nl];
    let mut restarts = vec![0usize; nl];
    let mut tau = vec![0.0f64; nl];
    let mut sigma = vec![0.0f64; nl];
    let mut w_avg = vec![0.0f64; nl];
    let mut out: Vec<Option<Solution>> = (0..nl).map(|_| None).collect();
    let mut active: Vec<usize> = (0..nl).collect();
    let mut iterations = 0usize;
    let mut timed_out = false;

    while !active.is_empty() && iterations < cfg.max_iters {
        // One PDHG step across all live lanes: the K'y product fused with
        // the primal update, then K·extrap fused with the dual update —
        // see `fused_kty_x_step` / `fused_kx_y_step` for the layout and
        // the bitwise argument.
        for &l in &active {
            tau[l] = step / omega[l];
            sigma[l] = step * omega[l];
            avg_count[l] += 1;
            w_avg[l] = 1.0 / avg_count[l] as f64;
        }
        fused_kty_x_step(
            &kc,
            &y,
            &x,
            &panel.c,
            &panel.lb,
            &panel.ub,
            &mut x_new,
            &mut extrap,
            &mut x_avg,
            &tau,
            &w_avg,
            nl,
            &active,
        );
        fused_kx_y_step(
            &sh.k, &extrap, &mut y, &panel.q, &mut y_avg, &sigma, &w_avg, &sh.is_eq, nl, &active,
        );
        std::mem::swap(&mut x, &mut x_new);
        iterations += 1;

        if !iterations.is_multiple_of(cfg.check_every) {
            continue;
        }
        if start.elapsed().as_secs_f64() > cfg.time_limit {
            timed_out = true;
            break;
        }
        // Convergence and restart logic: evaluate both candidates per lane.
        batch_mul(&sh.k, &x, &mut kx, nl, &active);
        batch_mul_transpose(&kc, &y, &mut kty, nl, &active);
        let worst_cur: Vec<f64> =
            active.iter().map(|&l| panel.residuals(l, &x, &y, &kx, &kty).worst()).collect();
        batch_mul(&sh.k, &x_avg, &mut kx, nl, &active);
        batch_mul_transpose(&kc, &y_avg, &mut kty, nl, &active);
        let mut frozen: Vec<usize> = Vec::new();
        for (pos, &l) in active.iter().enumerate() {
            let worst_avg = panel.residuals(l, &x_avg, &y_avg, &kx, &kty).worst();
            let (use_avg, worst) = if worst_avg < worst_cur[pos] {
                (true, worst_avg)
            } else {
                (false, worst_cur[pos])
            };
            if worst < cfg.tol {
                if use_avg {
                    copy_lane(&mut x, &x_avg, nl, l);
                    copy_lane(&mut y, &y_avg, nl, l);
                }
                let outcome =
                    LaneOutcome { status: Status::Optimal, iterations, restarts: restarts[l] };
                out[l] = Some(panel.finalize(batch, &x, &y, l, outcome));
                frozen.push(l);
                continue;
            }
            // Restart when the best candidate has substantially improved on
            // the residual recorded at the previous restart, or after a
            // long stretch (PDLP's "artificial restart").
            let long_stretch = avg_count[l] >= 6000;
            if worst < 0.2 * best_res_at_restart[l] || long_stretch {
                restarts[l] += 1;
                if use_avg {
                    copy_lane(&mut x, &x_avg, nl, l);
                    copy_lane(&mut y, &y_avg, nl, l);
                }
                // Primal-weight update from movement since last restart.
                let mut dx2 = 0.0f64;
                for j in 0..n {
                    let d = x[j * nl + l] - x_at_restart[j * nl + l];
                    dx2 += d * d;
                }
                let dx = dx2.sqrt();
                let mut dy2 = 0.0f64;
                for i in 0..m {
                    let d = y[i * nl + l] - y_at_restart[i * nl + l];
                    dy2 += d * d;
                }
                let dy = dy2.sqrt();
                if dx > 1e-10 && dy > 1e-10 {
                    omega[l] = ((dy / dx) * omega[l]).sqrt().clamp(1e-4, 1e4);
                }
                copy_lane(&mut x_at_restart, &x, nl, l);
                copy_lane(&mut y_at_restart, &y, nl, l);
                copy_lane(&mut x_avg, &x, nl, l);
                copy_lane(&mut y_avg, &y, nl, l);
                avg_count[l] = 0;
                best_res_at_restart[l] = best_res_at_restart[l].min(worst);
            }
        }
        if !frozen.is_empty() {
            active.retain(|l| !frozen.contains(l));
        }
    }

    // Lanes still live at the limit keep their best iterate.
    let tail = if timed_out { Status::TimeLimit } else { Status::IterationLimit };
    for &l in &active {
        let outcome = LaneOutcome { status: tail, iterations, restarts: restarts[l] };
        out[l] = Some(panel.finalize(batch, &x, &y, l, outcome));
    }
    let share = start.elapsed().as_secs_f64() / nl as f64;
    out.into_iter()
        .map(|sol| {
            let mut s = sol.unwrap_or_else(|| Solution::failed(Status::NumericalTrouble, n, m));
            s.stats.solve_seconds = share;
            s
        })
        .collect()
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense};

    fn lane_model(cap1: f64, cap2: f64) -> Model {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        let z = m.add_var(0.0, 5.0, "z");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 2.0), Sense::Le, cap1, "c1");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0).add(z, 1.0), Sense::Le, cap2, "c2");
        m.add_con(LinExpr::new().add(y, 1.0).add(z, 1.0), Sense::Ge, 1.0, "floor");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0).add(z, 1.0), Objective::Maximize);
        m
    }

    fn assert_bitwise(a: &Solution, b: &Solution) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.stats.iterations, b.stats.iterations);
        assert_eq!(a.stats.restarts, b.stats.restarts);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "objective bits differ");
        assert_eq!(a.x.len(), b.x.len());
        for (i, (xa, xb)) in a.x.iter().zip(&b.x).enumerate() {
            assert_eq!(xa.to_bits(), xb.to_bits(), "x[{i}] differs: {xa} vs {xb}");
        }
        assert_eq!(a.duals.len(), b.duals.len());
        for (i, (da, db)) in a.duals.iter().zip(&b.duals).enumerate() {
            assert_eq!(da.to_bits(), db.to_bits(), "dual[{i}] differs: {da} vs {db}");
        }
    }

    #[test]
    fn batched_lanes_match_sequential_bitwise() {
        for lanes in [1usize, 2, 7] {
            let models: Vec<Model> =
                (0..lanes).map(|l| lane_model(12.0 - l as f64, 18.0 + 0.5 * l as f64)).collect();
            let batch = crate::batch::BatchedModel::from_models(&models).expect("same structure");
            let cfg = PdhgConfig::default();
            let batched = solve_batch(&batch, &cfg);
            assert_eq!(batched.len(), lanes);
            for (l, model) in models.iter().enumerate() {
                let seq = solve(&model.to_standard(), &cfg);
                assert_eq!(seq.status, Status::Optimal);
                assert_bitwise(&batched[l], &seq);
                assert_eq!(batched[l].stats.lanes, lanes);
            }
        }
    }

    #[test]
    fn constraint_free_batch_uses_closed_form() {
        let models: Vec<Model> = (0..3)
            .map(|l| {
                let mut m = Model::new();
                let x = m.add_var(0.0, 5.0 + l as f64, "x");
                m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
                m
            })
            .collect();
        let batch = crate::batch::BatchedModel::from_models(&models).expect("same structure");
        let sols = solve_batch(&batch, &PdhgConfig::default());
        for (l, s) in sols.iter().enumerate() {
            assert_eq!(s.status, Status::Optimal);
            assert!((s.objective - (5.0 + l as f64)).abs() < 1e-9);
            assert_eq!(s.stats.lanes, 3);
        }
    }

    #[test]
    fn degenerate_empty_model_lane_solves_cleanly() {
        // A scenario with zero cut links lowers to a 0-var/0-con LP.
        let batch = crate::batch::BatchedModel::from_models(&[Model::new()]).expect("one lane");
        let sols = solve_batch(&batch, &PdhgConfig::default());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].status, Status::Optimal);
        assert_eq!(sols[0].x.len(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense};

    fn solve_model(m: &Model) -> Solution {
        solve(&m.to_standard(), &PdhgConfig::default())
    }

    #[test]
    fn textbook_max_lp() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 4.0, "c1");
        m.add_con(LinExpr::term(y, 2.0), Sense::Le, 12.0, "c2");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0), Sense::Le, 18.0, "c3");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-3, "obj {}", s.objective);
    }

    #[test]
    fn warm_point_restart_matches_cold_objective() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 4.0, "c1");
        m.add_con(LinExpr::term(y, 2.0), Sense::Le, 12.0, "c2");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0), Sense::Le, 18.0, "c3");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0), Objective::Maximize);
        let lp = m.to_standard();
        let cold = solve(&lp, &PdhgConfig::default());
        assert_eq!(cold.status, Status::Optimal);
        let point = crate::warm::PrimalDual { x: cold.x.clone(), y: cold.duals.clone() };
        let warm = solve_warm(&lp, &PdhgConfig::default(), Some(&point));
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(warm.stats.warm, crate::warm::WarmEvent::Hit);
        assert_eq!(warm.stats.backend, crate::warm::BackendKind::Pdhg);
        assert!((warm.objective - cold.objective).abs() < 1e-3);
        // Starting at the converged point, the residual check should pass
        // far sooner than from the origin.
        assert!(warm.stats.iterations <= cold.stats.iterations);
    }

    #[test]
    fn dimension_mismatched_warm_point_is_a_miss() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 3.0, "c");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let bogus = crate::warm::PrimalDual { x: vec![1.0; 9], y: vec![] };
        let s = solve_warm(&m.to_standard(), &PdhgConfig::default(), Some(&bogus));
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.stats.warm, crate::warm::WarmEvent::Miss);
        assert!((s.objective - 3.0).abs() < 1e-3);
    }

    #[test]
    fn equality_and_ge_rows() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Eq, 10.0, "sum");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, 2.0, "floor");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 1.0), Objective::Minimize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        // Optimum at x=2, y=8, obj 14.
        assert!((s.objective - 14.0).abs() < 1e-2, "obj {}", s.objective);
    }

    #[test]
    fn badly_scaled_problem_is_equilibrated() {
        // Coefficients spanning six orders of magnitude.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1e6, "x");
        let y = m.add_var(0.0, 10.0, "y");
        m.add_con(LinExpr::new().add(x, 1e-3).add(y, 1e3), Sense::Le, 2e3, "mix");
        m.set_objective(LinExpr::new().add(x, 1e-3).add(y, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        // Best: x = 1e6 uses 1e3 of the budget, leaving y = 1 => obj 1001.
        assert!((s.objective - 1001.0).abs() / 1001.0 < 1e-3, "obj {}", s.objective);
    }

    #[test]
    fn matches_simplex_on_flow_like_lp() {
        // A small multi-commodity-flow-shaped LP.
        let mut m = Model::new();
        let mut vars = Vec::new();
        for i in 0..6 {
            vars.push(m.add_var(0.0, 10.0, format!("f{i}")));
        }
        // Two shared capacity rows.
        m.add_con(LinExpr::sum_vars(vars[0..3].iter().copied()), Sense::Le, 12.0, "cap1");
        m.add_con(LinExpr::sum_vars(vars[3..6].iter().copied()), Sense::Le, 7.0, "cap2");
        m.add_con(LinExpr::new().add(vars[0], 1.0).add(vars[3], 1.0), Sense::Le, 8.0, "cap3");
        m.set_objective(LinExpr::sum_vars(vars.iter().copied()), Objective::Maximize);
        let simplex = crate::simplex::solve(&m.to_standard(), &Default::default());
        let pdhg = solve_model(&m);
        assert_eq!(pdhg.status, Status::Optimal);
        assert!(
            (pdhg.objective - simplex.objective).abs() < 1e-3,
            "pdhg {} vs simplex {}",
            pdhg.objective,
            simplex.objective
        );
    }

    #[test]
    fn solution_is_feasible_within_tolerance() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 2.0).add(y, 1.0), Sense::Le, 10.0, "c1");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 3.0), Sense::Le, 15.0, "c2");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert!(s.violation(&m) < 1e-3, "violation {}", s.violation(&m));
    }
}
