//! First-order LP solver: primal–dual hybrid gradient (PDHG) in the style of
//! PDLP, with Ruiz equilibration, iterate averaging, adaptive restarts, and
//! primal-weight balancing.
//!
//! The simplex backend ([`crate::simplex`]) keeps a dense `m × m` basis
//! inverse, which stops scaling around a few thousand rows. ARROW's Phase-I
//! formulation multiplies scenarios × LotteryTickets × links, easily reaching
//! tens of thousands of rows, so large instances are solved here: every
//! iteration is two sparse matrix–vector products, nothing else.
//!
//! Implemented: optimality within a relative KKT tolerance, dual values.
//! Deliberately omitted: infeasibility/unboundedness *certificates* — the
//! iteration simply fails to converge on such inputs and reports
//! [`Status::IterationLimit`]. ARROW's formulations are feasible and bounded
//! by construction (slack variables / finite demands); use the simplex
//! backend when certified infeasibility detection matters.

use crate::model::{Sense, StandardLp};
use crate::solution::{Solution, SolveStats, Status};
use crate::sparse::CsrMatrix;
use crate::warm::{BackendKind, PrimalDual, WarmEvent};

/// Tunable knobs for the PDHG solver.
#[derive(Debug, Clone)]
pub struct PdhgConfig {
    /// Relative KKT tolerance (primal residual, dual residual, gap).
    pub tol: f64,
    /// Hard iteration limit.
    pub max_iters: usize,
    /// Check convergence/restarts every this many iterations.
    pub check_every: usize,
    /// Ruiz equilibration sweeps applied before solving.
    pub ruiz_iters: usize,
    /// Wall-clock limit in seconds (`f64::INFINITY` to disable).
    pub time_limit: f64,
}

impl Default for PdhgConfig {
    fn default() -> Self {
        PdhgConfig {
            tol: 1e-6,
            max_iters: 400_000,
            check_every: 64,
            ruiz_iters: 12,
            time_limit: f64::INFINITY,
        }
    }
}

/// The scaled problem `min c'x  s.t.  K x (>=|=) q,  l <= x <= u` plus the
/// diagonal scalings needed to map a solution back to user space.
struct Scaled {
    k: CsrMatrix,
    q: Vec<f64>,
    is_eq: Vec<bool>,
    c: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// x_user = col_scale ⊙ x_scaled
    col_scale: Vec<f64>,
    /// y_user = row_scale ⊙ y_scaled
    row_scale: Vec<f64>,
    /// Sign applied per row to turn `<=` into `>=` (for mapping duals back).
    row_sign: Vec<f64>,
}

fn build_scaled(lp: &StandardLp, ruiz_iters: usize) -> Scaled {
    let m = lp.num_cons();
    let n = lp.num_vars();
    // Orient all inequality rows as `>=`.
    let mut triplets = Vec::with_capacity(lp.a.nnz());
    let mut row_sign = vec![1.0; m];
    let mut q = vec![0.0; m];
    let mut is_eq = vec![false; m];
    for i in 0..m {
        let sign = match lp.senses[i] {
            Sense::Le => -1.0,
            Sense::Ge | Sense::Eq => 1.0,
        };
        row_sign[i] = sign;
        is_eq[i] = lp.senses[i] == Sense::Eq;
        q[i] = sign * lp.rhs[i];
        for (j, v) in lp.a.row(i) {
            triplets.push((i, j, sign * v));
        }
    }
    let mut k = CsrMatrix::from_triplets(m, n, &triplets);
    // Ruiz equilibration: repeatedly divide rows/cols by the square root of
    // their infinity norm until the matrix is roughly balanced.
    let mut row_scale = vec![1.0; m];
    let mut col_scale = vec![1.0; n];
    for _ in 0..ruiz_iters {
        let rn = k.row_inf_norms();
        let cn = k.col_inf_norms();
        let rs: Vec<f64> = rn.iter().map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 1.0 }).collect();
        let cs: Vec<f64> = cn.iter().map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 1.0 }).collect();
        k.scale(&rs, &cs);
        for i in 0..m {
            row_scale[i] *= rs[i];
        }
        for j in 0..n {
            col_scale[j] *= cs[j];
        }
    }
    // Substitute x_user = D_c x, premultiply rows by D_r:
    //   objective  (D_c c)' x
    //   rhs        D_r q
    //   bounds     l / d_c <= x <= u / d_c
    let c: Vec<f64> = (0..n).map(|j| lp.obj[j] * col_scale[j]).collect();
    let lb: Vec<f64> = (0..n).map(|j| lp.lb[j] / col_scale[j]).collect();
    let ub: Vec<f64> = (0..n).map(|j| lp.ub[j] / col_scale[j]).collect();
    for i in 0..m {
        q[i] *= row_scale[i];
    }
    Scaled { k, q, is_eq, c, lb, ub, col_scale, row_scale, row_sign }
}

/// KKT residuals of a candidate `(x, y)` pair on the scaled problem.
struct Residuals {
    rel_primal: f64,
    rel_dual: f64,
    rel_gap: f64,
}

impl Residuals {
    fn worst(&self) -> f64 {
        self.rel_primal.max(self.rel_dual).max(self.rel_gap)
    }
}

fn kkt_residuals(s: &Scaled, x: &[f64], y: &[f64], kx: &mut [f64], kty: &mut [f64]) -> Residuals {
    let m = s.q.len();
    s.k.mul_vec(x, kx);
    s.k.mul_transpose_vec(y, kty);
    let qn = s.q.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let cn = s.c.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    // Primal residual: violations of Kx >= q (eq rows: |Kx - q|).
    let mut pr = 0.0f64;
    for (i, &kxi) in kx.iter().enumerate().take(m) {
        let r = s.q[i] - kxi;
        let v = if s.is_eq[i] { r.abs() } else { r.max(0.0) };
        pr = pr.max(v);
    }
    // Dual residual on reduced costs r = c - K'y given box constraints.
    let mut dr = 0.0f64;
    let mut dual_obj: f64 = s.q.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    for (j, &ktyj) in kty.iter().enumerate().take(s.c.len()) {
        let r = s.c[j] - ktyj;
        if r > 0.0 {
            if s.lb[j].is_finite() {
                dual_obj += s.lb[j] * r;
            } else {
                dr = dr.max(r);
            }
        } else if r < 0.0 {
            if s.ub[j].is_finite() {
                dual_obj += s.ub[j] * r;
            } else {
                dr = dr.max(-r);
            }
        }
    }
    let primal_obj: f64 = s.c.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
    let gap = (primal_obj - dual_obj).abs() / (1.0 + primal_obj.abs() + dual_obj.abs());
    Residuals { rel_primal: pr / (1.0 + qn), rel_dual: dr / (1.0 + cn), rel_gap: gap }
}

/// Solves a standard-form LP with restarted, averaged PDHG.
pub fn solve(lp: &StandardLp, cfg: &PdhgConfig) -> Solution {
    solve_warm(lp, cfg, None)
}

/// [`solve`] with an optional starting primal–dual point in user space
/// (as returned in [`Solution::x`]/[`Solution::duals`] by any backend).
///
/// The point is mapped through this solve's equilibration, clamped to the
/// scaled bounds (primal) and sign constraints (dual), and iteration
/// resumes from it; near-optimal starts converge in a fraction of the cold
/// iteration count. A point of the wrong dimension is recorded as a
/// [`WarmEvent::Miss`] and the solve starts cold.
pub fn solve_warm(lp: &StandardLp, cfg: &PdhgConfig, start_point: Option<&PrimalDual>) -> Solution {
    // arrow-lint: allow(wall-clock-in-core) — solve wall time reported in SolveStats; iteration counts, not time, bound the solve
    let start = std::time::Instant::now();
    let n = lp.num_vars();
    let m = lp.num_cons();
    if m == 0 {
        // Delegate the constraint-free case to simplex's closed form.
        return crate::simplex::solve(lp, &crate::simplex::SimplexConfig::default());
    }
    let s = build_scaled(lp, cfg.ruiz_iters);
    let knorm = s.k.spectral_norm_estimate(60).max(1e-12);

    // Iterates and running averages (restart-to-average scheme).
    let mut x: Vec<f64> = (0..n).map(|j| s.lb[j].max(0.0).min(s.ub[j])).collect();
    for xj in x.iter_mut() {
        if !xj.is_finite() {
            *xj = 0.0;
        }
    }
    let mut y = vec![0.0; m];
    let mut warm = WarmEvent::Cold;
    if let Some(p) = start_point {
        if p.x.len() == n && (p.y.is_empty() || p.y.len() == m) {
            warm = WarmEvent::Hit;
            // User space -> scaled space: x = x_user / D_c, clamped to the
            // scaled box (data may have changed since the point was taken).
            for (j, xj) in x.iter_mut().enumerate() {
                let v = p.x[j] / s.col_scale[j];
                if v.is_finite() {
                    *xj = v.clamp(s.lb[j], s.ub[j]);
                }
            }
            // Invert the dual mapping used on the way out
            // (`duals = obj_sign * row_sign * y * row_scale`); inequality
            // rows keep their `y >= 0` sign constraint.
            for i in 0..p.y.len() {
                let v = lp.obj_sign * s.row_sign[i] * p.y[i] / s.row_scale[i];
                if v.is_finite() {
                    y[i] = if s.is_eq[i] { v } else { v.max(0.0) };
                }
            }
        } else {
            warm = WarmEvent::Miss;
        }
    }
    let mut x_avg = x.clone();
    let mut y_avg = y.clone();
    let mut avg_count = 0usize;
    let mut x_at_restart = x.clone();
    let mut y_at_restart = y.clone();

    let mut omega: f64 = {
        // Initial primal weight balances objective and rhs magnitudes.
        let cn = s.c.iter().map(|v| v * v).sum::<f64>().sqrt();
        let qn = s.q.iter().map(|v| v * v).sum::<f64>().sqrt();
        if cn > 1e-12 && qn > 1e-12 {
            (cn / qn).clamp(1e-4, 1e4)
        } else {
            1.0
        }
    };
    let step = 0.9 / knorm;

    let mut kx = vec![0.0; m];
    let mut kty = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut extrap = vec![0.0; n];
    let mut best_res_at_restart = f64::INFINITY;
    let mut iterations = 0usize;
    let mut restarts = 0usize;
    let mut status = Status::IterationLimit;

    while iterations < cfg.max_iters {
        // One PDHG step.
        let tau = step / omega;
        let sigma = step * omega;
        s.k.mul_transpose_vec(&y, &mut kty);
        for j in 0..n {
            let v = x[j] - tau * (s.c[j] - kty[j]);
            x_new[j] = v.clamp(s.lb[j], s.ub[j]);
        }
        for j in 0..n {
            extrap[j] = 2.0 * x_new[j] - x[j];
        }
        s.k.mul_vec(&extrap, &mut kx);
        for i in 0..m {
            let v = y[i] + sigma * (s.q[i] - kx[i]);
            y[i] = if s.is_eq[i] { v } else { v.max(0.0) };
        }
        std::mem::swap(&mut x, &mut x_new);
        iterations += 1;

        // Accumulate running averages.
        avg_count += 1;
        let w = 1.0 / avg_count as f64;
        for j in 0..n {
            x_avg[j] += (x[j] - x_avg[j]) * w;
        }
        for i in 0..m {
            y_avg[i] += (y[i] - y_avg[i]) * w;
        }

        if !iterations.is_multiple_of(cfg.check_every) {
            continue;
        }
        if start.elapsed().as_secs_f64() > cfg.time_limit {
            status = Status::TimeLimit;
            break;
        }
        // Convergence and restart logic: evaluate both candidates.
        let res_cur = kkt_residuals(&s, &x, &y, &mut kx, &mut kty);
        let res_avg = kkt_residuals(&s, &x_avg, &y_avg, &mut kx, &mut kty);
        let (use_avg, res) =
            if res_avg.worst() < res_cur.worst() { (true, res_avg) } else { (false, res_cur) };
        if res.worst() < cfg.tol {
            if use_avg {
                x.copy_from_slice(&x_avg);
                y.copy_from_slice(&y_avg);
            }
            status = Status::Optimal;
            break;
        }
        // Restart when the best candidate has substantially improved on the
        // residual recorded at the previous restart, or unconditionally
        // after a long stretch (PDLP's "artificial restart" — plain PDHG
        // stalls without it on degenerate LPs).
        let long_stretch = avg_count >= 6000;
        if res.worst() < 0.2 * best_res_at_restart || long_stretch {
            restarts += 1;
            if use_avg {
                x.copy_from_slice(&x_avg);
                y.copy_from_slice(&y_avg);
            }
            // Primal-weight update from movement since last restart.
            let dx: f64 = x
                .iter()
                .zip(x_at_restart.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let dy: f64 = y
                .iter()
                .zip(y_at_restart.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if dx > 1e-10 && dy > 1e-10 {
                // Geometric mean of the old weight and the observed
                // dual/primal movement ratio (PDLP's smoothed update).
                omega = ((dy / dx) * omega).sqrt().clamp(1e-4, 1e4);
            }
            x_at_restart.copy_from_slice(&x);
            y_at_restart.copy_from_slice(&y);
            x_avg.copy_from_slice(&x);
            y_avg.copy_from_slice(&y);
            avg_count = 0;
            best_res_at_restart = best_res_at_restart.min(res.worst());
        }
    }

    // Map back to user space.
    let x_user: Vec<f64> = (0..n).map(|j| x[j] * s.col_scale[j]).collect();
    let min_obj: f64 = lp.obj_offset + x_user.iter().zip(&lp.obj).map(|(a, b)| a * b).sum::<f64>();
    let duals: Vec<f64> =
        (0..m).map(|i| lp.obj_sign * s.row_sign[i] * y[i] * s.row_scale[i]).collect();
    Solution {
        status,
        objective: lp.user_objective(min_obj),
        x: x_user,
        duals,
        basis: None,
        stats: SolveStats {
            iterations,
            solve_seconds: start.elapsed().as_secs_f64(),
            rows: m,
            cols: n,
            nnz: lp.a.nnz(),
            backend: BackendKind::Pdhg,
            warm,
            restarts,
            ..SolveStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense};

    fn solve_model(m: &Model) -> Solution {
        solve(&m.to_standard(), &PdhgConfig::default())
    }

    #[test]
    fn textbook_max_lp() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 4.0, "c1");
        m.add_con(LinExpr::term(y, 2.0), Sense::Le, 12.0, "c2");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0), Sense::Le, 18.0, "c3");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-3, "obj {}", s.objective);
    }

    #[test]
    fn warm_point_restart_matches_cold_objective() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 4.0, "c1");
        m.add_con(LinExpr::term(y, 2.0), Sense::Le, 12.0, "c2");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 2.0), Sense::Le, 18.0, "c3");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 5.0), Objective::Maximize);
        let lp = m.to_standard();
        let cold = solve(&lp, &PdhgConfig::default());
        assert_eq!(cold.status, Status::Optimal);
        let point = crate::warm::PrimalDual { x: cold.x.clone(), y: cold.duals.clone() };
        let warm = solve_warm(&lp, &PdhgConfig::default(), Some(&point));
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(warm.stats.warm, crate::warm::WarmEvent::Hit);
        assert_eq!(warm.stats.backend, crate::warm::BackendKind::Pdhg);
        assert!((warm.objective - cold.objective).abs() < 1e-3);
        // Starting at the converged point, the residual check should pass
        // far sooner than from the origin.
        assert!(warm.stats.iterations <= cold.stats.iterations);
    }

    #[test]
    fn dimension_mismatched_warm_point_is_a_miss() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 3.0, "c");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let bogus = crate::warm::PrimalDual { x: vec![1.0; 9], y: vec![] };
        let s = solve_warm(&m.to_standard(), &PdhgConfig::default(), Some(&bogus));
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.stats.warm, crate::warm::WarmEvent::Miss);
        assert!((s.objective - 3.0).abs() < 1e-3);
    }

    #[test]
    fn equality_and_ge_rows() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Eq, 10.0, "sum");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, 2.0, "floor");
        m.set_objective(LinExpr::new().add(x, 3.0).add(y, 1.0), Objective::Minimize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        // Optimum at x=2, y=8, obj 14.
        assert!((s.objective - 14.0).abs() < 1e-2, "obj {}", s.objective);
    }

    #[test]
    fn badly_scaled_problem_is_equilibrated() {
        // Coefficients spanning six orders of magnitude.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1e6, "x");
        let y = m.add_var(0.0, 10.0, "y");
        m.add_con(LinExpr::new().add(x, 1e-3).add(y, 1e3), Sense::Le, 2e3, "mix");
        m.set_objective(LinExpr::new().add(x, 1e-3).add(y, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert_eq!(s.status, Status::Optimal);
        // Best: x = 1e6 uses 1e3 of the budget, leaving y = 1 => obj 1001.
        assert!((s.objective - 1001.0).abs() / 1001.0 < 1e-3, "obj {}", s.objective);
    }

    #[test]
    fn matches_simplex_on_flow_like_lp() {
        // A small multi-commodity-flow-shaped LP.
        let mut m = Model::new();
        let mut vars = Vec::new();
        for i in 0..6 {
            vars.push(m.add_var(0.0, 10.0, format!("f{i}")));
        }
        // Two shared capacity rows.
        m.add_con(LinExpr::sum_vars(vars[0..3].iter().copied()), Sense::Le, 12.0, "cap1");
        m.add_con(LinExpr::sum_vars(vars[3..6].iter().copied()), Sense::Le, 7.0, "cap2");
        m.add_con(LinExpr::new().add(vars[0], 1.0).add(vars[3], 1.0), Sense::Le, 8.0, "cap3");
        m.set_objective(LinExpr::sum_vars(vars.iter().copied()), Objective::Maximize);
        let simplex = crate::simplex::solve(&m.to_standard(), &Default::default());
        let pdhg = solve_model(&m);
        assert_eq!(pdhg.status, Status::Optimal);
        assert!(
            (pdhg.objective - simplex.objective).abs() < 1e-3,
            "pdhg {} vs simplex {}",
            pdhg.objective,
            simplex.objective
        );
    }

    #[test]
    fn solution_is_feasible_within_tolerance() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 2.0).add(y, 1.0), Sense::Le, 10.0, "c1");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 3.0), Sense::Le, 15.0, "c2");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        let s = solve_model(&m);
        assert!(s.violation(&m) < 1e-3, "violation {}", s.violation(&m));
    }
}
