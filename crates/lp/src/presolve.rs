//! LP presolve: cheap reductions applied before a solver backend runs.
//!
//! ARROW's Phase-I LP contains many rows that a solver need never see:
//! empty rows (constraints whose every variable was fixed), singleton rows
//! (a single variable — really a bound), and fixed variables (`l = u`).
//! Removing them shrinks the dense simplex's basis and the PDHG matrix.
//!
//! Implemented reductions, applied to fixpoint:
//! 1. **Fixed-variable substitution** — variables with `l = u` move into
//!    the right-hand sides and the objective offset.
//! 2. **Singleton rows** — a row `a·x ≤/≥/= b` with one variable tightens
//!    that variable's bounds and disappears.
//! 3. **Empty rows** — dropped (after checking `0 ≤/≥/= b` feasibility).
//! 4. **Empty columns** — variables in no row move to their best bound.
//!
//! The output is a [`Reduced`] problem plus the mapping needed to
//! reconstruct a full solution. Infeasibility discovered during presolve
//! is reported without invoking a solver at all.
//!
//! Deliberately omitted (classic but heavier): forcing/dominated rows,
//! doubleton substitution, and dual reductions.

use crate::model::{Sense, StandardLp};
use crate::solution::{Solution, Status};
use crate::sparse::CsrMatrix;

/// The presolved problem plus reconstruction data.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// The smaller LP (empty if everything was eliminated).
    pub lp: StandardLp,
    /// For each original variable: `Some(value)` if eliminated, else its
    /// column index in the reduced LP.
    assignment: Vec<VarFate>,
    /// Original row index per kept row.
    kept_rows: Vec<usize>,
    /// Number of original variables.
    orig_vars: usize,
    /// Number of original rows.
    orig_rows: usize,
}

#[derive(Debug, Clone, Copy)]
enum VarFate {
    Kept(usize),
    Fixed(f64),
}

/// Outcome of presolving.
#[derive(Debug, Clone)]
pub enum PresolveResult {
    /// A reduced problem remains to be solved.
    Reduced(Reduced),
    /// Presolve proved infeasibility.
    Infeasible,
    /// Presolve solved the problem outright (all variables eliminated).
    Solved(Solution),
}

/// Runs presolve on a standard-form LP.
pub fn presolve(lp: &StandardLp) -> PresolveResult {
    let n = lp.num_vars();
    let m = lp.num_cons();
    let mut lb = lp.lb.clone();
    let mut ub = lp.ub.clone();
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    let mut row_dropped = vec![false; m];
    // Row data as editable triplets.
    let mut rows: Vec<Vec<(usize, f64)>> = (0..m).map(|i| lp.a.row(i).collect()).collect();
    let mut rhs = lp.rhs.clone();
    let feas_tol = 1e-9;

    // Iterate reductions to fixpoint (bounded rounds for safety).
    for _round in 0..16 {
        let mut changed = false;
        // (1) fix variables with l == u.
        for j in 0..n {
            if fixed[j].is_none() && (ub[j] - lb[j]).abs() <= feas_tol && lb[j].is_finite() {
                fixed[j] = Some(lb[j]);
                changed = true;
            }
        }
        // Substitute fixed variables into rows.
        for i in 0..m {
            if row_dropped[i] {
                continue;
            }
            let before = rows[i].len();
            rows[i].retain(|&(j, c)| {
                if let Some(v) = fixed[j] {
                    rhs[i] -= c * v;
                    false
                } else {
                    true
                }
            });
            if rows[i].len() != before {
                changed = true;
            }
        }
        // (2)+(3) singleton and empty rows.
        for i in 0..m {
            if row_dropped[i] {
                continue;
            }
            match rows[i].len() {
                0 => {
                    let ok = match lp.senses[i] {
                        Sense::Le => rhs[i] >= -feas_tol,
                        Sense::Ge => rhs[i] <= feas_tol,
                        Sense::Eq => rhs[i].abs() <= feas_tol,
                    };
                    if !ok {
                        return PresolveResult::Infeasible;
                    }
                    row_dropped[i] = true;
                    changed = true;
                }
                1 => {
                    let (j, c) = rows[i][0];
                    if c.abs() <= feas_tol {
                        continue;
                    }
                    let v = rhs[i] / c;
                    match (lp.senses[i], c > 0.0) {
                        (Sense::Eq, _) => {
                            lb[j] = lb[j].max(v);
                            ub[j] = ub[j].min(v);
                        }
                        (Sense::Le, true) | (Sense::Ge, false) => ub[j] = ub[j].min(v),
                        (Sense::Le, false) | (Sense::Ge, true) => lb[j] = lb[j].max(v),
                    }
                    if lb[j] > ub[j] + feas_tol {
                        return PresolveResult::Infeasible;
                    }
                    row_dropped[i] = true;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    // (4) empty columns: move to the cost-best bound.
    let mut col_used = vec![false; n];
    for i in 0..m {
        if !row_dropped[i] {
            for &(j, _) in &rows[i] {
                col_used[j] = true;
            }
        }
    }
    for j in 0..n {
        if fixed[j].is_none() && !col_used[j] {
            let c = lp.obj[j];
            let v = if c > 0.0 {
                lb[j]
            } else if c < 0.0 {
                ub[j]
            } else if lb[j].is_finite() {
                lb[j]
            } else {
                ub[j].min(0.0).max(lb[j])
            };
            if !v.is_finite() {
                // Unbounded free column: let the backend report it rather
                // than complicating presolve.
                continue;
            }
            fixed[j] = Some(v);
        }
    }

    // Assemble the reduced problem.
    let mut assignment = Vec::with_capacity(n);
    let mut new_index = 0usize;
    for fate in fixed.iter().take(n) {
        match *fate {
            Some(v) => assignment.push(VarFate::Fixed(v)),
            None => {
                assignment.push(VarFate::Kept(new_index));
                new_index += 1;
            }
        }
    }
    let kept_rows: Vec<usize> = (0..m).filter(|&i| !row_dropped[i]).collect();
    let mut triplets = Vec::new();
    for (new_i, &i) in kept_rows.iter().enumerate() {
        for &(j, c) in &rows[i] {
            if let VarFate::Kept(nj) = assignment[j] {
                triplets.push((new_i, nj, c));
            }
        }
    }
    let mut obj = Vec::with_capacity(new_index);
    let mut obj_offset = lp.obj_offset;
    let mut rlb = Vec::with_capacity(new_index);
    let mut rub = Vec::with_capacity(new_index);
    for j in 0..n {
        match assignment[j] {
            VarFate::Fixed(v) => obj_offset += lp.obj[j] * v,
            VarFate::Kept(_) => {
                obj.push(lp.obj[j]);
                rlb.push(lb[j]);
                rub.push(ub[j]);
            }
        }
    }
    let reduced_lp = StandardLp {
        a: CsrMatrix::from_triplets(kept_rows.len(), new_index, &triplets),
        senses: kept_rows.iter().map(|&i| lp.senses[i]).collect(),
        rhs: kept_rows.iter().map(|&i| rhs[i]).collect(),
        lb: rlb,
        ub: rub,
        obj,
        obj_offset,
        obj_sign: lp.obj_sign,
    };
    let reduced = Reduced { lp: reduced_lp, assignment, kept_rows, orig_vars: n, orig_rows: m };
    if reduced.lp.num_vars() == 0 {
        // Fully solved by presolve.
        let sol = reduced.expand(&Solution {
            status: Status::Optimal,
            x: vec![],
            objective: reduced.lp.user_objective(reduced.lp.obj_offset),
            duals: vec![],
            basis: None,
            stats: Default::default(),
        });
        return PresolveResult::Solved(sol);
    }
    PresolveResult::Reduced(reduced)
}

impl Reduced {
    /// Expands a reduced-space solution back to original variables/rows.
    pub fn expand(&self, sol: &Solution) -> Solution {
        let mut x = vec![0.0; self.orig_vars];
        for (j, fate) in self.assignment.iter().enumerate() {
            x[j] = match *fate {
                VarFate::Fixed(v) => v,
                VarFate::Kept(nj) => sol.x.get(nj).copied().unwrap_or(0.0),
            };
        }
        let mut duals = vec![0.0; self.orig_rows];
        for (new_i, &i) in self.kept_rows.iter().enumerate() {
            duals[i] = sol.duals.get(new_i).copied().unwrap_or(0.0);
        }
        Solution {
            status: sol.status,
            objective: sol.objective,
            x,
            duals,
            // A reduced-space basis is meaningless in original numbering.
            basis: None,
            stats: sol.stats,
        }
    }

    /// Rows removed by presolve.
    pub fn rows_removed(&self) -> usize {
        self.orig_rows - self.lp.num_cons()
    }

    /// Variables removed by presolve.
    pub fn vars_removed(&self) -> usize {
        self.orig_vars - self.lp.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective};
    use crate::simplex::{self, SimplexConfig};

    fn solve_with_presolve(m: &Model) -> Solution {
        let lp = m.to_standard();
        match presolve(&lp) {
            PresolveResult::Infeasible => {
                Solution::failed(Status::Infeasible, lp.num_vars(), lp.num_cons())
            }
            PresolveResult::Solved(s) => s,
            PresolveResult::Reduced(r) => {
                let inner = simplex::solve(&r.lp, &SimplexConfig::default());
                r.expand(&inner)
            }
        }
    }

    #[test]
    fn fixed_variables_are_substituted() {
        // x is fixed at 3, which turns the row into a singleton on y,
        // which becomes a bound, which empties y's column — the cascade
        // solves the whole LP inside presolve.
        let mut m = Model::new();
        let x = m.add_var(3.0, 3.0, "x"); // fixed
        let y = m.add_var(0.0, 10.0, "y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 8.0, "c");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        match presolve(&m.to_standard()) {
            PresolveResult::Solved(sol) => {
                assert!((sol.objective - 8.0).abs() < 1e-6);
                assert_eq!(sol.x[0], 3.0);
                assert!((sol.x[1] - 5.0).abs() < 1e-6);
            }
            other => panic!("expected fully solved, got {other:?}"),
        }
        let sol = solve_with_presolve(&m);
        assert!((sol.objective - 8.0).abs() < 1e-6);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        m.add_con(LinExpr::term(x, 2.0), Sense::Le, 10.0, "single"); // x <= 5
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let lp = m.to_standard();
        match presolve(&lp) {
            PresolveResult::Solved(sol) => {
                assert!((sol.x[0] - 5.0).abs() < 1e-9);
                assert!((sol.objective - 5.0).abs() < 1e-9);
            }
            other => panic!("expected fully solved, got {other:?}"),
        }
    }

    #[test]
    fn empty_row_infeasibility_detected() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 1.0, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, 5.0, "impossible");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        match presolve(&m.to_standard()) {
            PresolveResult::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn crossed_singleton_bounds_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Ge, 7.0, "lo");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 3.0, "hi");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        match presolve(&m.to_standard()) {
            PresolveResult::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn presolved_solution_matches_direct_solve() {
        // A mixed model exercising all reductions at once.
        let mut m = Model::new();
        let fixed = m.add_var(2.0, 2.0, "fixed");
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        let unused = m.add_var(0.0, 4.0, "unused");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 6.0, "single");
        m.add_con(LinExpr::new().add(fixed, 1.0).add(x, 1.0).add(y, 2.0), Sense::Le, 12.0, "mix");
        m.set_objective(
            LinExpr::new().add(x, 3.0).add(y, 2.0).add(unused, 1.0).add(fixed, 1.0),
            Objective::Maximize,
        );
        let direct = simplex::solve(&m.to_standard(), &SimplexConfig::default());
        let pre = solve_with_presolve(&m);
        assert_eq!(pre.status, Status::Optimal);
        assert!(
            (direct.objective - pre.objective).abs() < 1e-6,
            "direct {} vs presolved {}",
            direct.objective,
            pre.objective
        );
        // The unused variable must sit at its best bound (cost 1 > 0, max).
        assert!((pre.x[3] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn duals_are_restored_to_original_rows() {
        // Rows eliminated by presolve come back with a zero dual (full
        // dual postsolve is out of scope); *kept* rows keep their duals.
        let mut m = Model::new();
        let fixed = m.add_var(1.0, 1.0, "fixed");
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(fixed, 1.0), Sense::Le, 2.0, "drops"); // empty after subst
                                                                       // Two-variable row survives presolve.
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 5.0, "binding");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        let sol = solve_with_presolve(&m);
        assert_eq!(sol.duals.len(), 2);
        assert!(sol.duals[0].abs() < 1e-9, "dropped row has zero dual");
        assert!((sol.duals[1] - 1.0).abs() < 1e-6, "binding row dual {:?}", sol.duals);
    }
}
