//! Minimal sparse-matrix support for the LP solvers.
//!
//! Only the operations the solvers actually need are implemented: building a
//! matrix from triplets, row-major (CSR) and column-major (CSC) storage,
//! matrix–vector products in both orientations, and infinity-norm row/column
//! scaling used by the Ruiz preconditioner in [`crate::pdhg`].
//!
//! Deliberately omitted (not needed here): arithmetic between matrices,
//! factorizations, and any `unsafe` indexing tricks.

/// A sparse matrix in compressed-sparse-row format.
///
/// Rows are stored contiguously: the column indices and values of row `i`
/// live in `col_idx[row_ptr[i]..row_ptr[i+1]]` / `values[...]`. Duplicate
/// entries are combined at construction time.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; entries with the same coordinates
    /// are summed. Explicit zeros produced by cancellation are kept (they are
    /// harmless and rare in LP models).
    ///
    /// # Panics
    /// Panics if any triplet is out of bounds — models are constructed by
    /// this crate's own code, so an out-of-bounds triplet is a logic error.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of {rows}x{cols}");
        }
        // Count entries per row, then bucket-sort triplets into place.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let row_ptr_tmp = counts.clone();
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0f64; triplets.len()];
        let mut cursor = row_ptr_tmp;
        for &(r, c, v) in triplets {
            let p = cursor[r];
            col_idx[p] = c;
            values[p] = v;
            cursor[r] += 1;
        }
        // Within each row: sort by column and combine duplicates.
        let mut row_ptr = vec![0usize; rows + 1];
        for i in 0..rows {
            row_ptr[i + 1] = counts[i + 1] - counts[i] + row_ptr[i];
        }
        // Re-derive per-row ranges from original counts.
        let mut out_col = Vec::with_capacity(triplets.len());
        let mut out_val = Vec::with_capacity(triplets.len());
        let mut out_ptr = Vec::with_capacity(rows + 1);
        out_ptr.push(0);
        let mut start = 0;
        for i in 0..rows {
            let end = counts[i + 1] - if i == 0 { 0 } else { counts[i] } + start;
            let mut entries: Vec<(usize, f64)> = col_idx[start..end]
                .iter()
                .copied()
                .zip(values[start..end].iter().copied())
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < entries.len() {
                let c = entries[k].0;
                let mut v = entries[k].1;
                let mut j = k + 1;
                while j < entries.len() && entries[j].0 == c {
                    v += entries[j].1;
                    j += 1;
                }
                out_col.push(c);
                out_val.push(v);
                k = j;
            }
            out_ptr.push(out_col.len());
            start = end;
        }
        CsrMatrix { rows, cols, row_ptr: out_ptr, col_idx: out_col, values: out_val }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(column, value)` entries of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Computes `out = self * x`.
    pub fn mul_vec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (i, out_i) in out.iter_mut().enumerate().take(self.rows) {
            let mut acc = 0.0;
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[p] * x[self.col_idx[p]];
            }
            *out_i = acc;
        }
    }

    /// Computes `out = self^T * y`.
    pub fn mul_transpose_vec(&self, y: &[f64], out: &mut [f64]) {
        debug_assert_eq!(y.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (i, &yi) in y.iter().enumerate().take(self.rows) {
            if yi == 0.0 {
                continue;
            }
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.col_idx[p]] += self.values[p] * yi;
            }
        }
    }

    /// Infinity norm (max absolute value) of each row.
    pub fn row_inf_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0f64; self.rows];
        for (i, norm) in norms.iter_mut().enumerate().take(self.rows) {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                *norm = norm.max(self.values[p].abs());
            }
        }
        norms
    }

    /// Infinity norm of each column.
    pub fn col_inf_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0f64; self.cols];
        for p in 0..self.values.len() {
            let c = self.col_idx[p];
            norms[c] = norms[c].max(self.values[p].abs());
        }
        norms
    }

    /// Scales the matrix in place: entry `(i, j)` becomes
    /// `row_scale[i] * a_ij * col_scale[j]`.
    pub fn scale(&mut self, row_scale: &[f64], col_scale: &[f64]) {
        debug_assert_eq!(row_scale.len(), self.rows);
        debug_assert_eq!(col_scale.len(), self.cols);
        for (i, &rs) in row_scale.iter().enumerate().take(self.rows) {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                self.values[p] *= rs * col_scale[self.col_idx[p]];
            }
        }
    }

    /// Estimates the spectral norm ‖A‖₂ by power iteration on `AᵀA`.
    ///
    /// Used to pick valid PDHG step sizes; a slight overestimate is safe, so
    /// the result is inflated by 1%.
    pub fn spectral_norm_estimate(&self, iterations: usize) -> f64 {
        if self.nnz() == 0 {
            return 0.0;
        }
        let mut v = vec![1.0; self.cols];
        let mut av = vec![0.0; self.rows];
        let mut atav = vec![0.0; self.cols];
        let mut norm = 0.0;
        for _ in 0..iterations {
            let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if vnorm == 0.0 {
                return 0.0;
            }
            for x in v.iter_mut() {
                *x /= vnorm;
            }
            self.mul_vec(&v, &mut av);
            self.mul_transpose_vec(&av, &mut atav);
            norm = atav.iter().map(|x| x * x).sum::<f64>().sqrt().sqrt();
            std::mem::swap(&mut v, &mut atav);
        }
        norm * 1.01
    }

    /// Converts to column-major storage.
    pub fn to_csc(&self) -> CscMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let col_ptr = counts.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.rows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[p];
                let q = cursor[c];
                row_idx[q] = i;
                values[q] = self.values[p];
                cursor[c] += 1;
            }
        }
        CscMatrix { rows: self.rows, cols: self.cols, col_ptr, row_idx, values }
    }
}

/// A sparse matrix in compressed-sparse-column format.
///
/// Used by the simplex solver, which prices one column at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(row, value)` entries of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Dot product of column `j` with a dense vector.
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, v) in self.col(j) {
            acc += v * y[i];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn from_triplets_combines_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, -1.0)]);
        assert_eq!(m.nnz(), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 3.5)]);
    }

    #[test]
    fn from_triplets_sorts_columns_within_rows() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 0, 2.0), (0, 2, 3.0)]);
        let cols: Vec<_> = m.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let mut out = vec![0.0; 2];
        m.mul_vec(&[1.0, 2.0, 3.0], &mut out);
        assert_eq!(out, vec![7.0, 6.0]);
    }

    #[test]
    fn mul_transpose_vec_matches_dense() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.mul_transpose_vec(&[1.0, 2.0], &mut out);
        assert_eq!(out, vec![1.0, 6.0, 2.0]);
    }

    #[test]
    fn norms() {
        let m = sample();
        assert_eq!(m.row_inf_norms(), vec![2.0, 3.0]);
        assert_eq!(m.col_inf_norms(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn scale_applies_both_sides() {
        let mut m = sample();
        m.scale(&[2.0, 1.0], &[1.0, 0.5, 1.0]);
        let mut out = vec![0.0; 2];
        m.mul_vec(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![6.0, 1.5]);
    }

    #[test]
    fn csc_roundtrip() {
        let m = sample();
        let c = m.to_csc();
        assert_eq!(c.nnz(), m.nnz());
        let col2: Vec<_> = c.col(2).collect();
        assert_eq!(col2, vec![(0, 2.0)]);
        assert_eq!(c.col_dot(1, &[10.0, 20.0]), 60.0);
    }

    #[test]
    fn spectral_norm_estimate_bounds_identity() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let n = m.spectral_norm_estimate(50);
        assert!((1.0..1.1).contains(&n), "estimate {n}");
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = CsrMatrix::from_triplets(2, 2, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.spectral_norm_estimate(10), 0.0);
        let mut out = vec![1.0; 2];
        m.mul_vec(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
