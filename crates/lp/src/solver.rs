//! Backend selection: one entry point for every LP/MILP in the workspace.
//!
//! Formulation code builds a [`Model`](crate::model::Model) and calls
//! [`solve`]; the backend is chosen by problem size unless pinned. The
//! crossover threshold favours the exact simplex for anything it can finish
//! quickly and the first-order PDHG solver beyond that.

use crate::batch::BatchedModel;
use crate::milp::{self, MilpConfig};
use crate::model::{Model, StandardLp};
use crate::pdhg::{self, PdhgConfig};
use crate::simplex::{self, SimplexConfig};
use crate::solution::{Solution, SolveStats};
use crate::warm::{BackendKind, WarmEvent, WarmStart};

/// Which algorithm executes the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick by size: simplex below [`SolverConfig::auto_threshold`] rows,
    /// PDHG above. Models with integer variables always use branch & bound.
    #[default]
    Auto,
    /// Dense two-phase simplex (exact; small/medium problems).
    Simplex,
    /// Restarted averaged PDHG (approximate to tolerance; large problems).
    Pdhg,
}

/// Combined solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Backend choice.
    pub backend: Backend,
    /// Row-count threshold for [`Backend::Auto`].
    pub auto_threshold: usize,
    /// Run [`crate::presolve`] before the backend (fixed variables,
    /// singleton/empty rows, empty columns). Duals of eliminated rows are
    /// reported as zero. Off by default: ARROW's TE rows are rarely
    /// eliminable, so the pass usually costs more than it saves — enable
    /// it for models with many fixed variables or bound-like rows.
    pub presolve: bool,
    /// Simplex knobs.
    pub simplex: SimplexConfig,
    /// PDHG knobs.
    pub pdhg: PdhgConfig,
    /// Branch-and-bound knobs (integer models).
    pub milp: MilpConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            backend: Backend::Auto,
            auto_threshold: 1200,
            presolve: false,
            simplex: SimplexConfig::default(),
            pdhg: PdhgConfig::default(),
            milp: MilpConfig::default(),
        }
    }
}

impl SolverConfig {
    /// A configuration pinned to the exact simplex backend.
    pub fn exact() -> Self {
        SolverConfig { backend: Backend::Simplex, ..Default::default() }
    }

    /// A configuration pinned to the PDHG backend with the given tolerance.
    pub fn first_order(tol: f64) -> Self {
        let mut cfg = SolverConfig { backend: Backend::Pdhg, ..Default::default() };
        cfg.pdhg.tol = tol;
        cfg
    }
}

/// Solves `model` with the configured backend, timing the call.
pub fn solve(model: &Model, cfg: &SolverConfig) -> Solution {
    solve_with(model, cfg, None)
}

/// [`solve`] with an optional [`WarmStart`] from a previous solve of a
/// structurally identical model.
///
/// Each backend consumes the component it understands — simplex the basis,
/// PDHG the primal–dual point — and records a hit/miss in
/// [`SolveStats`](crate::solution::SolveStats). The MILP backend and the
/// presolve path ignore warm starts (presolve renumbers columns, which
/// would silently misalign the point).
pub fn solve_with(model: &Model, cfg: &SolverConfig, warm: Option<&WarmStart>) -> Solution {
    let _span = arrow_obs::span!(
        "lp.solve",
        "rows" => model.num_cons(),
        "cols" => model.num_vars(),
        "warm" => warm.is_some(),
        "backend" => backend_label(model, cfg),
    );
    let sol = solve_timed(model, cfg, warm, None);
    lp_metrics().record(&sol.stats);
    sol
}

/// [`solve_with`] minus the span and metrics flush: runs the backend and
/// stamps `solve_seconds`. The batch path reuses this for lanes that solve
/// sequentially — the results are bitwise identical to [`solve_with`]'s
/// while the batch stays in charge of its own metrics accounting.
fn solve_timed(
    model: &Model,
    cfg: &SolverConfig,
    warm: Option<&WarmStart>,
    pre: Option<StandardLp>,
) -> Solution {
    // arrow-lint: allow(wall-clock-in-core) — solve wall time reported in SolveStats; iteration counts, not time, bound the solve
    let start = std::time::Instant::now();
    let mut sol = solve_inner(model, cfg, warm, pre, start);
    sol.stats.solve_seconds = start.elapsed().as_secs_f64();
    sol
}

/// Process-global work counters, flushed once per solve (never per pivot —
/// the hot loops accumulate locally in [`SolveStats`]).
struct LpMetrics {
    solves: arrow_obs::Counter,
    solve_seconds: arrow_obs::Histogram,
    simplex_iterations: arrow_obs::Counter,
    simplex_refactors: arrow_obs::Counter,
    pdhg_iterations: arrow_obs::Counter,
    pdhg_restarts: arrow_obs::Counter,
    milp_nodes: arrow_obs::Counter,
    warm_hit: arrow_obs::Counter,
    warm_miss: arrow_obs::Counter,
    warm_cold: arrow_obs::Counter,
    batch_solves: arrow_obs::Counter,
    batch_lanes: arrow_obs::Counter,
    batch_groups: arrow_obs::Counter,
}

impl LpMetrics {
    /// Full flush for a standalone solve: count, latency sample, work.
    fn record(&self, stats: &SolveStats) {
        self.solves.inc();
        self.solve_seconds.observe(stats.solve_seconds);
        self.record_work(stats);
    }

    /// Backend work and warm-start counters only. [`solve_batch`] calls
    /// this per lane but samples `lp.solve.seconds` once per batch, so the
    /// latency quantiles reflect wall time actually spent instead of the
    /// panel width multiplying every shared-work sample.
    fn record_work(&self, stats: &SolveStats) {
        match stats.backend {
            BackendKind::Simplex => {
                self.simplex_iterations.add(stats.iterations as u64);
                self.simplex_refactors.add(stats.refactors as u64);
            }
            BackendKind::Pdhg => {
                self.pdhg_iterations.add(stats.iterations as u64);
                self.pdhg_restarts.add(stats.restarts as u64);
            }
            BackendKind::Milp => self.milp_nodes.add(stats.nodes as u64),
            BackendKind::None => {}
        }
        match stats.warm {
            WarmEvent::Hit => self.warm_hit.inc(),
            WarmEvent::Miss => self.warm_miss.inc(),
            WarmEvent::Cold => self.warm_cold.inc(),
        }
    }
}

fn lp_metrics() -> &'static LpMetrics {
    static METRICS: std::sync::OnceLock<LpMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| LpMetrics {
        solves: arrow_obs::metrics::counter("lp.solves"),
        solve_seconds: arrow_obs::metrics::histogram(
            "lp.solve.seconds",
            &[1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0],
        ),
        simplex_iterations: arrow_obs::metrics::counter("lp.simplex.iterations"),
        simplex_refactors: arrow_obs::metrics::counter("lp.simplex.refactors"),
        pdhg_iterations: arrow_obs::metrics::counter("lp.pdhg.iterations"),
        pdhg_restarts: arrow_obs::metrics::counter("lp.pdhg.restarts"),
        milp_nodes: arrow_obs::metrics::counter("lp.milp.nodes"),
        warm_hit: arrow_obs::metrics::counter("lp.warm.hit"),
        warm_miss: arrow_obs::metrics::counter("lp.warm.miss"),
        warm_cold: arrow_obs::metrics::counter("lp.warm.cold"),
        batch_solves: arrow_obs::metrics::counter("lp.batch.solves"),
        batch_lanes: arrow_obs::metrics::counter("lp.batch.lanes"),
        batch_groups: arrow_obs::metrics::counter("lp.batch.groups"),
    })
}

/// The backend label a solve of `model` under `cfg` will use, for span
/// attribution (`lp.solve{backend=...}`): branch & bound for integer
/// models, otherwise the resolved [`Backend`].
fn backend_label(model: &Model, cfg: &SolverConfig) -> &'static str {
    if model.num_int_vars() > 0 {
        return "milp";
    }
    match concrete_backend(cfg, model.num_cons()) {
        Backend::Simplex => "simplex",
        Backend::Pdhg => "pdhg",
        Backend::Auto => "auto",
    }
}

/// Resolves [`Backend::Auto`] by row count; pinned backends pass through.
fn concrete_backend(cfg: &SolverConfig, rows: usize) -> Backend {
    match cfg.backend {
        Backend::Auto => {
            if rows <= cfg.auto_threshold {
                Backend::Simplex
            } else {
                Backend::Pdhg
            }
        }
        b => b,
    }
}

fn solve_inner(
    model: &Model,
    cfg: &SolverConfig,
    warm: Option<&WarmStart>,
    // Standard form already lowered by the caller (the batch path lowers
    // every lane for structure grouping; recomputing it here would double
    // that work). `to_standard` is deterministic, so reuse is bitwise-free.
    pre: Option<StandardLp>,
    // arrow-lint: allow(wall-clock-in-core) — carries the caller's stats timestamp through; never branches on elapsed time
    start: std::time::Instant,
) -> Solution {
    if model.num_int_vars() > 0 {
        let mut s = milp::solve(model, &cfg.milp);
        s.stats.backend = BackendKind::Milp;
        s.stats.rows = model.num_cons();
        s.stats.cols = model.num_vars();
        s.stats.nnz = model.nnz();
        s
    } else {
        let full = pre.unwrap_or_else(|| model.to_standard());
        // Optional presolve: solve the reduced problem, expand the answer.
        // Presolve renumbers rows/columns, so warm starts are dropped here.
        let warm = if cfg.presolve { None } else { warm };
        let (lp, reduction) = if cfg.presolve {
            match crate::presolve::presolve(&full) {
                crate::presolve::PresolveResult::Infeasible => {
                    let mut s = Solution::failed(
                        crate::solution::Status::Infeasible,
                        full.num_vars(),
                        full.num_cons(),
                    );
                    s.stats.solve_seconds = start.elapsed().as_secs_f64();
                    return s;
                }
                crate::presolve::PresolveResult::Solved(mut s) => {
                    s.stats.solve_seconds = start.elapsed().as_secs_f64();
                    return s;
                }
                crate::presolve::PresolveResult::Reduced(r) => (r.lp.clone(), Some(r)),
            }
        } else {
            (full, None)
        };
        let backend = concrete_backend(cfg, lp.num_cons());
        let sol = if backend == Backend::Pdhg {
            pdhg::solve_warm(&lp, &cfg.pdhg, warm.and_then(|w| w.point.as_ref()))
        } else {
            simplex::solve_warm(&lp, &cfg.simplex, warm.and_then(|w| w.basis.as_ref()))
        };
        // Auto mode falls back to the first-order method when the simplex
        // loses numerical accuracy (rare, but recoverable).
        let sol = if cfg.backend == Backend::Auto
            && backend == Backend::Simplex
            && sol.status == crate::solution::Status::NumericalTrouble
        {
            pdhg::solve_warm(&lp, &cfg.pdhg, warm.and_then(|w| w.point.as_ref()))
        } else {
            sol
        };
        match reduction {
            Some(r) if sol.status.is_usable() => r.expand(&sol),
            _ => sol,
        }
    }
}

/// Solves with default configuration.
pub fn solve_default(model: &Model) -> Solution {
    solve(model, &SolverConfig::default())
}

/// Solves a family of models as one batch, sharing panel work where the
/// structure allows.
///
/// Lanes are grouped by constraint structure — a
/// [`StandardLp::structure_digest`] prefilter confirmed by
/// [`StandardLp::same_structure`] — and any group of two or more lanes that
/// routes to the PDHG backend runs through the struct-of-arrays multi-RHS
/// kernel ([`pdhg::solve_batch`]). Every other lane (simplex-routed,
/// integer, presolve-enabled, or structurally unique) solves sequentially
/// through exactly the code path [`solve_with`] uses. Either way each
/// lane's [`Solution`] is **bitwise identical** to its sequential result;
/// only the accounting differs: [`SolveStats::lanes`] records the panel
/// width, batched lanes report an amortized [`SolveStats::solve_seconds`],
/// and `lp.solve.seconds` is sampled once for the whole batch.
///
/// An empty slice returns an empty vec.
pub fn solve_batch(models: &[Model], cfg: &SolverConfig) -> Vec<Solution> {
    if models.is_empty() {
        return Vec::new();
    }
    let _span = arrow_obs::span!(
        "lp.solve_batch",
        "lanes" => models.len(),
        "backend" => models.first().map_or("none", |m| backend_label(m, cfg)),
    );
    // arrow-lint: allow(wall-clock-in-core) — batch wall time feeds the latency histogram; never branches on elapsed time
    let start = std::time::Instant::now();
    // Lower continuous, non-presolve lanes to standard form for grouping;
    // integer models and presolve-enabled configs stay sequential (their
    // pipelines renumber rows/columns, which a shared panel cannot).
    let mut standards: Vec<Option<StandardLp>> = models
        .iter()
        .map(|m| if m.num_int_vars() > 0 || cfg.presolve { None } else { Some(m.to_standard()) })
        .collect();
    // Group batchable lanes by structure: digest prefilter, exact confirm.
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, lp) in standards.iter().enumerate() {
        let Some(lp) = lp else { continue };
        let digest = lp.structure_digest();
        let mut placed = false;
        for (d, lanes) in groups.iter_mut() {
            if *d != digest {
                continue;
            }
            let confirmed = match &standards[lanes[0]] {
                Some(rep) => rep.same_structure(lp),
                None => false,
            };
            if confirmed {
                lanes.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push((digest, vec![i]));
        }
    }
    let mut out: Vec<Option<Solution>> = models.iter().map(|_| None).collect();
    let mut pdhg_groups = 0usize;
    for (_, lanes) in &groups {
        let rows = match &standards[lanes[0]] {
            Some(rep) => rep.num_cons(),
            None => continue,
        };
        if lanes.len() < 2 || concrete_backend(cfg, rows) != Backend::Pdhg {
            continue;
        }
        let lps: Vec<StandardLp> = lanes.iter().filter_map(|&i| standards[i].take()).collect();
        if lps.len() != lanes.len() {
            // Unreachable by construction; the lanes fall back to the
            // sequential path below rather than panicking.
            continue;
        }
        if let Ok(batch) = BatchedModel::from_standard(&lps) {
            for (&i, s) in lanes.iter().zip(pdhg::solve_batch(&batch, &cfg.pdhg)) {
                out[i] = Some(s);
            }
            pdhg_groups += 1;
        }
    }
    // Everything not solved by a panel runs the exact sequential path.
    for (i, slot) in out.iter_mut().enumerate() {
        if slot.is_none() {
            let mut s = solve_timed(&models[i], cfg, None, standards[i].take());
            s.stats.lanes = 1;
            *slot = Some(s);
        }
    }
    // Metrics: per-lane work counters, one latency sample for the batch.
    let metrics = lp_metrics();
    metrics.batch_solves.inc();
    metrics.batch_lanes.add(models.len() as u64);
    metrics.batch_groups.add(pdhg_groups as u64);
    metrics.solve_seconds.observe(start.elapsed().as_secs_f64());
    let sols: Vec<Solution> = out
        .into_iter()
        .map(|s| match s {
            Some(s) => s,
            None => Solution::failed(crate::solution::Status::NumericalTrouble, 0, 0),
        })
        .collect();
    for s in &sols {
        metrics.solves.inc();
        metrics.record_work(&s.stats);
    }
    sols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Objective, Sense};
    use crate::solution::Status;

    fn tiny_model() -> Model {
        let mut m = Model::new();
        let x = m.add_var(0.0, 4.0, "x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 6.0, "cap");
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
        m
    }

    #[test]
    fn auto_picks_simplex_for_tiny_model() {
        let s = solve_default(&tiny_model());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn pinned_backends_agree() {
        let m = tiny_model();
        let a = solve(&m, &SolverConfig::exact());
        let b = solve(&m, &SolverConfig::first_order(1e-8));
        assert_eq!(a.status, Status::Optimal);
        assert_eq!(b.status, Status::Optimal);
        assert!((a.objective - b.objective).abs() < 1e-4);
    }

    #[test]
    fn integer_model_routes_to_milp() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 9.0, "x");
        m.add_con(LinExpr::term(x, 2.0), Sense::Le, 7.0, "cap");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let s = solve_default(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(s.stats.nodes >= 1);
    }

    #[test]
    fn solve_records_wall_time() {
        let s = solve_default(&tiny_model());
        assert!(s.stats.solve_seconds >= 0.0);
    }

    #[test]
    fn solve_flushes_obs_counters() {
        let before = arrow_obs::metrics::snapshot();
        let s = solve(&tiny_model(), &SolverConfig::exact());
        let after = arrow_obs::metrics::snapshot();
        // The simplex always refactorizes at least once (initial basis).
        assert!(s.stats.refactors >= 1);
        assert!(after.counter("lp.solves") > before.counter("lp.solves"));
        assert!(after.counter("lp.warm.cold") > before.counter("lp.warm.cold"));
        assert!(
            after.counter("lp.simplex.refactors")
                >= before.counter("lp.simplex.refactors") + s.stats.refactors as u64
        );
        let hist = after.histogram("lp.solve.seconds").expect("registered");
        assert!(hist.count > before.histogram("lp.solve.seconds").map_or(0, |h| h.count));
    }
}
#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::model::{LinExpr, Objective, Sense};
    use crate::solution::Status;

    fn tiny_with_rhs(r: f64) -> Model {
        let mut m = Model::new();
        let x = m.add_var(0.0, 4.0, "x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, r, "cap");
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
        m
    }

    fn two_con_model(cap: f64) -> Model {
        let mut m = Model::new();
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 2.0), Sense::Le, cap, "c1");
        m.add_con(LinExpr::new().add(x, 3.0).add(y, 1.0), Sense::Le, cap + 2.0, "c2");
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0), Objective::Maximize);
        m
    }

    fn assert_bitwise(a: &Solution, b: &Solution) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "objective bits differ");
        assert_eq!(a.x.len(), b.x.len());
        for (i, (xa, xb)) in a.x.iter().zip(&b.x).enumerate() {
            assert_eq!(xa.to_bits(), xb.to_bits(), "x[{i}] differs: {xa} vs {xb}");
        }
        assert_eq!(a.duals.len(), b.duals.len());
        for (i, (da, db)) in a.duals.iter().zip(&b.duals).enumerate() {
            assert_eq!(da.to_bits(), db.to_bits(), "dual[{i}] differs: {da} vs {db}");
        }
    }

    #[test]
    fn empty_batch_returns_empty() {
        assert!(solve_batch(&[], &SolverConfig::default()).is_empty());
    }

    #[test]
    fn mixed_batch_is_bitwise_identical_to_sequential() {
        let mut int_model = Model::new();
        let xi = int_model.add_int_var(0.0, 9.0, "x");
        int_model.add_con(LinExpr::term(xi, 2.0), Sense::Le, 7.0, "cap");
        int_model.set_objective(LinExpr::term(xi, 1.0), Objective::Maximize);
        // Two structural families interleaved with an integer lane: under a
        // pinned PDHG config, lanes {0, 2} and {1, 4} form panels while the
        // integer lane stays sequential; under Auto everything routes to
        // the simplex. Results must be bitwise sequential either way.
        let models = vec![
            tiny_with_rhs(6.0),
            two_con_model(8.0),
            tiny_with_rhs(9.0),
            int_model,
            two_con_model(5.0),
        ];
        for cfg in [SolverConfig::default(), SolverConfig::first_order(1e-7)] {
            let batched = solve_batch(&models, &cfg);
            assert_eq!(batched.len(), models.len());
            for (model, b) in models.iter().zip(&batched) {
                let seq = solve(model, &cfg);
                assert_bitwise(&seq, b);
            }
        }
    }

    #[test]
    fn batch_with_empty_model_lane_solves_cleanly() {
        let models = vec![Model::new(), tiny_with_rhs(6.0)];
        let sols = solve_batch(&models, &SolverConfig::default());
        assert_eq!(sols.len(), 2);
        assert_eq!(sols[0].status, Status::Optimal);
        assert!(sols[0].x.is_empty());
        assert_eq!(sols[1].status, Status::Optimal);
    }

    #[test]
    fn batch_latency_is_amortized_not_multiplied() {
        let models: Vec<Model> = (0..4).map(|i| tiny_with_rhs(5.0 + i as f64)).collect();
        let cfg = SolverConfig::first_order(1e-6);
        let before = arrow_obs::metrics::snapshot();
        // arrow-lint: allow(wall-clock-in-core) — test-only timing assertion
        let t = std::time::Instant::now();
        let sols = solve_batch(&models, &cfg);
        let wall = t.elapsed().as_secs_f64();
        let after = arrow_obs::metrics::snapshot();
        // All four lanes share one PDHG panel...
        for s in &sols {
            assert_eq!(s.status, Status::Optimal);
            assert_eq!(s.stats.lanes, 4);
        }
        // ...and the per-lane seconds are amortized shares of the batch
        // wall, so they sum to roughly the wall — not 4x it. (Counters are
        // process-global and other tests run concurrently, so the global
        // assertions are one-sided.)
        let total: f64 = sols.iter().map(|s| s.stats.solve_seconds).sum();
        assert!(total <= wall * 1.5 + 1e-3, "sum of lane seconds {total} vs wall {wall}");
        assert!(after.counter("lp.batch.solves") > before.counter("lp.batch.solves"));
        assert!(after.counter("lp.batch.lanes") >= before.counter("lp.batch.lanes") + 4);
        assert!(after.counter("lp.batch.groups") > before.counter("lp.batch.groups"));
        assert!(after.counter("lp.solves") >= before.counter("lp.solves") + 4);
        let hist = after.histogram("lp.solve.seconds").expect("registered");
        assert!(hist.count > before.histogram("lp.solve.seconds").map_or(0, |h| h.count));
    }
}

#[cfg(test)]
mod presolve_integration_tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense};
    use crate::solution::Status;

    #[test]
    fn presolve_enabled_matches_direct_solve() {
        let mut m = Model::new();
        let fixed = m.add_var(2.0, 2.0, "fixed");
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 7.0, "bound_row");
        m.add_con(LinExpr::new().add(fixed, 1.0).add(x, 1.0).add(y, 1.0), Sense::Le, 12.0, "mix");
        m.set_objective(
            LinExpr::new().add(x, 2.0).add(y, 1.0).add(fixed, 1.0),
            Objective::Maximize,
        );
        let plain = solve(&m, &SolverConfig::default());
        let pre = solve(&m, &SolverConfig { presolve: true, ..Default::default() });
        assert_eq!(plain.status, Status::Optimal);
        assert_eq!(pre.status, Status::Optimal);
        assert!((plain.objective - pre.objective).abs() < 1e-6);
        assert_eq!(pre.x.len(), m.num_vars());
        assert_eq!(pre.x[0], 2.0);
    }

    #[test]
    fn presolve_reports_infeasibility_without_a_backend_call() {
        let mut m = Model::new();
        let x = m.add_var(5.0, 5.0, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 1.0, "impossible");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        let s = solve(&m, &SolverConfig { presolve: true, ..Default::default() });
        assert_eq!(s.status, Status::Infeasible);
    }
}
