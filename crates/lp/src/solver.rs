//! Backend selection: one entry point for every LP/MILP in the workspace.
//!
//! Formulation code builds a [`Model`](crate::model::Model) and calls
//! [`solve`]; the backend is chosen by problem size unless pinned. The
//! crossover threshold favours the exact simplex for anything it can finish
//! quickly and the first-order PDHG solver beyond that.

use crate::milp::{self, MilpConfig};
use crate::model::Model;
use crate::pdhg::{self, PdhgConfig};
use crate::simplex::{self, SimplexConfig};
use crate::solution::{Solution, SolveStats};
use crate::warm::{BackendKind, WarmEvent, WarmStart};

/// Which algorithm executes the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick by size: simplex below [`SolverConfig::auto_threshold`] rows,
    /// PDHG above. Models with integer variables always use branch & bound.
    #[default]
    Auto,
    /// Dense two-phase simplex (exact; small/medium problems).
    Simplex,
    /// Restarted averaged PDHG (approximate to tolerance; large problems).
    Pdhg,
}

/// Combined solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Backend choice.
    pub backend: Backend,
    /// Row-count threshold for [`Backend::Auto`].
    pub auto_threshold: usize,
    /// Run [`crate::presolve`] before the backend (fixed variables,
    /// singleton/empty rows, empty columns). Duals of eliminated rows are
    /// reported as zero. Off by default: ARROW's TE rows are rarely
    /// eliminable, so the pass usually costs more than it saves — enable
    /// it for models with many fixed variables or bound-like rows.
    pub presolve: bool,
    /// Simplex knobs.
    pub simplex: SimplexConfig,
    /// PDHG knobs.
    pub pdhg: PdhgConfig,
    /// Branch-and-bound knobs (integer models).
    pub milp: MilpConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            backend: Backend::Auto,
            auto_threshold: 1200,
            presolve: false,
            simplex: SimplexConfig::default(),
            pdhg: PdhgConfig::default(),
            milp: MilpConfig::default(),
        }
    }
}

impl SolverConfig {
    /// A configuration pinned to the exact simplex backend.
    pub fn exact() -> Self {
        SolverConfig { backend: Backend::Simplex, ..Default::default() }
    }

    /// A configuration pinned to the PDHG backend with the given tolerance.
    pub fn first_order(tol: f64) -> Self {
        let mut cfg = SolverConfig { backend: Backend::Pdhg, ..Default::default() };
        cfg.pdhg.tol = tol;
        cfg
    }
}

/// Solves `model` with the configured backend, timing the call.
pub fn solve(model: &Model, cfg: &SolverConfig) -> Solution {
    solve_with(model, cfg, None)
}

/// [`solve`] with an optional [`WarmStart`] from a previous solve of a
/// structurally identical model.
///
/// Each backend consumes the component it understands — simplex the basis,
/// PDHG the primal–dual point — and records a hit/miss in
/// [`SolveStats`](crate::solution::SolveStats). The MILP backend and the
/// presolve path ignore warm starts (presolve renumbers columns, which
/// would silently misalign the point).
pub fn solve_with(model: &Model, cfg: &SolverConfig, warm: Option<&WarmStart>) -> Solution {
    let _span = arrow_obs::span!(
        "lp.solve",
        "rows" => model.num_cons(),
        "cols" => model.num_vars(),
        "warm" => warm.is_some(),
    );
    // arrow-lint: allow(wall-clock-in-core) — solve wall time reported in SolveStats; iteration counts, not time, bound the solve
    let start = std::time::Instant::now();
    let mut sol = solve_inner(model, cfg, warm, start);
    sol.stats.solve_seconds = start.elapsed().as_secs_f64();
    lp_metrics().record(&sol.stats);
    sol
}

/// Process-global work counters, flushed once per solve (never per pivot —
/// the hot loops accumulate locally in [`SolveStats`]).
struct LpMetrics {
    solves: arrow_obs::Counter,
    solve_seconds: arrow_obs::Histogram,
    simplex_iterations: arrow_obs::Counter,
    simplex_refactors: arrow_obs::Counter,
    pdhg_iterations: arrow_obs::Counter,
    pdhg_restarts: arrow_obs::Counter,
    milp_nodes: arrow_obs::Counter,
    warm_hit: arrow_obs::Counter,
    warm_miss: arrow_obs::Counter,
    warm_cold: arrow_obs::Counter,
}

impl LpMetrics {
    fn record(&self, stats: &SolveStats) {
        self.solves.inc();
        self.solve_seconds.observe(stats.solve_seconds);
        match stats.backend {
            BackendKind::Simplex => {
                self.simplex_iterations.add(stats.iterations as u64);
                self.simplex_refactors.add(stats.refactors as u64);
            }
            BackendKind::Pdhg => {
                self.pdhg_iterations.add(stats.iterations as u64);
                self.pdhg_restarts.add(stats.restarts as u64);
            }
            BackendKind::Milp => self.milp_nodes.add(stats.nodes as u64),
            BackendKind::None => {}
        }
        match stats.warm {
            WarmEvent::Hit => self.warm_hit.inc(),
            WarmEvent::Miss => self.warm_miss.inc(),
            WarmEvent::Cold => self.warm_cold.inc(),
        }
    }
}

fn lp_metrics() -> &'static LpMetrics {
    static METRICS: std::sync::OnceLock<LpMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| LpMetrics {
        solves: arrow_obs::metrics::counter("lp.solves"),
        solve_seconds: arrow_obs::metrics::histogram(
            "lp.solve.seconds",
            &[1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0],
        ),
        simplex_iterations: arrow_obs::metrics::counter("lp.simplex.iterations"),
        simplex_refactors: arrow_obs::metrics::counter("lp.simplex.refactors"),
        pdhg_iterations: arrow_obs::metrics::counter("lp.pdhg.iterations"),
        pdhg_restarts: arrow_obs::metrics::counter("lp.pdhg.restarts"),
        milp_nodes: arrow_obs::metrics::counter("lp.milp.nodes"),
        warm_hit: arrow_obs::metrics::counter("lp.warm.hit"),
        warm_miss: arrow_obs::metrics::counter("lp.warm.miss"),
        warm_cold: arrow_obs::metrics::counter("lp.warm.cold"),
    })
}

fn solve_inner(
    model: &Model,
    cfg: &SolverConfig,
    warm: Option<&WarmStart>,
    // arrow-lint: allow(wall-clock-in-core) — carries the caller's stats timestamp through; never branches on elapsed time
    start: std::time::Instant,
) -> Solution {
    if model.num_int_vars() > 0 {
        let mut s = milp::solve(model, &cfg.milp);
        s.stats.backend = BackendKind::Milp;
        s.stats.rows = model.num_cons();
        s.stats.cols = model.num_vars();
        s.stats.nnz = model.nnz();
        s
    } else {
        let full = model.to_standard();
        // Optional presolve: solve the reduced problem, expand the answer.
        // Presolve renumbers rows/columns, so warm starts are dropped here.
        let warm = if cfg.presolve { None } else { warm };
        let (lp, reduction) = if cfg.presolve {
            match crate::presolve::presolve(&full) {
                crate::presolve::PresolveResult::Infeasible => {
                    let mut s = Solution::failed(
                        crate::solution::Status::Infeasible,
                        full.num_vars(),
                        full.num_cons(),
                    );
                    s.stats.solve_seconds = start.elapsed().as_secs_f64();
                    return s;
                }
                crate::presolve::PresolveResult::Solved(mut s) => {
                    s.stats.solve_seconds = start.elapsed().as_secs_f64();
                    return s;
                }
                crate::presolve::PresolveResult::Reduced(r) => (r.lp.clone(), Some(r)),
            }
        } else {
            (full, None)
        };
        let backend = match cfg.backend {
            Backend::Auto => {
                if lp.num_cons() <= cfg.auto_threshold {
                    Backend::Simplex
                } else {
                    Backend::Pdhg
                }
            }
            b => b,
        };
        let sol = match backend {
            Backend::Simplex => {
                simplex::solve_warm(&lp, &cfg.simplex, warm.and_then(|w| w.basis.as_ref()))
            }
            Backend::Pdhg => pdhg::solve_warm(&lp, &cfg.pdhg, warm.and_then(|w| w.point.as_ref())),
            Backend::Auto => unreachable!(),
        };
        // Auto mode falls back to the first-order method when the simplex
        // loses numerical accuracy (rare, but recoverable).
        let sol = if cfg.backend == Backend::Auto
            && backend == Backend::Simplex
            && sol.status == crate::solution::Status::NumericalTrouble
        {
            pdhg::solve_warm(&lp, &cfg.pdhg, warm.and_then(|w| w.point.as_ref()))
        } else {
            sol
        };
        match reduction {
            Some(r) if sol.status.is_usable() => r.expand(&sol),
            _ => sol,
        }
    }
}

/// Solves with default configuration.
pub fn solve_default(model: &Model) -> Solution {
    solve(model, &SolverConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Objective, Sense};
    use crate::solution::Status;

    fn tiny_model() -> Model {
        let mut m = Model::new();
        let x = m.add_var(0.0, 4.0, "x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 6.0, "cap");
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
        m
    }

    #[test]
    fn auto_picks_simplex_for_tiny_model() {
        let s = solve_default(&tiny_model());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn pinned_backends_agree() {
        let m = tiny_model();
        let a = solve(&m, &SolverConfig::exact());
        let b = solve(&m, &SolverConfig::first_order(1e-8));
        assert_eq!(a.status, Status::Optimal);
        assert_eq!(b.status, Status::Optimal);
        assert!((a.objective - b.objective).abs() < 1e-4);
    }

    #[test]
    fn integer_model_routes_to_milp() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 9.0, "x");
        m.add_con(LinExpr::term(x, 2.0), Sense::Le, 7.0, "cap");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let s = solve_default(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(s.stats.nodes >= 1);
    }

    #[test]
    fn solve_records_wall_time() {
        let s = solve_default(&tiny_model());
        assert!(s.stats.solve_seconds >= 0.0);
    }

    #[test]
    fn solve_flushes_obs_counters() {
        let before = arrow_obs::metrics::snapshot();
        let s = solve(&tiny_model(), &SolverConfig::exact());
        let after = arrow_obs::metrics::snapshot();
        // The simplex always refactorizes at least once (initial basis).
        assert!(s.stats.refactors >= 1);
        assert!(after.counter("lp.solves") > before.counter("lp.solves"));
        assert!(after.counter("lp.warm.cold") > before.counter("lp.warm.cold"));
        assert!(
            after.counter("lp.simplex.refactors")
                >= before.counter("lp.simplex.refactors") + s.stats.refactors as u64
        );
        let hist = after.histogram("lp.solve.seconds").expect("registered");
        assert!(hist.count > before.histogram("lp.solve.seconds").map_or(0, |h| h.count));
    }
}
#[cfg(test)]
mod presolve_integration_tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense};
    use crate::solution::Status;

    #[test]
    fn presolve_enabled_matches_direct_solve() {
        let mut m = Model::new();
        let fixed = m.add_var(2.0, 2.0, "fixed");
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 7.0, "bound_row");
        m.add_con(LinExpr::new().add(fixed, 1.0).add(x, 1.0).add(y, 1.0), Sense::Le, 12.0, "mix");
        m.set_objective(
            LinExpr::new().add(x, 2.0).add(y, 1.0).add(fixed, 1.0),
            Objective::Maximize,
        );
        let plain = solve(&m, &SolverConfig::default());
        let pre = solve(&m, &SolverConfig { presolve: true, ..Default::default() });
        assert_eq!(plain.status, Status::Optimal);
        assert_eq!(pre.status, Status::Optimal);
        assert!((plain.objective - pre.objective).abs() < 1e-6);
        assert_eq!(pre.x.len(), m.num_vars());
        assert_eq!(pre.x[0], 2.0);
    }

    #[test]
    fn presolve_reports_infeasibility_without_a_backend_call() {
        let mut m = Model::new();
        let x = m.add_var(5.0, 5.0, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 1.0, "impossible");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        let s = solve(&m, &SolverConfig { presolve: true, ..Default::default() });
        assert_eq!(s.status, Status::Infeasible);
    }
}
