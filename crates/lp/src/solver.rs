//! Backend selection: one entry point for every LP/MILP in the workspace.
//!
//! Formulation code builds a [`Model`](crate::model::Model) and calls
//! [`solve`]; the backend is chosen by problem size unless pinned. The
//! crossover threshold favours the exact simplex for anything it can finish
//! quickly and the first-order PDHG solver beyond that.

use crate::milp::{self, MilpConfig};
use crate::model::Model;
use crate::pdhg::{self, PdhgConfig};
use crate::simplex::{self, SimplexConfig};
use crate::solution::Solution;
use crate::warm::{BackendKind, WarmStart};

/// Which algorithm executes the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick by size: simplex below [`SolverConfig::auto_threshold`] rows,
    /// PDHG above. Models with integer variables always use branch & bound.
    #[default]
    Auto,
    /// Dense two-phase simplex (exact; small/medium problems).
    Simplex,
    /// Restarted averaged PDHG (approximate to tolerance; large problems).
    Pdhg,
}

/// Combined solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Backend choice.
    pub backend: Backend,
    /// Row-count threshold for [`Backend::Auto`].
    pub auto_threshold: usize,
    /// Run [`crate::presolve`] before the backend (fixed variables,
    /// singleton/empty rows, empty columns). Duals of eliminated rows are
    /// reported as zero. Off by default: ARROW's TE rows are rarely
    /// eliminable, so the pass usually costs more than it saves — enable
    /// it for models with many fixed variables or bound-like rows.
    pub presolve: bool,
    /// Simplex knobs.
    pub simplex: SimplexConfig,
    /// PDHG knobs.
    pub pdhg: PdhgConfig,
    /// Branch-and-bound knobs (integer models).
    pub milp: MilpConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            backend: Backend::Auto,
            auto_threshold: 1200,
            presolve: false,
            simplex: SimplexConfig::default(),
            pdhg: PdhgConfig::default(),
            milp: MilpConfig::default(),
        }
    }
}

impl SolverConfig {
    /// A configuration pinned to the exact simplex backend.
    pub fn exact() -> Self {
        SolverConfig { backend: Backend::Simplex, ..Default::default() }
    }

    /// A configuration pinned to the PDHG backend with the given tolerance.
    pub fn first_order(tol: f64) -> Self {
        let mut cfg = SolverConfig { backend: Backend::Pdhg, ..Default::default() };
        cfg.pdhg.tol = tol;
        cfg
    }
}

/// Solves `model` with the configured backend, timing the call.
pub fn solve(model: &Model, cfg: &SolverConfig) -> Solution {
    solve_with(model, cfg, None)
}

/// [`solve`] with an optional [`WarmStart`] from a previous solve of a
/// structurally identical model.
///
/// Each backend consumes the component it understands — simplex the basis,
/// PDHG the primal–dual point — and records a hit/miss in
/// [`SolveStats`](crate::solution::SolveStats). The MILP backend and the
/// presolve path ignore warm starts (presolve renumbers columns, which
/// would silently misalign the point).
pub fn solve_with(model: &Model, cfg: &SolverConfig, warm: Option<&WarmStart>) -> Solution {
    let start = std::time::Instant::now();
    let mut sol = if model.num_int_vars() > 0 {
        let mut s = milp::solve(model, &cfg.milp);
        s.stats.backend = BackendKind::Milp;
        s.stats.rows = model.num_cons();
        s.stats.cols = model.num_vars();
        s.stats.nnz = model.nnz();
        s
    } else {
        let full = model.to_standard();
        // Optional presolve: solve the reduced problem, expand the answer.
        // Presolve renumbers rows/columns, so warm starts are dropped here.
        let warm = if cfg.presolve { None } else { warm };
        let (lp, reduction) = if cfg.presolve {
            match crate::presolve::presolve(&full) {
                crate::presolve::PresolveResult::Infeasible => {
                    let mut s = Solution::failed(
                        crate::solution::Status::Infeasible,
                        full.num_vars(),
                        full.num_cons(),
                    );
                    s.stats.solve_seconds = start.elapsed().as_secs_f64();
                    return s;
                }
                crate::presolve::PresolveResult::Solved(mut s) => {
                    s.stats.solve_seconds = start.elapsed().as_secs_f64();
                    return s;
                }
                crate::presolve::PresolveResult::Reduced(r) => (r.lp.clone(), Some(r)),
            }
        } else {
            (full, None)
        };
        let backend = match cfg.backend {
            Backend::Auto => {
                if lp.num_cons() <= cfg.auto_threshold {
                    Backend::Simplex
                } else {
                    Backend::Pdhg
                }
            }
            b => b,
        };
        let sol = match backend {
            Backend::Simplex => {
                simplex::solve_warm(&lp, &cfg.simplex, warm.and_then(|w| w.basis.as_ref()))
            }
            Backend::Pdhg => {
                pdhg::solve_warm(&lp, &cfg.pdhg, warm.and_then(|w| w.point.as_ref()))
            }
            Backend::Auto => unreachable!(),
        };
        // Auto mode falls back to the first-order method when the simplex
        // loses numerical accuracy (rare, but recoverable).
        let sol = if cfg.backend == Backend::Auto
            && backend == Backend::Simplex
            && sol.status == crate::solution::Status::NumericalTrouble
        {
            pdhg::solve_warm(&lp, &cfg.pdhg, warm.and_then(|w| w.point.as_ref()))
        } else {
            sol
        };
        match reduction {
            Some(r) if sol.status.is_usable() => r.expand(&sol),
            _ => sol,
        }
    };
    sol.stats.solve_seconds = start.elapsed().as_secs_f64();
    sol
}

/// Solves with default configuration.
pub fn solve_default(model: &Model) -> Solution {
    solve(model, &SolverConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Objective, Sense};
    use crate::solution::Status;

    fn tiny_model() -> Model {
        let mut m = Model::new();
        let x = m.add_var(0.0, 4.0, "x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::new().add(x, 1.0).add(y, 1.0), Sense::Le, 6.0, "cap");
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 1.0), Objective::Maximize);
        m
    }

    #[test]
    fn auto_picks_simplex_for_tiny_model() {
        let s = solve_default(&tiny_model());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn pinned_backends_agree() {
        let m = tiny_model();
        let a = solve(&m, &SolverConfig::exact());
        let b = solve(&m, &SolverConfig::first_order(1e-8));
        assert_eq!(a.status, Status::Optimal);
        assert_eq!(b.status, Status::Optimal);
        assert!((a.objective - b.objective).abs() < 1e-4);
    }

    #[test]
    fn integer_model_routes_to_milp() {
        let mut m = Model::new();
        let x = m.add_int_var(0.0, 9.0, "x");
        m.add_con(LinExpr::term(x, 2.0), Sense::Le, 7.0, "cap");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Maximize);
        let s = solve_default(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(s.stats.nodes >= 1);
    }

    #[test]
    fn solve_records_wall_time() {
        let s = solve_default(&tiny_model());
        assert!(s.stats.solve_seconds >= 0.0);
    }
}
#[cfg(test)]
mod presolve_integration_tests {
    use super::*;
    use crate::model::{LinExpr, Model, Objective, Sense};
    use crate::solution::Status;

    #[test]
    fn presolve_enabled_matches_direct_solve() {
        let mut m = Model::new();
        let fixed = m.add_var(2.0, 2.0, "fixed");
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 7.0, "bound_row");
        m.add_con(
            LinExpr::new().add(fixed, 1.0).add(x, 1.0).add(y, 1.0),
            Sense::Le,
            12.0,
            "mix",
        );
        m.set_objective(
            LinExpr::new().add(x, 2.0).add(y, 1.0).add(fixed, 1.0),
            Objective::Maximize,
        );
        let plain = solve(&m, &SolverConfig::default());
        let pre = solve(&m, &SolverConfig { presolve: true, ..Default::default() });
        assert_eq!(plain.status, Status::Optimal);
        assert_eq!(pre.status, Status::Optimal);
        assert!((plain.objective - pre.objective).abs() < 1e-6);
        assert_eq!(pre.x.len(), m.num_vars());
        assert_eq!(pre.x[0], 2.0);
    }

    #[test]
    fn presolve_reports_infeasibility_without_a_backend_call() {
        let mut m = Model::new();
        let x = m.add_var(5.0, 5.0, "x");
        m.add_con(LinExpr::term(x, 1.0), Sense::Le, 1.0, "impossible");
        m.set_objective(LinExpr::term(x, 1.0), Objective::Minimize);
        let s = solve(&m, &SolverConfig { presolve: true, ..Default::default() });
        assert_eq!(s.status, Status::Infeasible);
    }
}
