//! Fig. 22 — the IP↔optical mapping distributions guiding IP-layer
//! generation: (a) IP links per fiber, (b) wavelengths per IP link.
//!
//! Paper: the IP topology is denser than the optical topology; most IP
//! links carry a handful of wavelengths with a heavy tail.

use arrow_bench::{banner, print_cdf, summary};
use arrow_topology::facebook_like;

fn main() {
    banner(
        "fig22",
        "IP links per fiber and wavelengths per IP link (Facebook-like)",
        "Fig. 22: dense IP layer over sparse optical layer",
    );
    let wan = facebook_like(17);
    let per_fiber: Vec<f64> = wan.ip_links_per_fiber().iter().map(|&c| c as f64).collect();
    let per_link: Vec<f64> = wan.wavelengths_per_link().iter().map(|&c| c as f64).collect();
    print_cdf("IP links per fiber", &per_fiber, 10);
    print_cdf("wavelengths per IP link", &per_link, 10);
    let mean_lpf = per_fiber.iter().sum::<f64>() / per_fiber.len() as f64;
    let mean_wpl = per_link.iter().sum::<f64>() / per_link.len() as f64;
    summary(
        "fig22",
        "IP layer denser than optical; wavelength counts heavy-tailed",
        &format!(
            "mean {:.1} IP links/fiber ({} links over {} fibers); mean {:.1} λ/IP link (max {:.0})",
            mean_lpf,
            wan.num_links(),
            wan.optical.num_fibers(),
            mean_wpl,
            per_link.iter().fold(0.0f64, |a, &b| a.max(b)),
        ),
    );
}
