//! Fig. 12 — end-to-end restoration latency: state-of-the-art amplifier
//! reconfiguration vs ARROW's noise loading.
//!
//! Paper: 1,021 s (≈17 min) legacy vs 8 s with ARROW — 127× faster; the
//! existing wavelengths on the surrogate fibers are unaffected.

use arrow_bench::{banner, summary};
use arrow_sim::{build_testbed, restoration_trial, RoadmParams};

fn main() {
    banner(
        "fig12",
        "restoration latency with vs without noise loading",
        "Fig. 12: 1,021 s legacy vs 8 s ARROW (127x)",
    );
    let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
    let params = RoadmParams::default();
    let legacy = restoration_trial(&tb, tb.fibers[3], false, &params);
    let arrow = restoration_trial(&tb, tb.fibers[3], true, &params);

    for (label, trial) in [("legacy", &legacy), ("ARROW", &arrow)] {
        println!("{label} restoration timeline:");
        for p in &trial.timeline {
            println!("  t={:8.1}s  restored {:6.0} Gbps", p.time_s, p.restored_gbps);
        }
        println!("  -> total {:.1} s\n", trial.total_latency_s);
    }
    let ratio = legacy.total_latency_s / arrow.total_latency_s;
    summary(
        "fig12",
        "legacy 1,021 s vs ARROW 8 s (127x)",
        &format!(
            "legacy {:.0} s vs ARROW {:.1} s ({:.0}x)",
            legacy.total_latency_s, arrow.total_latency_s, ratio
        ),
    );
    assert!(arrow.total_latency_s < 15.0);
    assert!(ratio > 50.0);
}
