//! Fig. 21 — monthly wavelength deployments (Nov 2019 – Apr 2021), with
//! the COVID-19 surge from March 2020.

use arrow_bench::{banner, summary};
use arrow_topology::telemetry::monthly_wavelength_deployments;

fn main() {
    banner(
        "fig21",
        "monthly wavelength deployments",
        "Fig. 21: visible surge starting March 2020 (month 5 of the window)",
    );
    let months = 18; // Nov 2019 .. Apr 2021
    let series = monthly_wavelength_deployments(months, 5, 3);
    for (m, count) in series.iter().enumerate() {
        let bar = "#".repeat(count / 12);
        println!("  month {:>2}: {:>4} {}", m + 1, count, bar);
    }
    let before: f64 = series[..5].iter().sum::<usize>() as f64 / 5.0;
    let after: f64 = series[5..].iter().sum::<usize>() as f64 / (months - 5) as f64;
    summary(
        "fig21",
        "deployments increase markedly after the surge month",
        &format!(
            "mean {:.0}/month before vs {:.0}/month after ({:.1}x)",
            before,
            after,
            after / before
        ),
    );
}
