//! Table 4 — the simulation topologies.
//!
//! Paper: Facebook 34/84 routers/ROADMs, 156 fibers, 262 IP links, 12 TMs;
//! IBM 17/17, 23, 85, 30; B4 12/12, 19, 52, 30.

use arrow_bench::{banner, summary};
use arrow_topology::{b4, facebook_like, ibm};

fn main() {
    banner("table04", "network topologies used in the simulations", "Table 4");
    println!(
        "{:<10} {:>16} {:>8} {:>9} {:>10}",
        "topology", "routers/ROADMs", "fibers", "IP links", "paper TMs"
    );
    let rows = [(facebook_like(17), 12), (ibm(17), 30), (b4(17), 30)];
    let mut measured = Vec::new();
    for (wan, tms) in &rows {
        println!(
            "{:<10} {:>8}/{:<7} {:>8} {:>9} {:>10}",
            wan.name,
            wan.num_sites(),
            wan.optical.num_roadms(),
            wan.optical.num_fibers(),
            wan.num_links(),
            tms
        );
        measured.push(format!(
            "{} {}/{}/{}/{}",
            wan.name,
            wan.num_sites(),
            wan.optical.num_roadms(),
            wan.optical.num_fibers(),
            wan.num_links()
        ));
        wan.validate().expect("cross-layer mapping must be consistent");
    }
    summary("table04", "FB 34/84/156/262; IBM 17/17/23/85; B4 12/12/19/52", &measured.join("; "));
}
