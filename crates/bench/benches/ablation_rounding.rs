//! Ablation: Algorithm 1's randomized-rounding knobs.
//!
//! * **Stride δ** — how far rounding explores beyond the RWA optimum
//!   (paper's `randInt(1, δ)`; Theorem 3.1's κ has a `1/δ` factor per
//!   link, so large δ needs more tickets).
//! * **Feasibility filter** — §3.2 drops tickets the optical layer cannot
//!   realize; disabling it feeds the TE restoration promises that playback
//!   cannot honor.

use arrow_bench::{banner, setup_by_name, summary};
use arrow_core::{generate_tickets, realize_ticket, LotteryConfig};
use arrow_te::eval::{availability, PlaybackConfig};
use arrow_te::{Arrow, TeScheme};

fn main() {
    banner(
        "ablation_rounding",
        "rounding stride δ and the feasibility filter (B4, demand 8x)",
        "Algorithm 1 / §3.2 / Theorem 3.1",
    );
    let s = setup_by_name("B4");
    let inst = s.instances[0].scaled(8.0);
    let cfg = PlaybackConfig::default();
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>14}",
        "delta", "filter", "tickets", "throughput", "availability"
    );
    let mut kept: Vec<(usize, bool, f64)> = Vec::new();
    for delta in [1usize, 2, 4] {
        for filter in [true, false] {
            let tickets = generate_tickets(
                &s.wan,
                &inst.scenarios,
                &LotteryConfig {
                    num_tickets: 12,
                    delta,
                    feasibility_filter: filter,
                    ..Default::default()
                },
            );
            let total: usize = tickets.per_scenario.iter().map(|t| t.len()).sum();
            let mut out = Arrow::new(tickets).solve(&inst);
            let thr = out.alloc.throughput(&inst);
            // Ground the plan in optical reality before playback: an
            // unfiltered winning ticket may promise capacity the ROADMs
            // cannot actually switch.
            if let Some(plan) = out.restoration.take() {
                let lottery = LotteryConfig::default();
                out.restoration = Some(
                    inst.scenarios
                        .iter()
                        .zip(&plan)
                        .map(|(scen, t)| realize_ticket(&s.wan, scen, t, &lottery.rwa))
                        .collect(),
                );
            }
            let avail = availability(&inst, &out, &cfg);
            println!("{:>6} {:>8} {:>10} {:>12.4} {:>14.4}", delta, filter, total, thr, avail);
            kept.push((delta, filter, avail));
        }
    }
    // The filter's value: unfiltered tickets may promise unrealizable
    // capacity, which playback punishes.
    let with = kept.iter().filter(|&&(_, f, _)| f).map(|&(_, _, a)| a).fold(0.0, f64::max);
    let without = kept.iter().filter(|&&(_, f, _)| !f).map(|&(_, _, a)| a).fold(0.0, f64::max);
    summary(
        "ablation_rounding",
        "filter keeps tickets honest; δ trades exploration vs κ",
        &format!("best availability with filter {with:.4} vs without {without:.4}"),
    );
}
