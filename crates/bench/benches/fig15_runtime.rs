//! Fig. 15 — ARROW's TE optimization runtime (Phase I + Phase II LP solve
//! time) as the number of LotteryTickets grows.
//!
//! Paper: runtime grows with |Z|; the Facebook topology with 120 tickets
//! solves in 104 s on a 32-core EPYC with Gurobi — inside the 5-minute TE
//! deadline. Our solver stack and instance sizes differ, so the *shape*
//! (monotone growth, deadline comfortably met at bench sizes) is the
//! reproduction target.

use arrow_bench::{banner, setup_by_name, summary};
use arrow_core::{generate_tickets, LotteryConfig};
use arrow_te::Arrow;

fn main() {
    banner(
        "fig15",
        "ARROW TE solve time vs number of LotteryTickets",
        "Fig. 15: runtime grows with |Z|; 104 s @ Facebook/120 on Gurobi",
    );
    let mut worst: f64 = 0.0;
    for (topo, counts) in [
        ("B4", vec![1usize, 4, 8, 16, 32]),
        ("IBM", vec![1, 4, 8, 16]),
        ("Facebook", vec![1, 3, 5]),
    ] {
        let s = setup_by_name(topo);
        let inst = s.instances[0].scaled(1.5);
        println!("\n[{topo}] {} scenarios", inst.scenarios.len());
        println!("{:>6} {:>12} {:>12} {:>12}", "|Z|", "phase I (s)", "phase II (s)", "total (s)");
        for &z in &counts {
            let tickets = generate_tickets(
                &s.wan,
                &inst.scenarios,
                &LotteryConfig { num_tickets: z, ..Default::default() },
            );
            let outcome = Arrow::new(tickets).solve_detailed(&inst);
            let total = outcome.phase1_seconds + outcome.phase2_seconds;
            println!(
                "{:>6} {:>12.3} {:>12.3} {:>12.3}",
                z, outcome.phase1_seconds, outcome.phase2_seconds, total
            );
            worst = worst.max(total);
        }
    }
    summary(
        "fig15",
        "runtime grows with tickets, stays inside the 5-minute deadline",
        &format!("worst total solve {worst:.2} s (deadline 300 s)"),
    );
    assert!(worst < 300.0, "TE deadline exceeded");
}
