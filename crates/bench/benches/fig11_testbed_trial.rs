//! Fig. 11 — the end-to-end fiber-cut restoration trial on the §5 testbed:
//! cutting fiber C–D takes down 3 IP links / 14 wavelengths / 2.8 Tbps;
//! ARROW reconfigures them onto surrogate paths.

use arrow_bench::{banner, summary};
use arrow_sim::{build_testbed, restoration_trial, RoadmParams};

fn main() {
    banner(
        "fig11",
        "testbed restoration trial (4 ROADMs, 34 amps, 2,160 km)",
        "Fig. 11: cut of fiber CD fails A↔C, B↔D, C↔D (2.8 Tbps, 14 λ)",
    );
    let tb = build_testbed().expect("Fig. 10 testbed is self-consistent");
    println!("healthy IP links:");
    for (i, lp) in tb.net.lightpaths().iter().enumerate() {
        println!(
            "  link {}: {:?} ↔ {:?}  {} λ × {:.0}G = {:.1} Tbps over {} fiber(s)",
            i,
            lp.src,
            lp.dst,
            lp.wavelength_count(),
            lp.gbps_per_wavelength,
            lp.capacity_gbps() / 1000.0,
            lp.path.len()
        );
    }
    let cut = tb.fibers[3];
    let affected = tb.net.affected_lightpaths(&[cut]);
    println!("\ncutting fiber C–D: {} IP links fail", affected.len());
    let trial = restoration_trial(&tb, cut, true, &RoadmParams::default());
    println!(
        "restored {:.0} of {:.0} Gbps via surrogate paths in {:.1} s",
        trial.restored_gbps, trial.lost_gbps, trial.total_latency_s
    );
    summary(
        "fig11",
        "3 IP links fail; 2.8 Tbps reconfigured onto healthy fibers",
        &format!(
            "{} links fail; {:.1} of {:.1} Tbps restored",
            affected.len(),
            trial.restored_gbps / 1000.0,
            trial.lost_gbps / 1000.0
        ),
    );
    assert_eq!(affected.len(), 3);
    assert_eq!(trial.lost_gbps, 2800.0);
}
