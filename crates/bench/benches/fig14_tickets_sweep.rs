//! Fig. 14 — impact of the number of LotteryTickets on ARROW's throughput
//! (B4, heavily scaled demand).
//!
//! Paper: throughput fluctuates at small |Z| (randomized rounding may miss
//! good candidates), rises with |Z|, then plateaus once the tickets cover
//! a good set of restoration candidates; |Z| = 1 equals ARROW-Naive.

use arrow_bench::{banner, parallel_map, setup_by_name, summary};
use arrow_core::{generate_tickets, LotteryConfig};
use arrow_te::{Arrow, TeScheme};

fn main() {
    banner(
        "fig14",
        "ARROW throughput vs number of LotteryTickets (B4)",
        "Fig. 14: fluctuation at small |Z|, then a plateau",
    );
    let s = setup_by_name("B4");
    let inst = s.instances[0].scaled(8.0);
    let counts = [1usize, 2, 4, 6, 8, 12, 16, 24, 32];
    // Two rounding seeds illustrate the fluctuation at small |Z|.
    let jobs: Vec<(usize, u64)> = counts.iter().flat_map(|&z| [(z, 41u64), (z, 43u64)]).collect();
    let results = parallel_map(jobs.clone(), |&(z, seed)| {
        let tickets = generate_tickets(
            &s.wan,
            &inst.scenarios,
            &LotteryConfig { num_tickets: z, seed, ..Default::default() },
        );
        let out = Arrow::new(tickets).solve(&inst);
        out.alloc.throughput(&inst)
    });
    println!("{:>6} {:>14} {:>14} {:>12}", "|Z|", "thr (seed A)", "thr (seed B)", "spread");
    let mut first = 0.0;
    let mut last = 0.0;
    for (i, &z) in counts.iter().enumerate() {
        let a = results[2 * i];
        let b = results[2 * i + 1];
        println!("{:>6} {:>14.4} {:>14.4} {:>12.4}", z, a, b, (a - b).abs());
        if i == 0 {
            first = 0.5 * (a + b);
        }
        last = 0.5 * (a + b);
    }
    summary(
        "fig14",
        "throughput rises with |Z| and plateaus; |Z|=1 is ARROW-Naive",
        &format!(
            "throughput {:.4} at |Z|=1 -> {:.4} at |Z|={}",
            first,
            last,
            counts.last().unwrap()
        ),
    );
}
