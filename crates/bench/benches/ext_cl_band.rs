//! Extension (Appendix A.10): C+L-band optical systems.
//!
//! The paper argues ARROW extends smoothly to next-generation C+L systems:
//! the LotteryTicket abstraction is orthogonal to the transmission band,
//! and noise loading simply covers the L band too. This bench quantifies
//! the effect the upgrade has on restorability: doubling the usable
//! spectrum turns partially-restorable fibers into fully-restorable ones.

use arrow_bench::{banner, summary};
use arrow_optical::{all_single_cut_ratios, RwaConfig};
use arrow_topology::facebook_like;

fn main() {
    banner(
        "ext_cl",
        "C+L band upgrade: restorability before and after",
        "Appendix A.10: ARROW is orthogonal to the band plan",
    );
    let cfg = RwaConfig { allow_modulation_change: true, ..Default::default() };
    let wan_c = facebook_like(17);
    let mut wan_cl = wan_c.clone();
    let added = wan_cl.optical.enable_l_band(192);
    println!(
        "C band: {} slots; after upgrade: {} slots (+{added} L-band slots per fiber)\n",
        96,
        wan_cl.optical.num_slots()
    );
    let stats = |name: &str, wan: &arrow_topology::Wan| -> (f64, f64) {
        let ratios = all_single_cut_ratios(&wan.optical, &cfg);
        let full = ratios.iter().filter(|r| r.is_full()).count() as f64 / ratios.len() as f64;
        let mean = ratios.iter().map(|r| r.ratio()).sum::<f64>() / ratios.len() as f64;
        println!(
            "{name}: mean restoration ratio {:.0}%, fully restorable fibers {:.0}%",
            mean * 100.0,
            full * 100.0
        );
        (mean, full)
    };
    let (mean_c, full_c) = stats("C only ", &wan_c);
    let (mean_cl, full_cl) = stats("C + L  ", &wan_cl);
    summary(
        "ext_cl",
        "L-band expansion raises restorable capacity (A.10 extension)",
        &format!(
            "mean ratio {:.0}% -> {:.0}%; fully restorable {:.0}% -> {:.0}%",
            mean_c * 100.0,
            mean_cl * 100.0,
            full_c * 100.0,
            full_cl * 100.0
        ),
    );
    assert!(mean_cl >= mean_c - 1e-9, "more spectrum cannot hurt restorability");
    assert!(full_cl >= full_c - 1e-9);
}
