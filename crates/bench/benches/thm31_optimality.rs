//! Theorem 3.1 — ARROW's probabilistic optimality guarantee
//! `ρ^q = 1 − (1 − κ)^{|Z^q|}`, validated against a Monte-Carlo simulation
//! of Algorithm 1's randomized rounding.

use arrow_bench::{banner, summary};
use arrow_core::{kappa, optimality_probability, tickets_for_target, LinkRounding, RoundDirection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "thm31",
        "probabilistic optimality: analytic rho vs Monte-Carlo",
        "Theorem 3.1 / Appendix A.3",
    );
    let delta = 2usize;
    let links = [
        LinkRounding { lambda: 2.3, direction: RoundDirection::Up },
        LinkRounding { lambda: 1.7, direction: RoundDirection::Down },
    ];
    let k = kappa(delta, &links);
    println!("two failed links, δ = {delta}: κ = {k:.4}\n");
    println!("{:>6} {:>14} {:>14}", "|Z|", "analytic rho", "monte-carlo");
    let mut rng = StdRng::seed_from_u64(2024);
    let trials = 40_000;
    let mut worst_gap = 0.0f64;
    for z in [1usize, 2, 5, 10, 20, 50] {
        let analytic = optimality_probability(k, z);
        // Empirical: draw z tickets; success if any reproduces the optimal
        // (direction, stride=1) event on both links.
        let mut hits = 0;
        for _ in 0..trials {
            let mut any = false;
            for _ in 0..z {
                let mut ok = true;
                for l in &links {
                    let x1 = rng.gen_range(1..=delta);
                    let x2: f64 = rng.gen_range(0.0..1.0);
                    let frac = l.lambda - l.lambda.floor();
                    let up = x2 < frac;
                    let want_up = matches!(l.direction, RoundDirection::Up);
                    if up != want_up || x1 != 1 {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    any = true;
                    break;
                }
            }
            if any {
                hits += 1;
            }
        }
        let empirical = hits as f64 / trials as f64;
        worst_gap = worst_gap.max((analytic - empirical).abs());
        println!("{:>6} {:>14.4} {:>14.4}", z, analytic, empirical);
    }
    println!(
        "\ntickets needed for rho >= 0.95: {:?}; for rho >= 0.99: {:?}",
        tickets_for_target(k, 0.95),
        tickets_for_target(k, 0.99)
    );
    summary(
        "thm31",
        "rho = 1-(1-kappa)^|Z| matches the rounding process",
        &format!("max |analytic - empirical| = {worst_gap:.4} over 40k trials"),
    );
    assert!(worst_gap < 0.02);
}
