//! Fig. 19 — number of ROADMs that must be reconfigured per fiber cut,
//! split into add/drop vs intermediate (Appendix A.6).
//!
//! Paper: for 80% of cuts, ≤10 add/drop and ≤6 intermediate ROADMs.

use arrow_bench::{banner, print_cdf, summary};
use arrow_optical::{roadm_reconfig_count, FiberId, RwaConfig};
use arrow_topology::facebook_like;

fn main() {
    banner(
        "fig19",
        "ROADM reconfiguration counts per fiber cut (Facebook-like)",
        "Fig. 19: p80 add/drop ≤ 10, p80 intermediate ≤ 6",
    );
    let wan = facebook_like(17);
    let cfg = RwaConfig::default();
    let mut add_drop = Vec::new();
    let mut intermediate = Vec::new();
    for f in 0..wan.optical.num_fibers() {
        if wan.optical.affected_lightpaths(&[FiberId(f)]).is_empty() {
            continue;
        }
        let c = roadm_reconfig_count(&wan.optical, FiberId(f), &cfg);
        add_drop.push(c.add_drop as f64);
        intermediate.push(c.intermediate as f64);
    }
    print_cdf("add/drop ROADMs per cut", &add_drop, 10);
    print_cdf("intermediate ROADMs per cut", &intermediate, 10);
    let p80 = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        s[((s.len() - 1) as f64 * 0.8) as usize]
    };
    summary(
        "fig19",
        "80% of cuts: ≤10 add/drop, ≤6 intermediate",
        &format!(
            "p80 add/drop {:.0}, p80 intermediate {:.0} across {} cuts",
            p80(&add_drop),
            p80(&intermediate),
            add_drop.len()
        ),
    );
}
