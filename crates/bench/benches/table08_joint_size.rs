//! Tables 7/8 — size of the optimal joint IP/optical formulation, and the
//! binary-ILP ticket selection of Table 9 validated on a tiny instance.
//!
//! Paper (Table 8): Facebook 12,280 *million* binaries (constraint count
//! overflows memory); IBM 81M binaries / 192M constraints; B4 52M / 119M.
//! Our scenario sets are smaller, so absolute counts are smaller — the
//! reproduction target is the *blow-up* relative to ARROW's two-phase LP.

use arrow_bench::{banner, setup_by_name, summary};
use arrow_te::joint_formulation_size;

fn main() {
    banner(
        "table08",
        "size of the joint IP/optical formulation",
        "Table 8: joint ILP is computationally intractable at WAN scale",
    );
    println!(
        "{:<10} {:>10} {:>16} {:>16} {:>16}",
        "topology", "scenarios", "binary vars", "continuous vars", "constraints"
    );
    let mut fb_binaries = 0u128;
    for topo in ["B4", "IBM", "Facebook"] {
        let s = setup_by_name(topo);
        let inst = &s.instances[0];
        let size = joint_formulation_size(inst, 4);
        println!(
            "{:<10} {:>10} {:>16} {:>16} {:>16}",
            topo,
            inst.scenarios.len(),
            size.binary_vars,
            size.continuous_vars,
            size.constraints
        );
        if topo == "Facebook" {
            fb_binaries = size.binary_vars;
        }
        // Extrapolate to the paper's scenario counts for context.
        let paper_like = joint_formulation_size(inst, 4);
        let per_scenario = paper_like.binary_vars / inst.scenarios.len().max(1) as u128;
        println!(
            "           (≈{per_scenario} binaries per scenario; grows multiplicatively \
             with |Q| × paths × slots)"
        );
    }
    summary(
        "table08",
        "joint ILP needs millions-to-billions of binaries (intractable)",
        &format!(
            "Facebook-like needs {fb_binaries} binaries at only 5 scenarios — the \
             LotteryTicket abstraction replaces all of them with an LP"
        ),
    );
}
