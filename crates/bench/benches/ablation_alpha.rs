//! Ablation: the Phase-I slack budget α (paper footnote 4 evaluates
//! α ∈ {0.2, 0.1, 0.05}).
//!
//! `M^{z,q} = α · Σ_e r_e^{z,q}` bounds how far Phase I may pretend a
//! ticket's restored capacity stretches. Larger α lets Phase I see further
//! past each ticket (more informative slack signal, looser allocation);
//! smaller α pins Phase I to the candidates. The end-to-end effect on
//! throughput should be modest — the paper treats α as a tuning knob.

use arrow_bench::{banner, setup_by_name, summary};
use arrow_te::Arrow;

fn main() {
    banner(
        "ablation_alpha",
        "Phase-I slack budget α sweep (B4, demand 8x)",
        "footnote 4: α ∈ {0.2, 0.1, 0.05}",
    );
    let s = setup_by_name("B4");
    let inst = s.instances[0].scaled(8.0);
    println!("{:>8} {:>12} {:>16}", "alpha", "throughput", "winning != naive");
    let mut values = Vec::new();
    for alpha in [0.2, 0.1, 0.05] {
        let arrow = Arrow { tickets: s.tickets.clone(), alpha, solver: Default::default() };
        let outcome = arrow.solve_detailed(&inst);
        let thr = outcome.output.alloc.throughput(&inst);
        let nonnaive = outcome.winning.iter().filter(|&&w| w != 0).count();
        println!("{:>8.2} {:>12.4} {:>16}", alpha, thr, nonnaive);
        values.push(thr);
    }
    let spread =
        values.iter().fold(0.0f64, |a, &b| a.max(b)) - values.iter().fold(1.0f64, |a, &b| a.min(b));
    summary(
        "ablation_alpha",
        "α is a mild tuning knob (paper tries 0.2/0.1/0.05)",
        &format!("throughput spread across α values: {spread:.4}"),
    );
}
