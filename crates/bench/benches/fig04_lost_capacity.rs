//! Fig. 4 — impact of fiber cuts on IP-layer capacity: lost-capacity time
//! series for the worst site pairs (a) and CDF of lost capacity per cut (b).
//!
//! Paper: ~16 cut events/month; individual events cost up to 8 Tbps.

use arrow_bench::{banner, print_cdf, summary};
use arrow_topology::telemetry::{generate_tickets, RootCause};

fn main() {
    banner(
        "fig04",
        "IP capacity lost to fiber cuts",
        "Fig. 4: per-event loss up to 8 Tbps; ~16 cuts per month",
    );
    // Three years of cuts at the paper's observed rate.
    let months = 36;
    let tickets = generate_tickets(16 * months, 11);
    let cuts: Vec<f64> = tickets
        .iter()
        .filter(|t| t.cause == RootCause::FiberCut && t.lost_capacity_gbps > 0.0)
        .map(|t| t.lost_capacity_gbps)
        .collect();

    // (a) monthly time series (sum of event losses per month as a proxy
    // for the per-site-pair series).
    println!("monthly lost-capacity series (Gbps):");
    let per_month = cuts.len() / months;
    for m in 0..months {
        let lo = m * per_month;
        let hi = ((m + 1) * per_month).min(cuts.len());
        let peak = cuts[lo..hi].iter().fold(0.0f64, |a, &b| a.max(b));
        println!("  month {:>2}: peak event {:>7.0} Gbps", m + 1, peak);
    }

    // (b) CDF of lost capacity per event.
    print_cdf("\nlost capacity per cut event (Gbps)", &cuts, 10);

    let max = cuts.iter().fold(0.0f64, |a, &b| a.max(b));
    summary(
        "fig04",
        "events cost up to 8 Tbps of IP capacity",
        &format!("max event loss {:.1} Tbps across {} cut events", max / 1000.0, cuts.len()),
    );
}
