//! Criterion micro-benchmarks of the LP substrate: the simplex and PDHG
//! backends on TE-shaped problems, the restoration RWA, and ARROW's
//! two-phase solve. These are the building blocks behind the Fig. 15
//! runtime numbers.

use arrow_core::{generate_tickets, LotteryConfig};
use arrow_lp::{Backend, SolverConfig};
use arrow_te::{build_instance, Arrow, MaxFlow, TeScheme, TunnelConfig};
use arrow_topology::{b4, generate_failures, gravity_matrices, FailureConfig, TrafficConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_te_lp_backends(c: &mut Criterion) {
    let wan = b4(17);
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 8, ..Default::default() });
    let inst = build_instance(
        &wan,
        &tms[0],
        failures.failure_scenarios(),
        &TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
    );
    let mut group = c.benchmark_group("te_lp");
    group.sample_size(10);
    group.bench_function("maxflow_simplex_b4", |b| {
        b.iter(|| {
            let mut scheme = MaxFlow::default();
            scheme.solver.backend = Backend::Simplex;
            std::hint::black_box(scheme.solve(&inst));
        })
    });
    group.bench_function("maxflow_pdhg_b4", |b| {
        b.iter(|| {
            let scheme = MaxFlow { solver: SolverConfig::first_order(1e-6) };
            std::hint::black_box(scheme.solve(&inst));
        })
    });
    group.finish();
}

fn bench_rwa(c: &mut Criterion) {
    let wan = b4(17);
    let mut group = c.benchmark_group("rwa");
    group.sample_size(10);
    group.bench_function("relaxed_rwa_single_cut_b4", |b| {
        b.iter(|| {
            std::hint::black_box(arrow_optical::solve_relaxed(
                &wan.optical,
                &[arrow_optical::FiberId(0)],
                &arrow_optical::RwaConfig::default(),
            ));
        })
    });
    group.bench_function("greedy_assign_single_cut_b4", |b| {
        b.iter(|| {
            std::hint::black_box(arrow_optical::greedy_assign(
                &wan.optical,
                &[arrow_optical::FiberId(0)],
                &arrow_optical::RwaConfig::default(),
                None,
            ));
        })
    });
    group.finish();
}

fn bench_arrow_two_phase(c: &mut Criterion) {
    let wan = b4(17);
    let tms = gravity_matrices(&wan, &TrafficConfig { num_matrices: 1, ..Default::default() });
    let failures =
        generate_failures(&wan, &FailureConfig { max_scenarios: 6, ..Default::default() });
    let inst = build_instance(
        &wan,
        &tms[0],
        failures.failure_scenarios(),
        &TunnelConfig { tunnels_per_flow: 4, ..Default::default() },
    );
    let tickets = generate_tickets(
        &wan,
        &inst.scenarios,
        &LotteryConfig { num_tickets: 8, ..Default::default() },
    );
    let mut group = c.benchmark_group("arrow");
    group.sample_size(10);
    group.bench_function("two_phase_b4_8_tickets", |b| {
        let arrow = Arrow::new(tickets.clone());
        b.iter(|| std::hint::black_box(arrow.solve(&inst)))
    });
    group.finish();
}

criterion_group!(benches, bench_te_lp_backends, bench_rwa, bench_arrow_two_phase);
criterion_main!(benches);
