//! Fig. 6 — restoration ratio `U_φ = W'_φ / W_φ` of every fiber under all
//! single-cut scenarios, and its relation to provisioned capacity.
//!
//! Paper: 34% of fibers fully restorable, 62% partially, 4% not at all;
//! fibers carrying > 10 Tbps are almost never fully restorable.

use arrow_bench::{banner, print_cdf, summary};
use arrow_optical::{all_single_cut_ratios, RwaConfig};
use arrow_topology::facebook_like;

fn main() {
    banner(
        "fig06",
        "restoration ratio across all single fiber cuts (Facebook-like)",
        "Fig. 6: 34% full / 62% partial / 4% none; high-capacity fibers partial",
    );
    let wan = facebook_like(17);
    let ratios = all_single_cut_ratios(&wan.optical, &RwaConfig::default());

    let pct: Vec<f64> = ratios.iter().map(|r| r.ratio() * 100.0).collect();
    print_cdf("restoration ratio (%)", &pct, 10);

    let full = ratios.iter().filter(|r| r.is_full()).count() as f64 / ratios.len() as f64;
    let none = ratios.iter().filter(|r| r.is_none()).count() as f64 / ratios.len() as f64;
    let partial = 1.0 - full - none;

    // (b) ratio vs provisioned capacity, bucketed.
    println!("\nrestoration ratio vs provisioned capacity:");
    println!("  {:>16} {:>10} {:>12}", "capacity bucket", "fibers", "mean ratio");
    for (lo, hi) in [(0.0, 1000.0), (1000.0, 3000.0), (3000.0, 6000.0), (6000.0, f64::INFINITY)] {
        let bucket: Vec<&_> =
            ratios.iter().filter(|r| r.provisioned_gbps >= lo && r.provisioned_gbps < hi).collect();
        if bucket.is_empty() {
            continue;
        }
        let mean: f64 = bucket.iter().map(|r| r.ratio()).sum::<f64>() / bucket.len() as f64;
        let label = if hi.is_finite() {
            format!("{:.0}-{:.0} Gbps", lo, hi)
        } else {
            format!("> {:.0} Gbps", lo)
        };
        println!("  {:>16} {:>10} {:>11.0}%", label, bucket.len(), mean * 100.0);
    }

    summary(
        "fig06",
        "34% full, 62% partial, 4% none; big fibers never fully restorable",
        &format!(
            "{:.0}% full, {:.0}% partial, {:.0}% none across {} fibers",
            full * 100.0,
            partial * 100.0,
            none * 100.0,
            ratios.len()
        ),
    );
}
