//! Ablation: playback semantics — frozen allocations vs proportional
//! re-spread.
//!
//! The evaluation engine defaults to FFC semantics (routers keep their
//! installed splitting ratios; traffic on dead tunnels is lost). The
//! alternative re-spreads each flow's admitted bandwidth over surviving
//! tunnels, modeling a local rebalancing data plane. This ablation shows
//! the availability ordering of the schemes is robust to that choice.

use arrow_bench::{banner, schemes, setup_by_name, summary};
use arrow_te::eval::{availability, PlaybackConfig};

fn main() {
    banner(
        "ablation_playback",
        "frozen vs re-spread playback (B4, demand 2x)",
        "evaluation-methodology ablation (DESIGN.md)",
    );
    let s = setup_by_name("B4");
    let inst = s.instances[0].scaled(2.0);
    println!("{:<14} {:>12} {:>12}", "scheme", "frozen", "respread");
    let mut order_frozen = Vec::new();
    let mut order_respread = Vec::new();
    for scheme in schemes(&s) {
        let out = scheme.solve(&inst);
        let frozen = availability(&inst, &out, &PlaybackConfig { respread: false });
        let spread = availability(&inst, &out, &PlaybackConfig { respread: true });
        println!("{:<14} {:>12.5} {:>12.5}", scheme.name(), frozen, spread);
        order_frozen.push((scheme.name(), frozen));
        order_respread.push((scheme.name(), spread));
    }
    // Strictly-greater comparison keeps the first of tied schemes (ARROW
    // and ARROW-Naive often tie exactly).
    let top = |v: &[(String, f64)]| -> String {
        let mut best = v[0].clone();
        for item in v.iter().skip(1) {
            if item.1 > best.1 + 1e-12 {
                best = item.clone();
            }
        }
        best.0
    };
    summary(
        "ablation_playback",
        "scheme ordering robust to playback semantics",
        &format!("best scheme frozen: {}, re-spread: {}", top(&order_frozen), top(&order_respread)),
    );
}
