//! Table 5 — ARROW's satisfied-demand gain at different availability
//! levels on B4.
//!
//! Paper (B4): vs ARROW-Naive 1.6–2.0×, vs FFC-1 1.5–2.2×, vs FFC-2
//! 2.0–2.4×, vs TeaVaR 1.9–2.4×, vs ECMP 2.0–2.4× across availability
//! targets 99%–99.999%.

use arrow_bench::{banner, mean_availability, schemes, setup_by_name, summary};

fn main() {
    banner(
        "table05",
        "ARROW's demand gain at availability levels (B4)",
        "Table 5: gains between 1.5x and 2.4x",
    );
    let s = setup_by_name("B4");
    let scales: Vec<f64> = (1..=14).map(|i| 0.25 * i as f64).collect();
    let all = schemes(&s);
    // Max sustainable scale per scheme per availability target; the
    // availability grid is computed once per (scheme, scale) and reused
    // across targets.
    let targets = [0.99999, 0.9999, 0.999, 0.99];
    println!("{:<14} {:>10} {:>10} {:>10} {:>10}", "scheme", "99.999%", "99.99%", "99.9%", "99%");
    let mut per_scheme = Vec::new();
    for scheme in &all {
        let grid: Vec<(f64, f64)> =
            scales.iter().map(|&sc| (sc, mean_availability(&s, scheme.as_ref(), sc))).collect();
        let row: Vec<f64> = targets
            .iter()
            .map(|&t| grid.iter().filter(|&&(_, a)| a >= t).map(|&(sc, _)| sc).fold(0.0, f64::max))
            .collect();
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            scheme.name(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
        per_scheme.push((scheme.name(), row));
    }
    // Gains relative to ARROW.
    let arrow_row = per_scheme.iter().find(|(n, _)| n == "ARROW").unwrap().1.clone();
    println!("\nARROW gain over each scheme:");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "vs scheme", "99.999%", "99.99%", "99.9%", "99%"
    );
    let mut at9999 = Vec::new();
    for (name, row) in &per_scheme {
        if name == "ARROW" {
            continue;
        }
        let gains: Vec<String> = arrow_row
            .iter()
            .zip(row)
            .map(|(a, b)| if *b > 0.0 { format!("{:.2}x", a / b) } else { "inf".into() })
            .collect();
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10}",
            name, gains[0], gains[1], gains[2], gains[3]
        );
        if row[1] > 0.0 {
            at9999.push(format!("{name} {:.1}x", arrow_row[1] / row[1]));
        }
    }
    summary(
        "table05",
        "gains 1.5x-2.4x across availability targets (B4)",
        &format!("gain @99.99%: {}", at9999.join(", ")),
    );
}
