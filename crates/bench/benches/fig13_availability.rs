//! Fig. 13 — availability vs demand scale for ARROW, ARROW-Naive, FFC-1,
//! FFC-2, TeaVaR, and ECMP on B4, IBM, and the Facebook-like WAN.
//!
//! Paper: ARROW holds high availability at demand scales 2.0×–2.4× beyond
//! the best failure-aware TE; on B4 it sustains 3.61× demand at 99.99%
//! availability vs FFC-1's 1.63×.
//!
//! Scale note: scenario counts, traffic-matrix counts, and ticket counts
//! are reduced from the paper's settings (see `SetupConfig`) so this bench
//! finishes in minutes on a laptop; the bench prints its exact parameters.

use arrow_bench::{banner, mean_availability, parallel_map, schemes, setup_by_name, summary};

fn main() {
    banner(
        "fig13",
        "availability vs demand scale, all schemes, all topologies",
        "Fig. 13: ARROW's curve dominates; gains of 2.0x-2.4x at 99.99%",
    );
    let mut headline = Vec::new();
    for topo in ["B4", "IBM", "Facebook"] {
        let s = setup_by_name(topo);
        let scales: Vec<f64> = if topo == "Facebook" {
            vec![0.5, 1.0, 2.0, 3.0]
        } else {
            vec![0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0]
        };
        println!(
            "\n[{topo}] {} | {} TMs, {} scenarios, {} tickets",
            s.wan.summary(),
            s.instances.len(),
            s.instances[0].scenarios.len(),
            s.tickets.max_tickets()
        );
        let mut schemes = schemes(&s);
        if topo == "Facebook" {
            // FFC-2 enumerates all C(156,2) fiber pairs — hours at this
            // scale; the paper itself shows FFC-2 tracking ECMP. See the
            // B4/IBM rows for its behaviour.
            schemes.retain(|sch| sch.name() != "FFC-2");
            println!("(FFC-2 omitted on Facebook-like for bench runtime)");
        }
        // One job per (scheme, scale); availability averaged over TMs.
        let jobs: Vec<(usize, f64)> =
            (0..schemes.len()).flat_map(|i| scales.iter().map(move |&sc| (i, sc))).collect();
        let results =
            parallel_map(jobs.clone(), |&(i, sc)| mean_availability(&s, schemes[i].as_ref(), sc));
        print!("{:<14}", "scheme\\scale");
        for sc in &scales {
            print!(" {:>9.2}", sc);
        }
        println!();
        let mut arrow_at_999 = 0.0f64;
        let mut best_other_at_999 = 0.0f64;
        for (i, scheme) in schemes.iter().enumerate() {
            print!("{:<14}", scheme.name());
            let mut max_ok = 0.0f64;
            for (j, &sc) in scales.iter().enumerate() {
                let a = results[jobs.iter().position(|&(ii, ss)| ii == i && ss == sc).unwrap()];
                let _ = j;
                print!(" {:>9.5}", a);
                if a >= 0.999 {
                    max_ok = max_ok.max(sc);
                }
            }
            println!("  | max scale @99.9%: {max_ok:.2}");
            if scheme.name() == "ARROW" {
                arrow_at_999 = max_ok;
            } else if scheme.name() != "ARROW-Naive" {
                // The gain headline compares against the non-restoration
                // baselines, as in the abstract; ARROW-Naive appears in
                // Table 5 separately.
                best_other_at_999 = best_other_at_999.max(max_ok);
            }
        }
        let gain =
            if best_other_at_999 > 0.0 { arrow_at_999 / best_other_at_999 } else { f64::NAN };
        println!("[{topo}] ARROW gain over best baseline @99.9%: {gain:.2}x");
        headline.push(format!("{topo} {gain:.2}x"));
    }
    summary(
        "fig13",
        "ARROW supports 2.0x-2.4x more demand at high availability",
        &format!("ARROW demand-scale gain @99.9%: {}", headline.join(", ")),
    );
}
