//! Fig. 16 — router ports required to sustain the same availability-
//! guaranteed throughput (β = 99.9%), normalized to a hypothetical *Fully
//! Restorable TE* that restores every failure completely.
//!
//! Paper (Facebook): ARROW needs only 1.5× the fully-restorable baseline,
//! vs TeaVaR 4.1×, FFC-1 5.2×, FFC-2 311×; i.e. ARROW needs ~2.8× fewer
//! ports than the best failure-aware TE.

use arrow_bench::{banner, schemes, setup_by_name, summary};
use arrow_te::eval::{required_router_ports, PlaybackConfig};
use arrow_te::{MaxFlow, RestorationTicket, SchemeOutput, TeScheme, TicketSet};

fn main() {
    banner(
        "fig16",
        "router ports needed at equal availability-guaranteed throughput",
        "Fig. 16: ARROW 1.5x of fully-restorable; TeaVaR 4.1x; FFC-1 5.2x",
    );
    let beta = 0.999;
    let cfg = PlaybackConfig::default();
    for topo in ["B4", "IBM"] {
        let s = setup_by_name(topo);
        let inst = s.instances[0].scaled(1.0);
        // Fully Restorable TE: failure-oblivious allocation + complete
        // restoration of every failed link in every scenario.
        let full_plan: Vec<RestorationTicket> = inst
            .scenarios
            .iter()
            .map(|q| RestorationTicket {
                restored: q
                    .failed_links
                    .iter()
                    .map(|&l| (l, inst.wan.link(l).capacity_gbps))
                    .collect(),
            })
            .collect();
        let mf = MaxFlow::default().solve(&inst);
        let fully_restorable =
            SchemeOutput { alloc: mf.alloc.clone(), restoration: Some(full_plan.clone()) };
        let baseline = required_router_ports(&inst, &fully_restorable, beta, &cfg);
        println!("\n[{topo}] fully-restorable baseline CAP/AGT: {baseline:.0}");
        println!("{:<14} {:>14} {:>20}", "scheme", "ports (CAP/AGT)", "vs fully restorable");
        let mut arrow_ratio = 0.0;
        let mut best_other = f64::INFINITY;
        // ARROW uses its winning tickets; baselines restore nothing.
        let _ = TicketSet::none(0);
        for scheme in schemes(&s) {
            let out = scheme.solve(&inst);
            let ports = required_router_ports(&inst, &out, beta, &cfg);
            let ratio = ports / baseline;
            println!("{:<14} {:>14.0} {:>19.2}x", scheme.name(), ports, ratio);
            if scheme.name() == "ARROW" {
                arrow_ratio = ratio;
            } else if scheme.name() != "ECMP" && scheme.name() != "ARROW-Naive" {
                // "Failure-aware TE" = the non-restoration baselines
                // (TeaVaR, FFC); ARROW-Naive is a restoration scheme.
                best_other = best_other.min(ratio);
            }
        }
        println!(
            "[{topo}] ARROW vs best failure-aware TE: {:.2}x fewer ports",
            best_other / arrow_ratio.max(1e-9)
        );
        if topo == "B4" {
            summary(
                "fig16",
                "ARROW 1.5x of fully-restorable; needs ~2.8x fewer ports than best TE",
                &format!(
                    "ARROW {arrow_ratio:.2}x of fully-restorable; {:.2}x fewer ports than best failure-aware TE",
                    best_other / arrow_ratio.max(1e-9)
                ),
            );
        }
    }
}
