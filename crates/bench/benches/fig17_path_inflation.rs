//! Fig. 17 — restoration-path length inflation relative to primary paths,
//! with and without transponder frequency tuning (Appendix A.1).
//!
//! Paper: ~50% of restoration paths are *shorter* than the primary path
//! (no modulation change needed), and all restoration paths stay below
//! 5,000 km (so every restored wavelength supports at least 100 Gbps).

use arrow_bench::{banner, print_cdf, summary};
use arrow_optical::{path_inflation_analysis, RwaConfig};
use arrow_topology::facebook_like;

fn main() {
    banner(
        "fig17",
        "restoration-path inflation across all single cuts (Facebook-like)",
        "Fig. 17: ~50% of R-paths shorter than P-paths; all < 5,000 km",
    );
    let wan = facebook_like(17);
    for (label, retune) in [("with frequency tuning", true), ("without frequency tuning", false)] {
        let cfg = RwaConfig { allow_retuning: retune, ..Default::default() };
        let infl = path_inflation_analysis(&wan.optical, &cfg);
        if infl.is_empty() {
            println!("{label}: no restorable links");
            continue;
        }
        let ratios: Vec<f64> = infl.iter().map(|p| p.ratio()).collect();
        print_cdf(&format!("R-path / P-path length ratio ({label})"), &ratios, 10);
        let shorter = ratios.iter().filter(|&&r| r <= 1.0).count() as f64 / ratios.len() as f64;
        let mut longest: Vec<f64> = infl.iter().map(|p| p.restoration_km).collect();
        longest.sort_by(|a, b| b.total_cmp(a));
        println!(
            "  {label}: {:.0}% of R-paths no longer than their P-path; top-10 longest R-paths (km): {:?}\n",
            shorter * 100.0,
            longest.iter().take(10).map(|k| k.round()).collect::<Vec<_>>()
        );
        if retune {
            let max = longest.first().copied().unwrap_or(0.0);
            summary(
                "fig17",
                "≈50% of R-paths shorter than P-path; all < 5,000 km",
                &format!("{:.0}% shorter-or-equal; longest R-path {:.0} km", shorter * 100.0, max),
            );
            assert!(max < 5000.0, "restoration paths must respect modulation reach");
        }
    }
}
