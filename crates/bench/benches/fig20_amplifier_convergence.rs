//! Fig. 20 — legacy wavelength reconfiguration is slow: amplifiers adjust
//! power with observe–analyze–act loops across a 2,000 km, 24-amplifier
//! path, taking ~14 minutes.

use arrow_bench::{banner, summary};
use arrow_sim::{AmplifierChain, AmplifierParams};

fn main() {
    banner(
        "fig20",
        "amplifier power-adjustment staircase during reconfiguration",
        "Fig. 20: 24 cascaded amplifier sites over 2,000 km take ~14 min",
    );
    let chain = AmplifierChain::for_length(2000.0, 84.0, AmplifierParams::default());
    println!("amplifier sites: {}", chain.sites);
    println!("normalized output power over time:");
    for (t, p) in chain.power_staircase(0.0) {
        let bar = "#".repeat((p * 40.0) as usize);
        println!("  t={:6.0}s  {:>5.2} {}", t, p, bar);
    }
    let total_min = chain.total_convergence_seconds() / 60.0;
    summary(
        "fig20",
        "4 wavelengths over 24 amplifier sites: 14 minutes",
        &format!("{} sites converge in {:.1} minutes", chain.sites, total_min),
    );
    assert!((10.0..20.0).contains(&total_min));
}
