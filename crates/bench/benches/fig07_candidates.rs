//! Fig. 7 — several restoration candidates, equal at the optical layer,
//! unequal for throughput: the motivating example behind LotteryTickets.
//!
//! Paper: with demands (100, 400) Gbps, candidates (200,300)/(100,400)/
//! (300,200) deliver 400/500/300 Gbps — only candidate 2 is optimal.

use arrow_bench::{banner, summary};
use arrow_optical::{is_feasible, solve_relaxed, Lightpath, OpticalNetwork, RwaConfig};

fn main() {
    banner(
        "fig07",
        "restoration candidates on the two-IP-link toy network",
        "Fig. 7: candidates tie at 500 Gbps restored; demand picks the winner",
    );
    // Build the Fig. 7 network: direct fiber with IP1 (4λ) + IP2 (8λ);
    // detours with 3 and 2 free end-to-end slots.
    let mut net = OpticalNetwork::new(16);
    let b = net.add_roadm();
    let c = net.add_roadm();
    let x = net.add_roadm();
    let y = net.add_roadm();
    let f_bc = net.add_fiber(b, c, 100.0).unwrap();
    let f_bx = net.add_fiber(b, x, 120.0).unwrap();
    let f_xc = net.add_fiber(x, c, 120.0).unwrap();
    let f_by = net.add_fiber(b, y, 140.0).unwrap();
    let f_yc = net.add_fiber(y, c, 140.0).unwrap();
    let ip1 = net
        .provision(Lightpath {
            src: b,
            dst: c,
            path: vec![f_bc],
            slots: (0..4).collect(),
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
    let ip2 = net
        .provision(Lightpath {
            src: b,
            dst: c,
            path: vec![f_bc],
            slots: (4..12).collect(),
            gbps_per_wavelength: 100.0,
        })
        .unwrap();
    for w in 3..16 {
        for (s, d, f) in [(b, x, f_bx), (x, c, f_xc)] {
            net.provision(Lightpath {
                src: s,
                dst: d,
                path: vec![f],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        }
    }
    for w in 2..16 {
        for (s, d, f) in [(b, y, f_by), (y, c, f_yc)] {
            net.provision(Lightpath {
                src: s,
                dst: d,
                path: vec![f],
                slots: vec![w],
                gbps_per_wavelength: 100.0,
            })
            .unwrap();
        }
    }

    let rwa = RwaConfig::default();
    let relaxed = solve_relaxed(&net, &[f_bc], &rwa);
    println!("optical layer: {:.1} of 12 lost wavelengths restorable\n", relaxed.total_wavelengths);
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12}",
        "candidate", "IP1 (Gbps)", "IP2 (Gbps)", "feasible", "throughput"
    );
    let demands = (100.0f64, 400.0f64);
    let mut best = (0, 0.0);
    for (i, &(w1, w2)) in [(2usize, 3usize), (1, 4), (3, 2)].iter().enumerate() {
        let feasible = is_feasible(&net, &[f_bc], &rwa, &[(ip1, w1), (ip2, w2)]);
        let thr = demands.0.min(w1 as f64 * 100.0) + demands.1.min(w2 as f64 * 100.0);
        println!("{:>10} {:>12} {:>12} {:>10} {:>12.0}", i + 1, w1 * 100, w2 * 100, feasible, thr);
        if thr > best.1 {
            best = (i + 1, thr);
        }
    }
    summary(
        "fig07",
        "candidate 2 wins with 500 Gbps (vs 400 and 300)",
        &format!("candidate {} wins with {:.0} Gbps", best.0, best.1),
    );
    assert_eq!(best.0, 2);
}
