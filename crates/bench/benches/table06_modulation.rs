//! Table 6 — terrestrial long-haul transponder spec sheet: datarate vs
//! reach, and the modulation decisions it drives (Appendix A.1).

use arrow_bench::{banner, summary};
use arrow_optical::ModulationTable;

fn main() {
    banner("table06", "transponder datarate vs reach ladder", "Table 6");
    let t = ModulationTable::default();
    println!("{:>16} {:>12}", "datarate (Gbps)", "reach (km)");
    for row in t.rows() {
        println!("{:>16.0} {:>12.0}", row.gbps, row.reach_km);
    }
    println!("\nderived modulation decisions:");
    for km in [800.0, 1200.0, 2000.0, 4000.0, 5500.0] {
        println!("  {:>6.0} km path -> max datarate {:?} Gbps", km, t.max_gbps_for_length(km));
    }
    let ok = t.rows().len() == 4
        && t.max_gbps_for_length(1000.0) == Some(400.0)
        && t.max_gbps_for_length(5000.0) == Some(100.0)
        && t.max_gbps_for_length(5001.0).is_none();
    summary(
        "table06",
        "400G/1000km 300G/1500km 200G/3000km 100G/5000km",
        if ok { "ladder matches exactly" } else { "MISMATCH" },
    );
    assert!(ok);
}
