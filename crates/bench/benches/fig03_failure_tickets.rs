//! Fig. 3 — analysis of 600 WAN failure tickets: repair-time CDF per root
//! cause (a) and share of total downtime (b).
//!
//! Paper: 50% of fiber-cut events last longer than 9 h, 10% last over a
//! day, and fiber cuts account for 67% of total downtime.

use arrow_bench::{banner, print_cdf, summary};
use arrow_topology::telemetry::{downtime_share, generate_tickets, RootCause};

fn main() {
    banner(
        "fig03",
        "failure-ticket analysis (600 tickets, 3 years)",
        "Fig. 3: fiber cuts 67% of downtime; 50% of cuts > 9 h; 10% > 24 h",
    );
    let tickets = generate_tickets(600, 7);

    // (a) repair-time CDF per cause.
    for cause in RootCause::ALL {
        let hours: Vec<f64> =
            tickets.iter().filter(|t| t.cause == cause).map(|t| t.repair_hours).collect();
        print_cdf(&format!("repair hours [{}]", cause.label()), &hours, 10);
    }

    // (b) downtime share per cause.
    println!("\ndowntime share by root cause:");
    let shares = downtime_share(&tickets);
    for (cause, share) in &shares {
        println!("  {:<12} {:>6.1}%", cause.label(), share * 100.0);
    }

    let cut_hours: Vec<f64> =
        tickets.iter().filter(|t| t.cause == RootCause::FiberCut).map(|t| t.repair_hours).collect();
    let mut sorted = cut_hours.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let over_day = sorted.iter().filter(|&&h| h > 24.0).count() as f64 / sorted.len() as f64;
    let cut_share =
        shares.iter().find(|(c, _)| *c == RootCause::FiberCut).map(|&(_, s)| s).unwrap();
    summary(
        "fig03",
        "cuts: median repair 9 h, 10% > 24 h, 67% of downtime",
        &format!(
            "cuts: median repair {median:.1} h, {:.0}% > 24 h, {:.0}% of downtime",
            over_day * 100.0,
            cut_share * 100.0
        ),
    );
}
