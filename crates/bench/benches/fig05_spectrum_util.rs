//! Fig. 5 — spectrum utilization of the (Facebook-like) fiber plant.
//!
//! Paper: 95% of fibers have spectrum utilization below 60%, i.e. at least
//! 40% spare room for wavelength reconfiguration. Part (b)'s continuity
//! effect (available ≠ usable spectrum) is demonstrated on three fibers.

use arrow_bench::{banner, print_cdf, summary};
use arrow_optical::SpectrumMask;
use arrow_topology::facebook_like;

fn main() {
    banner("fig05", "fiber spectrum utilization", "Fig. 5a: 95% of fibers < 60% utilization");
    let wan = facebook_like(17);
    let utils: Vec<f64> =
        wan.optical.fibers().iter().map(|f| f.spectrum.utilization() * 100.0).collect();
    print_cdf("spectrum utilization (%)", &utils, 10);
    let below60 = utils.iter().filter(|&&u| u < 60.0).count() as f64 / utils.len() as f64;

    // Fig. 5b: wavelength continuity shrinks usable spectrum.
    println!("\ncontinuity effect (Fig. 5b): three fibers, each 75% available:");
    let mut a = SpectrumMask::new(4);
    let mut b = SpectrumMask::new(4);
    let mut c = SpectrumMask::new(4);
    a.occupy(0);
    b.occupy(1);
    c.occupy(2);
    let usable = a.free_intersection(&b).free_intersection(&c);
    println!(
        "  per-fiber availability 75%; end-to-end usable: {:.0}% (slots {:?})",
        100.0 * usable.free_count() as f64 / 4.0,
        usable.free_slots().collect::<Vec<_>>()
    );

    summary(
        "fig05",
        "95% of fibers below 60% utilization",
        &format!("{:.0}% of fibers below 60% utilization", below60 * 100.0),
    );
}
