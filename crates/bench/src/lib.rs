//! # arrow-bench — per-table/per-figure regeneration harness
//!
//! Every table and figure of the paper's measurement and evaluation
//! sections has a `harness = false` bench target in `benches/` that
//! regenerates its rows/series and prints a `paper vs measured` summary;
//! `cargo bench --workspace` therefore reproduces the whole evaluation.
//! Criterion-based micro-benchmarks of the LP solvers live in
//! `benches/solver_bench.rs`.
//!
//! This library holds the shared experiment plumbing: standard topology /
//! scenario / traffic setups sized to finish on a laptop, a parallel sweep
//! helper, and uniform report formatting.

use arrow_core::{generate_tickets, naive_ticket, LotteryConfig};
use arrow_te::eval::{availability, normalize_demand_scale, PlaybackConfig};
use arrow_te::{
    build_instance, Arrow, ArrowNaive, Ecmp, Ffc, RestorationTicket, SchemeOutput, TeInstance,
    TeScheme, TeaVar, TicketSet, TunnelConfig,
};
use arrow_topology::{
    b4, facebook_like, generate_failures, gravity_matrices, ibm, FailureConfig, TrafficConfig, Wan,
};

/// A topology-specific experiment setup sized for bench runtime.
pub struct Setup {
    /// The WAN.
    pub wan: Wan,
    /// TE instances, one per traffic matrix, demands normalized so scale
    /// 1.0 saturates the failure-oblivious LP.
    pub instances: Vec<TeInstance>,
    /// LotteryTickets per scenario.
    pub tickets: TicketSet,
    /// ARROW-Naive's single candidates.
    pub naive: Vec<RestorationTicket>,
}

/// Experiment sizing knobs.
#[derive(Debug, Clone)]
pub struct SetupConfig {
    /// Traffic matrices to evaluate.
    pub num_matrices: usize,
    /// Most-probable failure scenarios kept.
    pub max_scenarios: usize,
    /// Tunnels per flow.
    pub tunnels_per_flow: usize,
    /// LotteryTickets per scenario.
    pub num_tickets: usize,
    /// Scenario probability cutoff.
    pub cutoff: f64,
    /// Keep only the K largest demands per traffic matrix (0 = all).
    /// Gravity-model traffic is heavily skewed, so a few hundred flows
    /// carry most bytes; trimming the tail keeps the Facebook-scale LPs
    /// laptop-sized. Each bench prints the value it used.
    pub top_flows: usize,
    /// Anchor the demand scale where FFC-1 fully admits (B4/IBM). The
    /// Facebook-scale FFC-1 anchor solve is too slow for a bench, so it
    /// falls back to half the MaxFlow saturation point.
    pub anchor_with_ffc: bool,
}

impl SetupConfig {
    /// Bench sizing for B4 (paper: 30 TMs, 8 tunnels, 80 tickets,
    /// cutoff 1e-3 — scaled down to keep the full suite in minutes).
    pub fn b4() -> Self {
        SetupConfig {
            num_matrices: 3,
            max_scenarios: 12,
            tunnels_per_flow: 4,
            num_tickets: 12,
            cutoff: 1e-3,
            top_flows: 0,
            anchor_with_ffc: true,
        }
    }

    /// Bench sizing for IBM (paper: 30 TMs, 12 tunnels, 90 tickets).
    pub fn ibm() -> Self {
        SetupConfig {
            num_matrices: 2,
            max_scenarios: 10,
            tunnels_per_flow: 4,
            num_tickets: 10,
            cutoff: 1e-3,
            top_flows: 0,
            anchor_with_ffc: true,
        }
    }

    /// Bench sizing for the Facebook-like WAN (paper: 12 TMs, 16 tunnels,
    /// 120 tickets, cutoff 2e-4).
    pub fn facebook() -> Self {
        SetupConfig {
            num_matrices: 1,
            max_scenarios: 5,
            tunnels_per_flow: 4,
            num_tickets: 5,
            cutoff: 2e-4,
            top_flows: 200,
            anchor_with_ffc: false,
        }
    }
}

/// Builds the standard experiment setup for a WAN.
pub fn setup(wan: Wan, cfg: &SetupConfig) -> Setup {
    let failures = generate_failures(
        &wan,
        &FailureConfig {
            cutoff: cfg.cutoff,
            max_scenarios: cfg.max_scenarios,
            ..Default::default()
        },
    );
    let scenarios = failures.failure_scenarios().to_vec();
    let mut tms = gravity_matrices(
        &wan,
        &TrafficConfig { num_matrices: cfg.num_matrices, ..Default::default() },
    );
    if cfg.top_flows > 0 {
        for tm in tms.iter_mut() {
            let mut flows = tm.flows();
            flows.sort_by(|a, b| b.2.total_cmp(&a.2));
            let mut trimmed = arrow_topology::TrafficMatrix::zeros(tm.num_sites());
            for &(s, d, g) in flows.iter().take(cfg.top_flows) {
                trimmed.set_demand(s, d, g);
            }
            *tm = trimmed;
        }
    }
    let tcfg = TunnelConfig { tunnels_per_flow: cfg.tunnels_per_flow, ..Default::default() };
    let base = build_instance(&wan, &tms[0], &scenarios, &tcfg);
    // Anchor "scale 1.0" at the paper's over-provisioned starting point:
    // the largest uniform scale at which the *strictest* failure-aware
    // baseline (FFC-1) still admits ~100% of demand. Every scheme then
    // starts Fig. 13 at the availability ceiling, as in the paper.
    let norm = if cfg.anchor_with_ffc {
        let upper = normalize_demand_scale(&base);
        let fits = |scale: f64| -> bool {
            let scaled = base.scaled(scale);
            Ffc::k1().solve(&scaled).alloc.throughput(&scaled) >= 0.995
        };
        let (mut lo, mut hi) = (upper * 1e-3, upper);
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    } else {
        0.5 * normalize_demand_scale(&base)
    };
    let instances: Vec<TeInstance> =
        tms.iter().map(|tm| base.with_demands(tm).scaled(norm)).collect();
    let lottery = LotteryConfig { num_tickets: cfg.num_tickets, ..Default::default() };
    let tickets = generate_tickets(&wan, &scenarios, &lottery);
    let naive: Vec<RestorationTicket> =
        scenarios.iter().map(|s| naive_ticket(&wan, s, &lottery.rwa)).collect();
    Setup { wan, instances, tickets, naive }
}

/// The three standard setups, by topology name.
pub fn setup_by_name(name: &str) -> Setup {
    match name {
        "B4" => setup(b4(17), &SetupConfig::b4()),
        "IBM" => setup(ibm(17), &SetupConfig::ibm()),
        "Facebook" => setup(facebook_like(17), &SetupConfig::facebook()),
        other => panic!("unknown topology {other}"),
    }
}

/// The comparison schemes of §6 for a given setup.
pub fn schemes(s: &Setup) -> Vec<Box<dyn TeScheme + Send + Sync>> {
    vec![
        Box::new(Arrow::new(s.tickets.clone())),
        Box::new(ArrowNaive { tickets: s.naive.clone(), solver: Default::default() }),
        Box::new(Ffc::k1()),
        Box::new(Ffc::k2()),
        Box::new(TeaVar::default()),
        Box::new(Ecmp),
    ]
}

/// Mean availability of a scheme across a setup's traffic matrices at a
/// demand scale (the Fig. 13 measurement).
pub fn mean_availability(s: &Setup, scheme: &(dyn TeScheme + Send + Sync), scale: f64) -> f64 {
    let cfg = PlaybackConfig::default();
    let mut acc = 0.0;
    for inst in &s.instances {
        let scaled = inst.scaled(scale);
        let out: SchemeOutput = scheme.solve(&scaled);
        acc += availability(&scaled, &out, &cfg);
    }
    acc / s.instances.len() as f64
}

// The thread-scoped parallel map graduated from this harness into the
// library proper; benches keep importing it from here.
pub use arrow_core::par::{parallel_map, parallel_map_with};

/// Largest demand scale (within the probed grid) at which `scheme` keeps
/// availability at or above `target` — the Fig. 13/Table 5 readout.
pub fn max_scale_at_availability(
    s: &Setup,
    scheme: &(dyn TeScheme + Send + Sync),
    target: f64,
    scales: &[f64],
) -> f64 {
    let mut best = 0.0f64;
    for &scale in scales {
        if mean_availability(s, scheme, scale) >= target {
            best = best.max(scale);
        }
    }
    best
}

/// Uniform report banner for a bench target.
pub fn banner(id: &str, what: &str, paper: &str) {
    println!("{}", "=".repeat(74));
    println!("{id}: {what}");
    println!("paper reference: {paper}");
    println!("{}", "-".repeat(74));
}

/// Uniform paper-vs-measured summary line (collected into EXPERIMENTS.md).
pub fn summary(id: &str, paper: &str, measured: &str) {
    println!("{}", "-".repeat(74));
    println!("SUMMARY {id} | paper: {paper} | measured: {measured}");
}

/// Formats an empirical CDF as evenly-spaced percentile rows.
pub fn print_cdf(label: &str, values: &[f64], points: usize) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.is_empty() {
        println!("{label}: (no data)");
        return;
    }
    println!("{label} CDF ({} samples):", sorted.len());
    for i in 0..=points {
        let pct = i as f64 / points as f64;
        let idx = ((sorted.len() - 1) as f64 * pct).round() as usize;
        println!("  p{:<3.0} {:>12.3}", pct * 100.0, sorted[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |&x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn b4_setup_is_normalized() {
        let s = setup_by_name("B4");
        assert_eq!(s.instances.len(), 3);
        assert_eq!(s.tickets.per_scenario.len(), s.instances[0].scenarios.len());
        // Scale 1.0 must be (near) fully satisfiable by MaxFlow.
        let mf = arrow_te::MaxFlow::default().solve(&s.instances[0]);
        assert!(mf.alloc.throughput(&s.instances[0]) > 0.99);
    }

    #[test]
    fn availability_declines_with_scale() {
        let s = setup_by_name("B4");
        let arrow = Arrow::new(s.tickets.clone());
        let lo = mean_availability(&s, &arrow, 0.4);
        let hi = mean_availability(&s, &arrow, 3.0);
        assert!(lo >= hi - 1e-9, "availability must not improve with load: {lo} -> {hi}");
    }
}
