//! Structured tracing: spans and events delivered to an installed
//! [`Subscriber`].
//!
//! A span brackets a stage of work ([`crate::span!`] returns a
//! [`SpanGuard`]; dropping it closes the span and records its duration);
//! an event ([`crate::event!`]) is a point-in-time record. Both carry
//! key-value [`FieldValue`] fields, a monotonic timestamp relative to the
//! first trace record of the process, and the id of the enclosing span on
//! the *same thread* (a thread-local span stack provides parentage;
//! cross-thread parentage is deliberately omitted — a span opened on a
//! worker thread is a root on that thread, and every record carries a
//! small per-thread id instead).
//!
//! The disabled path is the design center: with no subscriber installed,
//! [`enabled`] is a single relaxed atomic load, the macros evaluate no
//! field expressions, and nothing allocates (the crate's test suite
//! asserts this with a counting allocator).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::metrics::{json_escape, json_f64};

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (owned; only materialized when tracing is enabled).
    Str(String),
}

impl FieldValue {
    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert losslessly enough for reports).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => format!("{v}"),
            FieldValue::I64(v) => format!("{v}"),
            FieldValue::F64(v) => json_f64(*v),
            FieldValue::Bool(v) => format!("{v}"),
            FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Record severity. Only two levels, on purpose: `Info` for normal
/// structure, `Warn` for conditions an operator should see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Normal structural record.
    Info,
    /// Operator-visible anomaly (e.g. malformed `ARROW_THREADS`).
    Warn,
}

impl Level {
    /// Lower-case label used in serialized output.
    pub fn label(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// What a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span was opened.
    SpanStart,
    /// A span was closed; `duration_nanos` is set.
    SpanEnd,
    /// A point-in-time event.
    Event,
}

impl RecordKind {
    /// Snake-case label used in serialized output.
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
        }
    }
}

/// One trace record, as delivered to a [`Subscriber`].
#[derive(Debug, Clone)]
pub struct Record {
    /// Record kind.
    pub kind: RecordKind,
    /// Span or event name (a static string from the call site).
    pub name: &'static str,
    /// Span id (process-unique, starting at 1); 0 for events.
    pub span_id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent_id: Option<u64>,
    /// Monotonic nanoseconds since the process trace epoch.
    pub t_nanos: u64,
    /// For [`RecordKind::SpanEnd`]: the span's wall-clock duration.
    pub duration_nanos: Option<u64>,
    /// Severity.
    pub level: Level,
    /// Small per-thread id (assigned in first-trace order, starting at 1).
    pub thread: u64,
    /// Key-value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Record {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Span duration in seconds, for `SpanEnd` records.
    pub fn duration_seconds(&self) -> Option<f64> {
        self.duration_nanos.map(|n| n as f64 / 1e9)
    }

    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"kind\":\"{}\",\"name\":\"{}\",\"span\":{},\"parent\":{},\"t_nanos\":{},\"duration_nanos\":{},\"level\":\"{}\",\"thread\":{},\"fields\":{{",
            self.kind.label(),
            json_escape(self.name),
            self.span_id,
            self.parent_id.map_or("null".to_string(), |p| p.to_string()),
            self.t_nanos,
            self.duration_nanos.map_or("null".to_string(), |d| d.to_string()),
            self.level.label(),
            self.thread,
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", json_escape(k), v.to_json()));
        }
        s.push_str("}}");
        s
    }
}

/// Receives every trace record while installed. Implementations must be
/// cheap or buffered: `record` is called inline on the traced thread.
pub trait Subscriber: Send + Sync {
    /// Called once per span start, span end, and event.
    fn record(&self, record: &Record);
}

/// Fast-path switch: true iff a subscriber is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn Subscriber>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Subscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Whether tracing is live. One relaxed atomic load — the macros call this
/// before evaluating any field expression, so instrumentation costs
/// nothing when no subscriber is installed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sub` as the process-global subscriber, replacing any previous
/// one, and turns tracing on.
pub fn install(sub: Arc<dyn Subscriber>) {
    *subscriber_slot().write().unwrap_or_else(|p| p.into_inner()) = Some(sub);
    ENABLED.store(true, Ordering::Release);
}

/// Turns tracing off and drops the installed subscriber, if any.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *subscriber_slot().write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// Monotonic process trace epoch (set at the first timestamped record).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread id, assigned on first traced record (0 = unassigned).
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    /// Stack of open span ids on this thread, for parentage.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        if id.get() == 0 {
            id.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

fn dispatch(record: &Record) {
    if let Some(sub) = subscriber_slot().read().unwrap_or_else(|p| p.into_inner()).as_ref() {
        sub.record(record);
    }
}

/// Emits an event record. Prefer the [`crate::event!`] macro, which guards
/// the field evaluation behind [`enabled`].
pub fn dispatch_event(name: &'static str, level: Level, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    dispatch(&Record {
        kind: RecordKind::Event,
        name,
        span_id: 0,
        parent_id: parent,
        t_nanos: now_nanos(),
        duration_nanos: None,
        level,
        thread: thread_id(),
        fields,
    });
}

/// Opens a span and returns its guard. Prefer the [`crate::span!`] macro,
/// which returns [`SpanGuard::disabled`] without evaluating fields when
/// tracing is off.
pub fn span_enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(span_id);
        parent
    });
    let start = now_nanos();
    dispatch(&Record {
        kind: RecordKind::SpanStart,
        name,
        span_id,
        parent_id: parent,
        t_nanos: start,
        duration_nanos: None,
        level: Level::Info,
        thread: thread_id(),
        fields: fields.clone(),
    });
    SpanGuard { name, span_id, parent_id: parent, start_nanos: start, active: true, fields }
}

/// Closes its span on drop, emitting a [`RecordKind::SpanEnd`] record with
/// the measured duration.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    span_id: u64,
    parent_id: Option<u64>,
    start_nanos: u64,
    active: bool,
    /// The start fields, re-emitted on the end record so a span's duration
    /// and its labels land on one line.
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// An inert guard: the span was never opened (tracing was off) and
    /// dropping it does nothing. Allocation-free.
    pub fn disabled() -> Self {
        SpanGuard {
            name: "",
            span_id: 0,
            parent_id: None,
            start_nanos: 0,
            active: false,
            fields: Vec::new(),
        }
    }

    /// Whether this guard tracks a live span.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        // Pop our id even if the subscriber vanished mid-span, so the
        // thread-local parentage stack stays balanced. Out-of-order drops
        // cannot happen: the guard is not `Send` into the stack's thread
        // and lexical scopes nest.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&self.span_id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != self.span_id);
            }
        });
        let end = now_nanos();
        dispatch(&Record {
            kind: RecordKind::SpanEnd,
            name: self.name,
            span_id: self.span_id,
            parent_id: self.parent_id,
            t_nanos: end,
            duration_nanos: Some(end.saturating_sub(self.start_nanos)),
            level: Level::Info,
            thread: thread_id(),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// Opens a span: `span!("name", "key" => value, ...)`. Returns a
/// [`SpanGuard`]; bind it (`let _span = span!(...)`) so the span covers
/// the enclosing scope. Fields are only evaluated when tracing is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::span_enter(
                $name,
                ::std::vec![$(($k, $crate::trace::FieldValue::from($v))),*],
            )
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

/// Emits an event: `event!("name", "key" => value, ...)`, or at warn
/// level: `event!(warn: "name", ...)`. Fields are only evaluated when
/// tracing is enabled.
#[macro_export]
macro_rules! event {
    (warn: $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::dispatch_event(
                $name,
                $crate::trace::Level::Warn,
                ::std::vec![$(($k, $crate::trace::FieldValue::from($v))),*],
            );
        }
    };
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::dispatch_event(
                $name,
                $crate::trace::Level::Info,
                ::std::vec![$(($k, $crate::trace::FieldValue::from($v))),*],
            );
        }
    };
}

/// Writes every record as one JSON line to a buffered file (JSONL).
pub struct FileSubscriber {
    writer: Mutex<BufWriter<File>>,
}

impl FileSubscriber {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(FileSubscriber { writer: Mutex::new(BufWriter::new(file)) })
    }

    /// Flushes buffered records to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().unwrap_or_else(|p| p.into_inner()).flush()
    }
}

impl Subscriber for FileSubscriber {
    fn record(&self, record: &Record) {
        let mut line = record.to_json_line();
        line.push('\n');
        // Inline on the traced thread; swallow I/O errors rather than
        // panic mid-pipeline (the final flush() surfaces them).
        let _ = self.writer.lock().unwrap_or_else(|p| p.into_inner()).write_all(line.as_bytes());
    }
}

/// Keeps the most recent `capacity` records in memory, for tests and
/// sweeps that read durations back out.
pub struct RingSubscriber {
    buf: Mutex<VecDeque<Record>>,
    capacity: usize,
}

impl RingSubscriber {
    /// A ring holding at most `capacity` records (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        RingSubscriber { buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))), capacity }
    }

    /// All buffered records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        self.buf.lock().unwrap_or_else(|p| p.into_inner()).iter().cloned().collect()
    }

    /// Empties the buffer.
    pub fn clear(&self) {
        self.buf.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    /// Buffered [`RecordKind::SpanEnd`] records named `name`, oldest
    /// first — i.e. the completed spans with their durations.
    pub fn finished_spans(&self, name: &str) -> Vec<Record> {
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .filter(|r| r.kind == RecordKind::SpanEnd && r.name == name)
            .cloned()
            .collect()
    }
}

impl Subscriber for RingSubscriber {
    fn record(&self, record: &Record) {
        // A zero-capacity ring keeps nothing (and must not grow without
        // bound, which an equality check here once allowed).
        if self.capacity == 0 {
            return;
        }
        let mut buf = self.buf.lock().unwrap_or_else(|p| p.into_inner());
        while buf.len() >= self.capacity {
            buf.pop_front();
        }
        buf.push_back(record.clone());
    }
}

/// Broadcasts every record to several subscribers (e.g. a file for the
/// run report plus a ring for in-process assertions).
pub struct FanoutSubscriber {
    subs: Vec<Arc<dyn Subscriber>>,
}

impl FanoutSubscriber {
    /// Fans out to `subs`, in order.
    pub fn new(subs: Vec<Arc<dyn Subscriber>>) -> Self {
        FanoutSubscriber { subs }
    }
}

impl Subscriber for FanoutSubscriber {
    fn record(&self, record: &Record) {
        for sub in &self.subs {
            sub.record(record);
        }
    }
}

#[cfg(test)]
mod counting_alloc {
    //! A counting global allocator so tests can assert the disabled
    //! tracing path allocates nothing. Counts are per-thread, so parallel
    //! test threads do not perturb each other's measurements.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        pub static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// Allocations observed on the current thread so far.
    pub fn thread_allocs() -> u64 {
        THREAD_ALLOCS.with(Cell::get)
    }

    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static ALLOC: CountingAllocator = CountingAllocator;
}

/// Tests that install/uninstall the process-global subscriber must not
/// overlap; `cargo test` runs them on parallel threads. Shared across
/// every in-crate test module that touches the global subscriber slot
/// (trace and slo).
#[cfg(test)]
pub(crate) fn test_subscriber_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subscriber_lock() -> std::sync::MutexGuard<'static, ()> {
        test_subscriber_lock()
    }

    #[test]
    fn disabled_path_allocates_nothing() {
        let _guard = subscriber_lock();
        uninstall();
        assert!(!enabled());
        // Warm up lazies outside the measured window (thread-local
        // registration, epoch, etc. — none should fire when disabled,
        // but keep the measurement honest).
        {
            let _s = crate::span!("test.warmup", "k" => 1_u64);
            crate::event!("test.warmup");
        }
        let before = counting_alloc::thread_allocs();
        for i in 0..1000_u64 {
            let _s = crate::span!("test.disabled_span", "i" => i, "label" => "expensive");
            crate::event!("test.disabled_event", "i" => i);
            crate::event!(warn: "test.disabled_warn", "i" => i);
        }
        let after = counting_alloc::thread_allocs();
        assert_eq!(after - before, 0, "disabled tracing path allocated");
    }

    #[test]
    fn ring_subscriber_captures_span_tree() {
        let _guard = subscriber_lock();
        let ring = Arc::new(RingSubscriber::new(64));
        install(ring.clone());
        {
            let _outer = crate::span!("test.outer", "epoch" => 7_usize);
            {
                let _inner = crate::span!("test.inner");
                crate::event!("test.note", "msg" => "hello");
            }
        }
        uninstall();

        let records = ring.records();
        let outer_start = records
            .iter()
            .find(|r| r.kind == RecordKind::SpanStart && r.name == "test.outer")
            .expect("outer span start");
        assert_eq!(outer_start.parent_id, None);
        assert_eq!(outer_start.field("epoch").and_then(FieldValue::as_u64), Some(7));

        let inner_start = records
            .iter()
            .find(|r| r.kind == RecordKind::SpanStart && r.name == "test.inner")
            .expect("inner span start");
        assert_eq!(inner_start.parent_id, Some(outer_start.span_id));

        let note = records
            .iter()
            .find(|r| r.kind == RecordKind::Event && r.name == "test.note")
            .expect("event");
        assert_eq!(note.parent_id, Some(inner_start.span_id));
        assert_eq!(note.field("msg").and_then(FieldValue::as_str), Some("hello"));

        // Inner closes before outer; durations nest. The end record
        // re-carries the start fields alongside the duration.
        let ends = ring.finished_spans("test.outer");
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].field("epoch").and_then(FieldValue::as_u64), Some(7));
        let outer_dur = ends[0].duration_nanos.expect("duration");
        let inner_dur = ring.finished_spans("test.inner")[0].duration_nanos.expect("duration");
        assert!(outer_dur >= inner_dur);
    }

    #[test]
    fn events_at_warn_level_are_marked() {
        let _guard = subscriber_lock();
        let ring = Arc::new(RingSubscriber::new(8));
        install(ring.clone());
        crate::event!(warn: "test.warning", "reason" => "bad input");
        uninstall();
        let records = ring.records();
        let warn = records.iter().find(|r| r.name == "test.warning").expect("warn event");
        assert_eq!(warn.level, Level::Warn);
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let _guard = subscriber_lock();
        let ring = Arc::new(RingSubscriber::new(4));
        install(ring.clone());
        for i in 0..10_u64 {
            crate::event!("test.evict", "i" => i);
        }
        uninstall();
        let records = ring.records();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].field("i").and_then(FieldValue::as_u64), Some(6));
        assert_eq!(records[3].field("i").and_then(FieldValue::as_u64), Some(9));
    }

    #[test]
    fn worker_thread_spans_are_roots_with_distinct_thread_ids() {
        let _guard = subscriber_lock();
        let ring = Arc::new(RingSubscriber::new(64));
        install(ring.clone());
        let main_thread;
        {
            let _offline = crate::span!("test.offline");
            main_thread = ring.records().last().expect("span start").thread;
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _worker = crate::span!("test.worker");
                });
            });
        }
        uninstall();
        let worker_start = ring
            .records()
            .into_iter()
            .find(|r| r.kind == RecordKind::SpanStart && r.name == "test.worker")
            .expect("worker span");
        // No cross-thread parentage: the worker span is a root on its
        // own thread, distinguished by thread id.
        assert_eq!(worker_start.parent_id, None);
        assert_ne!(worker_start.thread, main_thread);
    }

    #[test]
    fn json_line_is_well_formed() {
        let record = Record {
            kind: RecordKind::SpanEnd,
            name: "test.json",
            span_id: 42,
            parent_id: Some(7),
            t_nanos: 1_000,
            duration_nanos: Some(500),
            level: Level::Info,
            thread: 1,
            fields: vec![("mode", FieldValue::from("warm")), ("n", FieldValue::from(3_u64))],
        };
        assert_eq!(
            record.to_json_line(),
            "{\"kind\":\"span_end\",\"name\":\"test.json\",\"span\":42,\"parent\":7,\
             \"t_nanos\":1000,\"duration_nanos\":500,\"level\":\"info\",\"thread\":1,\
             \"fields\":{\"mode\":\"warm\",\"n\":3}}"
        );
    }

    #[test]
    fn file_subscriber_writes_jsonl() {
        let _guard = subscriber_lock();
        let path = std::env::temp_dir().join("arrow_obs_trace_test.jsonl");
        let file = Arc::new(FileSubscriber::create(&path).expect("create trace file"));
        install(file.clone());
        {
            let _s = crate::span!("test.file_span", "k" => 1_u64);
        }
        uninstall();
        file.flush().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "span start + span end");
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[1].contains("\"kind\":\"span_end\""));
        assert!(lines[1].contains("\"name\":\"test.file_span\""));
    }

    #[test]
    fn fanout_reaches_all_subscribers() {
        let _guard = subscriber_lock();
        let a = Arc::new(RingSubscriber::new(8));
        let b = Arc::new(RingSubscriber::new(8));
        install(Arc::new(FanoutSubscriber::new(vec![a.clone(), b.clone()])));
        crate::event!("test.fanout");
        uninstall();
        assert_eq!(a.records().len(), 1);
        assert_eq!(b.records().len(), 1);
    }

    #[test]
    fn ring_capacity_zero_keeps_nothing_and_stays_bounded() {
        let _guard = subscriber_lock();
        let ring = Arc::new(RingSubscriber::new(0));
        install(ring.clone());
        for i in 0..100_u64 {
            crate::event!("test.zero_cap", "i" => i);
        }
        uninstall();
        // Regression guard: a zero-capacity ring used to grow without
        // bound because the eviction check was `len == capacity`.
        assert!(ring.records().is_empty());
    }

    #[test]
    fn ring_at_exact_capacity_holds_then_evicts_in_order() {
        let _guard = subscriber_lock();
        let ring = Arc::new(RingSubscriber::new(3));
        install(ring.clone());
        for i in 0..3_u64 {
            crate::event!("test.exact", "i" => i);
        }
        // Exactly full: everything retained, oldest first.
        let held: Vec<u64> = ring
            .records()
            .iter()
            .filter_map(|r| r.field("i").and_then(FieldValue::as_u64))
            .collect();
        assert_eq!(held, [0, 1, 2]);
        // One past capacity evicts exactly the oldest.
        crate::event!("test.exact", "i" => 3_u64);
        uninstall();
        let held: Vec<u64> = ring
            .records()
            .iter()
            .filter_map(|r| r.field("i").and_then(FieldValue::as_u64))
            .collect();
        assert_eq!(held, [1, 2, 3]);
        // clear() empties but the ring keeps accepting afterwards.
        ring.clear();
        assert!(ring.records().is_empty());
    }

    #[test]
    fn fanout_delivers_in_declaration_order_per_record() {
        let _guard = subscriber_lock();

        /// Appends `(tag, span_id)` to a shared log on every record, so
        /// the interleaving across fanout targets is observable.
        struct TagSubscriber {
            tag: &'static str,
            log: Arc<Mutex<Vec<(&'static str, u64)>>>,
        }
        impl Subscriber for TagSubscriber {
            fn record(&self, record: &Record) {
                self.log.lock().unwrap_or_else(|p| p.into_inner()).push((self.tag, record.span_id));
            }
        }

        let log = Arc::new(Mutex::new(Vec::new()));
        let first = Arc::new(TagSubscriber { tag: "first", log: log.clone() });
        let second = Arc::new(TagSubscriber { tag: "second", log: log.clone() });
        install(Arc::new(FanoutSubscriber::new(vec![first, second])));
        {
            let _a = crate::span!("test.fanout_order.a");
        }
        {
            let _b = crate::span!("test.fanout_order.b");
        }
        uninstall();

        let seen = log.lock().unwrap_or_else(|p| p.into_inner()).clone();
        // 2 spans x (start + end) x 2 subscribers.
        assert_eq!(seen.len(), 8);
        // Each record reaches `first` then `second` before the next record
        // is dispatched: no interleaving across records.
        for pair in seen.chunks(2) {
            assert_eq!(pair[0].0, "first");
            assert_eq!(pair[1].0, "second");
            assert_eq!(pair[0].1, pair[1].1, "both targets see the same record");
        }
        // And records themselves arrive in emission order (a start, a end).
        let firsts: Vec<u64> =
            seen.iter().filter(|(t, _)| *t == "first").map(|(_, s)| *s).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(firsts, sorted, "span ids non-decreasing in dispatch order");
    }

    #[test]
    fn guard_from_disabled_period_is_inert_after_enable() {
        let _guard = subscriber_lock();
        uninstall();
        let stale = crate::span!("test.stale");
        assert!(!stale.is_active());
        let ring = Arc::new(RingSubscriber::new(8));
        install(ring.clone());
        drop(stale); // must not emit a bogus span_end
        uninstall();
        assert!(ring.records().is_empty());
    }
}
