//! `arrow-bench-gate` — the CI bench regression gate.
//!
//! Diffs the current `BENCH_*.json` sweep artifacts against the committed
//! baseline (`baselines/bench-gate.json`) under noise-aware relative
//! thresholds, and exits non-zero on any regression so CI can block the
//! merge. `--update` ratchets the baseline: improvements tighten it,
//! regressions never loosen it silently.
//!
//! ```text
//! arrow-bench-gate --check  [--artifacts DIR] [--baseline FILE] [--report FILE]
//! arrow-bench-gate --update [--artifacts DIR] [--baseline FILE] [--report FILE]
//! ```
//!
//! Defaults: artifacts from the current directory, baseline at
//! `baselines/bench-gate.json`, report to `bench-gate-report.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use arrow_obs::gate::{self, GateMode};

struct Args {
    mode: GateMode,
    artifacts: PathBuf,
    baseline: PathBuf,
    report: PathBuf,
}

fn usage() -> &'static str {
    "usage: arrow-bench-gate (--check | --update) \
     [--artifacts DIR] [--baseline FILE] [--report FILE]"
}

fn parse_args() -> Result<Args, String> {
    let mut mode = None;
    let mut artifacts = PathBuf::from(".");
    let mut baseline = PathBuf::from("baselines/bench-gate.json");
    let mut report = PathBuf::from("bench-gate-report.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => mode = Some(GateMode::Check),
            "--update" => mode = Some(GateMode::Update),
            "--artifacts" => {
                artifacts = PathBuf::from(argv.next().ok_or("--artifacts needs a value")?);
            }
            "--baseline" => {
                baseline = PathBuf::from(argv.next().ok_or("--baseline needs a value")?);
            }
            "--report" => {
                report = PathBuf::from(argv.next().ok_or("--report needs a value")?);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    let mode = mode.ok_or_else(|| format!("pick --check or --update\n{}", usage()))?;
    Ok(Args { mode, artifacts, baseline, report })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let specs = gate::default_specs();
    let report = match gate::run(&args.artifacts, &args.baseline, &specs, args.mode) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("arrow-bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.to_table());
    if let Err(e) = std::fs::write(&args.report, report.to_json()) {
        eprintln!("arrow-bench-gate: could not write report {}: {e}", args.report.display());
        return ExitCode::from(2);
    }
    if report.failed() && args.mode == GateMode::Check {
        eprintln!(
            "arrow-bench-gate: FAILED — see {} (re-baseline intentional changes with --update)",
            args.report.display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
