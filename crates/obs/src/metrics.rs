//! Process-global metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Metrics are **always on**. Handles are registered by static name and
//! backed by atomics, so an update is a handful of relaxed atomic
//! operations with no locking — cheap enough for per-solve and per-event
//! bookkeeping (per-pivot hot loops should accumulate locally and record
//! once per solve, which is what `arrow-lp` does). Instrumented crates
//! cache their handles in `OnceLock` statics; registration itself takes a
//! short-lived mutex and happens once per name.
//!
//! [`snapshot`] serializes the whole registry — deterministically, in
//! lexicographic name order — to JSON ([`Snapshot::to_json`]) or a
//! Prometheus-style text exposition ([`Snapshot::to_prometheus`]) for
//! dumping at process exit or on demand.
//!
//! Deliberately omitted: labels/dimensions (encode them in the name),
//! metric unregistration, and push-based export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Escapes `s` for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON value (`null` for non-finite).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Adds `d` to an `f64` stored as bits in an [`AtomicU64`].
fn f64_add(bits: &AtomicU64, d: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + d).to_bits();
        match bits.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge (last write wins).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (atomically, via compare-exchange).
    pub fn add(&self, d: f64) {
        f64_add(&self.bits, d);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    /// Finite bucket upper bounds, strictly increasing; an implicit
    /// overflow bucket (`+inf`) follows the last one.
    bounds: Vec<f64>,
    /// Per-bucket observation counts, `bounds.len() + 1` entries.
    buckets: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram: observations land in the first bucket whose
/// upper bound is `>= value`, or in the implicit overflow bucket.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.inner.bounds)
            .field("count", &self.count())
            .finish()
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let i = self.inner.bounds.iter().position(|&b| v <= b).unwrap_or(self.inner.bounds.len());
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        f64_add(&self.inner.sum_bits, v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Bucket upper bounds (finite ones; the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket counts, `bounds().len() + 1` entries (last = overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner.buckets.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`): the upper bound of the bucket
    /// where the cumulative count first reaches `q · count`. Exact only up
    /// to bucket resolution; observations past the last bound report
    /// [`f64::INFINITY`]. Returns `NaN` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.inner.buckets.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= target {
                return self.inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// One registered metric.
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// `BTreeMap` keeps snapshots in deterministic (lexicographic) order — the
/// same hash-order discipline the offline stage follows (see DESIGN.md).
fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Locks the registry, recovering from poisoning: the map's invariants
/// hold after any partial mutation (entries are inserted atomically via
/// `entry().or_insert_with`), so a panic elsewhere must not take the
/// telemetry plane down with it.
fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    registry().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn register(name: &'static str, make: impl FnOnce() -> Metric) -> Metric {
    let mut reg = lock_registry();
    let entry = reg.entry(name).or_insert_with(make);
    entry.clone()
}

/// Counts kind-clash registrations (see [`kind_clash`]); also the one name
/// that must not recurse into itself from the clash path.
const KIND_CLASH_COUNTER: &str = "obs.metrics.kind_clash";

/// A name was re-registered as a different metric kind. Telemetry must
/// never panic the process it observes, so this records the clash (warn
/// event + counter) and the caller hands back a *detached* metric: a live
/// handle of the requested kind that is not in the registry, so updates
/// through it are accepted but invisible to snapshots.
fn kind_clash(name: &'static str, existing: &'static str, requested: &'static str) {
    if name != KIND_CLASH_COUNTER {
        counter(KIND_CLASH_COUNTER).inc();
    }
    crate::event!(
        warn: "obs.metrics.kind_clash",
        "name" => name,
        "existing" => existing,
        "requested" => requested
    );
}

/// Returns the counter registered under `name`, creating it on first use.
///
/// If `name` is already registered as a different kind, the clash is
/// recorded (`obs.metrics.kind_clash` counter plus a warn event) and a
/// detached counter is returned — live, but excluded from snapshots.
pub fn counter(name: &'static str) -> Counter {
    match register(name, || Metric::Counter(Counter { cell: Arc::new(AtomicU64::new(0)) })) {
        Metric::Counter(c) => c,
        other => {
            kind_clash(name, other.kind(), "counter");
            Counter { cell: Arc::new(AtomicU64::new(0)) }
        }
    }
}

/// Returns the gauge registered under `name`, creating it on first use.
///
/// If `name` is already registered as a different kind, the clash is
/// recorded (`obs.metrics.kind_clash` counter plus a warn event) and a
/// detached gauge is returned — live, but excluded from snapshots.
pub fn gauge(name: &'static str) -> Gauge {
    match register(name, || Metric::Gauge(Gauge { bits: Arc::new(AtomicU64::new(0)) })) {
        Metric::Gauge(g) => g,
        other => {
            kind_clash(name, other.kind(), "gauge");
            Gauge { bits: Arc::new(AtomicU64::new(0)) }
        }
    }
}

fn make_histogram(bounds: &[f64]) -> Histogram {
    let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
    Histogram {
        inner: Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }),
    }
}

/// Fallback bounds when a histogram is registered with an unusable bound
/// list: decade buckets wide enough for any duration-like metric.
const DEFAULT_BOUNDS: &[f64] = &[1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1e3];

/// Returns the histogram registered under `name`, creating it with the
/// given finite bucket upper bounds on first use (later registrations keep
/// the first bounds).
///
/// Bounds must be finite and strictly increasing; an unusable bound list
/// is replaced by decade buckets and recorded as a warn event rather than
/// panicking. A kind clash is handled like [`counter`]: recorded, and a
/// detached histogram is returned.
pub fn histogram(name: &'static str, bounds: &[f64]) -> Histogram {
    let usable = !bounds.is_empty()
        && bounds.windows(2).all(|w| w[0] < w[1])
        && bounds.iter().all(|b| b.is_finite());
    let made = register(name, || {
        if !usable {
            crate::event!(warn: "obs.metrics.bad_bounds", "name" => name);
        }
        Metric::Histogram(make_histogram(if usable { bounds } else { DEFAULT_BOUNDS }))
    });
    match made {
        Metric::Histogram(h) => h,
        other => {
            kind_clash(name, other.kind(), "histogram");
            make_histogram(if usable { bounds } else { DEFAULT_BOUNDS })
        }
    }
}

/// Zeroes every registered metric (handles stay valid). Intended for the
/// start of an example or test run; concurrent updates during the reset
/// land before or after it, never half-applied per metric value.
pub fn reset() {
    let reg = lock_registry();
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.cell.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.bits.store(0f64.to_bits(), Ordering::Relaxed),
            Metric::Histogram(h) => {
                for b in &h.inner.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.inner.count.store(0, Ordering::Relaxed);
                h.inner.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time values of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries, last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// A point-in-time copy of the whole registry, in name order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram values.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

/// Takes a snapshot of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = lock_registry();
    let mut snap = Snapshot::default();
    for (&name, m) in reg.iter() {
        match m {
            Metric::Counter(c) => snap.counters.push((name, c.get())),
            Metric::Gauge(g) => snap.gauges.push((name, g.get())),
            Metric::Histogram(h) => snap.histograms.push((
                name,
                HistogramSnapshot {
                    bounds: h.bounds().to_vec(),
                    buckets: h.bucket_counts(),
                    count: h.count(),
                    sum: h.sum(),
                },
            )),
        }
    }
    snap
}

impl Snapshot {
    /// Counter value by name (0 when absent — counters default to zero).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// Gauge value by name (`None` when never registered).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Histogram values by name (`None` when never registered).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Serializes the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {v}", json_escape(name)));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", json_escape(name), json_f64(*v)));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(name),
                h.count,
                json_f64(h.sum)
            ));
            for (j, &c) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let le = h.bounds.get(j).map_or("\"+inf\"".to_string(), |b| json_f64(*b));
                s.push_str(&format!("{{\"le\": {le}, \"count\": {c}}}"));
            }
            s.push_str("]}");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Serializes the snapshot in the Prometheus text exposition format
    /// (v0.0.4): `# HELP` and `# TYPE` per family, sanitized names, and
    /// canonical cumulative `le` buckets ending in `+Inf`.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.counters {
            let n = sanitize_metric_name(name);
            s.push_str(&format!("# HELP {n} {}\n", help_line(name, "counter")));
            s.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize_metric_name(name);
            s.push_str(&format!("# HELP {n} {}\n", help_line(name, "gauge")));
            s.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", prom_f64(*v)));
        }
        for (name, h) in &self.histograms {
            let n = sanitize_metric_name(name);
            s.push_str(&format!("# HELP {n} {}\n", help_line(name, "histogram")));
            s.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (j, &c) in h.buckets.iter().enumerate() {
                cum += c;
                let le = h.bounds.get(j).map_or("+Inf".to_string(), |b| prom_le(*b));
                s.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            s.push_str(&format!("{n}_sum {}\n{n}_count {}\n", prom_f64(h.sum), h.count));
        }
        s
    }
}

/// Sanitizes a registry name into a legal Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. `.` and `-` (our namespace separators)
/// become `_`, as does any other illegal character; a leading digit gets
/// a `_` prefix. Idempotent: sanitizing a sanitized name is a no-op.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit();
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Canonical `le` label value for a finite bucket bound: shortest-roundtrip
/// float formatting, with integral bounds keeping a `.0` so `1.0` and a
/// hypothetical integer-valued series stay distinct (matches the common
/// client-library convention).
fn prom_le(bound: f64) -> String {
    if bound == bound.trunc() && bound.abs() < 1e15 {
        format!("{bound:.1}")
    } else {
        format!("{bound}")
    }
}

/// Prometheus sample value formatting: `NaN`/`+Inf`/`-Inf` spellings for
/// non-finite values instead of JSON's `null`.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Registered help texts for `# HELP` lines, keyed by the *unsanitized*
/// registry name.
fn help_registry() -> &'static Mutex<BTreeMap<&'static str, &'static str>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Attaches a help text to `name`, shown as the `# HELP` line in
/// [`Snapshot::to_prometheus`]. Last call wins; metrics without a
/// registered help fall back to a generic description.
pub fn describe(name: &'static str, help: &'static str) {
    help_registry().lock().unwrap_or_else(|p| p.into_inner()).insert(name, help);
}

/// The `# HELP` payload for `name`: the registered description (escaped
/// per the exposition format: `\` and newline) or a generic fallback.
fn help_line(name: &str, kind: &str) -> String {
    let reg = help_registry().lock().unwrap_or_else(|p| p.into_inner());
    match reg.get(name) {
        Some(help) => help.replace('\\', "\\\\").replace('\n', "\\n"),
        None => format!("arrow-obs {kind} {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn same_name_returns_same_instance() {
        let a = counter("test.metrics.shared");
        let b = counter("test.metrics.shared");
        a.inc();
        b.inc();
        assert_eq!(a.get(), b.get());
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let c = counter("test.metrics.kind_clash");
        c.add(7);
        let clashes_before = snapshot().counter("obs.metrics.kind_clash");
        // Same name, wrong kind: no panic, a live-but-detached gauge.
        let g = gauge("test.metrics.kind_clash");
        g.set(3.25);
        assert_eq!(g.get(), 3.25, "detached handle still works locally");
        // The registry still holds the original counter, untouched.
        assert_eq!(snapshot().counter("test.metrics.kind_clash"), 7);
        assert_eq!(snapshot().gauge("test.metrics.kind_clash"), None);
        // And the clash itself was counted.
        assert_eq!(snapshot().counter("obs.metrics.kind_clash"), clashes_before + 1);
    }

    #[test]
    fn bad_histogram_bounds_fall_back_to_decades() {
        // Not strictly increasing: unusable, replaced by decade buckets.
        let h = histogram("test.metrics.bad_bounds", &[5.0, 1.0]);
        assert_eq!(h.bounds(), DEFAULT_BOUNDS);
        h.observe(0.5);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn concurrent_counter_updates_are_lossless() {
        let c = counter("test.metrics.concurrent_counter");
        let start = c.get();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - start, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn concurrent_histogram_updates_are_lossless() {
        let h = histogram("test.metrics.concurrent_hist", &[1.0, 2.0, 4.0, 8.0]);
        let (count0, sum0) = (h.count(), h.sum());
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic spread over all buckets incl. overflow.
                        h.observe(((t + i) % 10) as f64);
                    }
                });
            }
        });
        let observed = (THREADS * PER_THREAD) as u64;
        assert_eq!(h.count() - count0, observed);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        // Sum is an exact integer total here, so float CAS must be lossless.
        let expected_sum: f64 =
            (0..THREADS).flat_map(|t| (0..PER_THREAD).map(move |i| ((t + i) % 10) as f64)).sum();
        assert!(
            ((h.sum() - sum0) - expected_sum).abs() < 1e-6,
            "sum {} vs expected {expected_sum}",
            h.sum() - sum0
        );
    }

    #[test]
    fn histogram_quantiles_within_bucket_resolution() {
        let bounds: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let h = histogram("test.metrics.quantile_hist", &bounds);
        // 1000 observations uniform over (0, 10]: value k/100 for k=1..=1000.
        for k in 1..=1000 {
            h.observe(k as f64 / 100.0);
        }
        // True p50 = 5.0; the estimate reports a bucket upper bound, so it
        // must land within one bucket width (1.0) of the true quantile.
        for (q, truth) in [(0.1, 1.0), (0.5, 5.0), (0.9, 9.0), (1.0, 10.0)] {
            let est = h.quantile(q);
            assert!((est - truth).abs() <= 1.0 + 1e-9, "q={q}: estimate {est} vs truth {truth}");
        }
        // Overflow observations push the tail quantile to +inf.
        h.observe(1e9);
        assert!(h.quantile(1.0).is_infinite());
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = histogram("test.metrics.empty_hist", &[1.0]);
        if h.count() == 0 {
            assert!(h.quantile(0.5).is_nan());
        }
    }

    #[test]
    fn snapshot_serializes_both_formats() {
        counter("test.metrics.snap_counter").add(3);
        gauge("test.metrics.snap_gauge").set(1.25);
        histogram("test.metrics.snap_hist", &[0.5, 1.5]).observe(1.0);
        let snap = snapshot();
        assert!(snap.counter("test.metrics.snap_counter") >= 3);
        assert_eq!(snap.gauge("test.metrics.snap_gauge"), Some(1.25));
        assert!(snap.histogram("test.metrics.snap_hist").is_some_and(|h| h.count >= 1));
        let json = snap.to_json();
        assert!(json.contains("\"test.metrics.snap_counter\""));
        assert!(json.contains("\"le\": \"+inf\""));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE test_metrics_snap_counter counter"));
        assert!(prom.contains("test_metrics_snap_hist_bucket{le=\"+Inf\"}"));
        // Names are in deterministic lexicographic order.
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = histogram("test.metrics.prom_hist", &[0.01, 0.1, 1.0, 10.0]);
        for v in [0.005, 0.05, 0.05, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let prom = snapshot().to_prometheus();
        let buckets: Vec<(String, u64)> = prom
            .lines()
            .filter(|l| l.starts_with("test_metrics_prom_hist_bucket{"))
            .map(|l| {
                let le = l.split("le=\"").nth(1).and_then(|r| r.split('"').next());
                let count = l.rsplit(' ').next().and_then(|c| c.parse().ok());
                (le.expect("le label").to_string(), count.expect("bucket count"))
            })
            .collect();
        // One series per finite bound plus the terminal +Inf bucket.
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets.last().map(|(le, _)| le.as_str()), Some("+Inf"));
        // Canonical le formatting: shortest round-trip, integral keeps .0.
        let les: Vec<&str> = buckets.iter().map(|(le, _)| le.as_str()).collect();
        assert_eq!(les, ["0.01", "0.1", "1.0", "10.0", "+Inf"]);
        // Cumulative and monotone non-decreasing, +Inf equals _count.
        let counts: Vec<u64> = buckets.iter().map(|(_, c)| *c).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "not monotone: {counts:?}");
        assert_eq!(counts, [1, 3, 4, 5, 6]);
        assert!(prom.contains("test_metrics_prom_hist_count 6"));
    }

    #[test]
    fn prometheus_help_lines_precede_every_family() {
        describe("test.metrics.helped", "observed widget total");
        counter("test.metrics.helped").inc();
        counter("test.metrics.unhelped").inc();
        let prom = snapshot().to_prometheus();
        assert!(prom.contains("# HELP test_metrics_helped observed widget total\n"));
        // Undescribed metrics still get a generic HELP line.
        assert!(prom.contains("# HELP test_metrics_unhelped arrow-obs counter"));
        // HELP always directly precedes TYPE for the same family.
        for (i, line) in prom.lines().collect::<Vec<_>>().windows(2).enumerate() {
            let _ = i;
            if line[1].starts_with("# TYPE ") {
                let family = line[1].split_ascii_whitespace().nth(2).unwrap_or("");
                assert!(
                    line[0].starts_with(&format!("# HELP {family} ")),
                    "TYPE for {family} not preceded by its HELP: {:?}",
                    line
                );
            }
        }
    }

    #[test]
    fn metric_name_sanitization_round_trips() {
        assert_eq!(sanitize_metric_name("epoch.seconds"), "epoch_seconds");
        assert_eq!(sanitize_metric_name("lp.solve-batch.lanes"), "lp_solve_batch_lanes");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("weird name+unit"), "weird_name_unit");
        // Idempotent: a sanitized name survives a second pass unchanged.
        for name in ["epoch.seconds", "a-b.c", "9x", "ok_name:sub"] {
            let once = sanitize_metric_name(name);
            assert_eq!(sanitize_metric_name(&once), once, "not idempotent for {name:?}");
            // And is a legal Prometheus name.
            let mut chars = once.chars();
            let first = chars.next().expect("non-empty");
            assert!(first.is_ascii_alphabetic() || first == '_' || first == ':');
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
        }
    }

    #[test]
    fn prometheus_nonfinite_values_use_exposition_spellings() {
        gauge("test.metrics.inf_gauge").set(f64::INFINITY);
        let prom = snapshot().to_prometheus();
        assert!(prom.contains("test_metrics_inf_gauge +Inf"));
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
        gauge("test.metrics.inf_gauge").set(0.0);
    }
}
